"""Calibration constants for the performance models.

Every constant is pinned to a number the paper states or implies; the
benches assert *shapes*, so moderate miscalibration cannot silently pass
as reproduction.  Paper anchors:

- Figure 3: "2.8 GHz Pentium 4 running Linux 2.4.21"; "most system calls
  are slowed by an order of magnitude" by the Parrot trap.
- Figure 4: network I/O latency "outweigh[s] the latency of Parrot itself
  by another order of magnitude"; DSFS metadata ops are ~2x CFS.
- Figure 5: Unix local copy peaks at 798 MB/s, Parrot local at 431 MB/s,
  Parrot+CFS uses 80 MB/s of the 128 MB/s (1 Gb/s) link, Unix+NFS gets
  10 MB/s "due to the request-response nature of the protocol".
- Figures 6-8: one server saturates a port "at just over 100 MB/s"; the
  commodity switch backplane saturates at 300 MB/s; nodes have "a 250 GB
  SATA disk, 512 MB RAM"; a single disk-bound server sustains 10 MB/s.
- Section 8: the WAN link is "(roughly) 100 Mbps capacity"; the WAN node
  has "a slightly faster processor".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimParams", "PAPER_PARAMS", "MB", "GB"]

MB = 1_000_000
GB = 1_000_000_000


@dataclass(frozen=True)
class SimParams:
    """All tunables for the latency/bandwidth models, in seconds/bytes."""

    # -- host syscall costs (Figure 3 baseline) -----------------------------
    syscall_getpid: float = 0.4e-6
    syscall_stat: float = 2.0e-6
    syscall_open_close: float = 5.0e-6
    syscall_rw_base: float = 1.5e-6  # fixed cost of read/write, excl. copy

    #: one kernel<->user copy during local read/write: 798 MB/s peak in
    #: Figure 5 implies ~1/(798 MB/s) per byte on top of the fixed cost.
    local_copy_bw: float = 798 * MB

    # -- the Parrot trap (Figure 3) ---------------------------------------
    #: extra context switches per trapped call ("slowed by an order of
    #: magnitude": ~5 us native open/close -> tens of us under Parrot).
    parrot_trap_overhead: float = 25.0e-6
    #: the adapter's extra data copy: 431 MB/s combined peak in Figure 5
    #: implies an added copy at ~1/431 - 1/798 ~= 1/938 MB/s per byte.
    parrot_copy_bw: float = 938 * MB

    # -- LAN (Figures 4-8) ------------------------------------------------
    lan_rtt: float = 110.0e-6  # gigabit + commodity switch round trip
    #: server-side request handling (parse, dispatch, kernel I/O)
    server_op_overhead: float = 40.0e-6
    #: achievable streaming rate for the user-level CFS data path
    cfs_stream_bw: float = 80 * MB
    #: practical TCP ceiling of one 1 Gb/s port (Figure 6: "just over
    #: 100 MB/s")
    port_bw: float = 100 * MB
    #: commodity switch backplane ceiling (Figure 6: 300 MB/s)
    backplane_bw: float = 300 * MB

    # -- NFS protocol model (Figures 4, 5) ----------------------------------
    nfs_block: int = 4096  # "4KB RPC packets"
    #: per-RPC server overhead; 10 MB/s at 4 KB/RPC means ~410 us per RPC,
    #: of which ~110 us is the RTT.
    nfs_rpc_overhead: float = 300.0e-6
    #: extra lookup RPCs to resolve a name (one per path component)
    nfs_path_depth: int = 2

    # -- DSFS (Figures 4, 6-8) ---------------------------------------------
    #: metadata ops read the stub as well as the data file: ~2x latency.
    dsfs_stub_rpcs: int = 1  # extra round trips on metadata operations

    # -- storage nodes (Figures 6-8) ----------------------------------------
    disk_bw: float = 10 * MB  # effective rate for large randomly-read files
    disk_seek: float = 8.0e-3  # per-file positioning cost
    server_ram: int = 512 * MB
    #: RAM usable as buffer cache (kernel + server overheads excluded);
    #: chosen so 1280 MB over 2 servers misses but over 3 servers fits
    #: (Figure 7's crossover at 3 servers).
    cache_bytes: int = 448 * MB

    # -- WAN (section 8) -------------------------------------------------
    wan_rtt: float = 30e-3
    wan_bw: float = 12 * MB  # "(roughly) 100 Mbps"


#: The calibration used by every benchmark.
PAPER_PARAMS = SimParams()
