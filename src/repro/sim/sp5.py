"""The SP5 high-energy-physics workload model (section 8 table).

SP5 is "a collection of scripts, executables, and dynamic libraries"
whose "configuration and output data are stored using a commercial I/O
library whose data are protected by a lock server."  We cannot run BaBar
software, so this models the I/O profile the paper's measurements imply
(see EXPERIMENTS.md for the calibration argument):

- Initialization streams a large working set (libraries, configuration,
  conditions data) off the *home storage server*, whose disk under random
  access is the common bottleneck (~4 MB/s) for every remote
  configuration -- which is why LAN/NFS and LAN/TSS land within 1% of
  each other in the paper despite very different protocols.  Locally the
  same data comes off a warm, faster disk image.
- Each remote file also costs a burst of protocol round trips (open,
  attribute checks, lock-server traffic).  Negligible on the LAN,
  these dominate the WAN *surcharge* (6275 s vs 4505 s).
- Per-event processing is compute plus a fixed output volume written
  through the same path.  The WAN node's "slightly faster processor"
  (paper's note on grid heterogeneity) is modeled explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.params import MB, GB, PAPER_PARAMS, SimParams

__all__ = ["SP5Workload", "SP5Result", "run_sp5_table", "SP5_CONFIGS"]

SP5_CONFIGS = ("unix", "lan-nfs", "lan-tss", "wan-tss")


@dataclass(frozen=True)
class SP5Result:
    config: str
    init_time: float
    time_per_event: float


@dataclass
class SP5Workload:
    """The calibrated SP5 I/O profile."""

    #: initialization working set: files streamed from home storage
    init_files: int = 4000
    init_bytes: int = 16 * GB
    #: protocol round trips per file (open, close, stats, lock traffic)
    rtts_per_file: int = 15
    #: the home storage server's disk under this random access pattern
    server_disk_rate: float = 4.1 * MB
    #: the same image on a warm local disk (the paper's Unix baseline)
    local_disk_rate: float = 36 * MB
    #: per-event computation on the LAN-era CPU...
    event_compute: float = 60.0
    #: ...and on the WAN site's "slightly faster processor"
    event_compute_wan: float = 40.0
    #: simulation output written per event
    event_bytes: int = 200 * MB
    #: protocol round trips per event (output open/locks)
    rtts_per_event: int = 20
    params: SimParams = field(default_factory=lambda: PAPER_PARAMS)

    # -- per-configuration ingredients -------------------------------------

    def _rtt(self, config: str) -> float:
        p = self.params
        if config == "unix":
            return 2 * p.syscall_open_close  # no network at all
        if config in ("lan-nfs", "lan-tss"):
            return p.lan_rtt + p.server_op_overhead
        if config == "wan-tss":
            return p.wan_rtt + p.server_op_overhead
        raise ValueError(f"unknown SP5 configuration {config!r}")

    def _data_rate(self, config: str) -> float:
        """Sustained data rate: min(network path, home server's disk)."""
        p = self.params
        if config == "unix":
            return self.local_disk_rate
        if config == "lan-nfs":
            # 4 KB request-response tops out near 10 MB/s; the server
            # disk at ~4 MB/s is still the binding constraint.
            nfs_net = p.nfs_block / (p.lan_rtt + p.nfs_rpc_overhead)
            return min(nfs_net, self.server_disk_rate)
        if config == "lan-tss":
            return min(p.cfs_stream_bw, self.server_disk_rate)
        if config == "wan-tss":
            return min(p.wan_bw, self.server_disk_rate)
        raise ValueError(f"unknown SP5 configuration {config!r}")

    # -- the table ------------------------------------------------------

    def init_time(self, config: str) -> float:
        data = self.init_bytes / self._data_rate(config)
        protocol = self.init_files * self.rtts_per_file * self._rtt(config)
        return data + protocol

    def time_per_event(self, config: str) -> float:
        compute = (
            self.event_compute_wan if config == "wan-tss" else self.event_compute
        )
        data = self.event_bytes / self._data_rate(config)
        protocol = self.rtts_per_event * self._rtt(config)
        return compute + data + protocol

    def result(self, config: str) -> SP5Result:
        return SP5Result(config, self.init_time(config), self.time_per_event(config))


def run_sp5_table(workload: SP5Workload | None = None) -> list[SP5Result]:
    """Regenerate the section 8 table, one row per configuration."""
    wl = workload or SP5Workload()
    return [wl.result(c) for c in SP5_CONFIGS]
