"""A small discrete-event simulation engine (SimPy-flavored).

Processes are generators that ``yield`` events; the environment resumes a
process when its awaited event fires.  Three event kinds cover everything
the cluster models need:

- :class:`Timeout` -- fires after a simulated delay,
- :class:`Resource` requests -- FIFO admission with finite capacity
  (NIC ports, switch backplanes, disks),
- :class:`Process` itself -- a process is an event that fires when the
  generator returns, so processes can ``yield`` other processes to join
  them.

The engine is deterministic: ties in time are broken by scheduling order.
No wall-clock time or randomness enters here; stochastic workloads pass
their own seeded RNGs.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Optional

__all__ = ["Environment", "Event", "Timeout", "Process", "Resource"]


class Event:
    """Something that will happen; processes wait on these."""

    __slots__ = ("env", "_callbacks", "triggered", "value")

    def __init__(self, env: "Environment"):
        self.env = env
        self._callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        self.value = None

    def succeed(self, value=None) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        self.env._ready.append(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        self._callbacks.append(fn)


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds from creation."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value=None):
        if delay < 0:
            raise ValueError("negative timeout")
        super().__init__(env)
        env._schedule(self, delay, value)


class Process(Event):
    """A running generator; also an event that fires at generator exit."""

    __slots__ = ("_gen",)

    def __init__(self, env: "Environment", gen: Generator):
        super().__init__(env)
        self._gen = gen
        # Bootstrap: resume once at the current time.
        bootstrap = Event(env)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    def _resume(self, trigger: Event) -> None:
        try:
            target = self._gen.send(trigger.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {type(target).__name__}, expected an Event"
            )
        if target.triggered:
            # Already fired: resume on the next dispatch round.
            relay = Event(self.env)
            relay.add_callback(self._resume)
            relay.succeed(target.value)
        else:
            target.add_callback(self._resume)


class _Request(Event):
    """A pending acquisition of one capacity unit of a Resource."""

    __slots__ = ("resource",)

    def __init__(self, env: "Environment", resource: "Resource"):
        super().__init__(env)
        self.resource = resource


class Resource:
    """FIFO resource with integer capacity (a queueing station).

    Usage inside a process::

        req = resource.request()
        yield req
        yield env.timeout(service_time)
        resource.release()
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiting: list[_Request] = []
        #: cumulative busy integral, for utilization reporting
        self._busy_units = 0.0
        self._last_change = 0.0

    def _account(self) -> None:
        now = self.env.now
        self._busy_units += self.in_use * (now - self._last_change)
        self._last_change = now

    def request(self) -> _Request:
        req = _Request(self.env, self)
        self._account()
        if self.in_use < self.capacity:
            self.in_use += 1
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self) -> None:
        self._account()
        if self._waiting:
            nxt = self._waiting.pop(0)
            nxt.succeed()  # capacity passes directly to the next waiter
        else:
            if self.in_use <= 0:
                raise RuntimeError("release without matching request")
            self.in_use -= 1

    def utilization(self) -> float:
        """Mean busy fraction of total capacity since t=0."""
        self._account()
        if self.env.now == 0:
            return 0.0
        return self._busy_units / (self.env.now * self.capacity)


class Environment:
    """The event loop: a clock and a priority queue of events."""

    def __init__(self):
        self.now = 0.0
        self._queue: list[tuple[float, int, Event, object]] = []
        self._ready: list[Event] = []
        self._seq = 0

    def _schedule(self, event: Event, delay: float, value=None) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, event, value))

    def timeout(self, delay: float, value=None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator) -> Process:
        return Process(self, gen)

    def run(self, until: Optional[float] = None) -> None:
        """Dispatch events until the queue drains or ``until`` is reached."""
        while True:
            # Drain immediately-ready events (succeed() at current time).
            while self._ready:
                event = self._ready.pop(0)
                callbacks, event._callbacks = event._callbacks, []
                for fn in callbacks:
                    fn(event)
            if not self._queue:
                return
            when, _seq, event, value = self._queue[0]
            if until is not None and when > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            self.now = when
            if not event.triggered:
                event.triggered = True
                event.value = value
                self._ready.append(event)
