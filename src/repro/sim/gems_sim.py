"""GEMS preservation timeline at paper scale (Figure 9).

"A modest data set of 14 GB is entered into GEMS for safekeeping.  The
user specifies that up to 40 GB of space may be used ... At three points
during the life of this run, three failures are induced by forcibly
deleting data from one, five, and ten disks.  As the auditor process
discovers the losses, the replicator brings the system back into a
desired state."

The *planning* code here is the real one -- the
:class:`~repro.gems.policy.BudgetGreedyPolicy` that drives production
repair -- run against simulated storage and a simulated clock, because
14 GB and hour-scale timelines do not fit in a unit-test budget.  Time is
stepped at a fixed quantum; replication progresses at a configured
aggregate copy rate; the auditor only *discovers* losses on its own
period, which is what produces the visible lag between a failure dip and
the start of recovery in the figure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.gems.policy import BudgetGreedyPolicy, RecordSummary, ReplicationPolicy
from repro.sim.params import GB, MB

__all__ = ["GemsSimulation", "GemsTimelinePoint"]


@dataclass(frozen=True)
class GemsTimelinePoint:
    """One sample of the preservation run."""

    time: float
    stored_bytes: int  # bytes actually on disks
    believed_bytes: int  # bytes the database thinks are on disks
    events: tuple[str, ...] = ()


@dataclass
class _SimRecord:
    record_id: str
    size: int
    #: where the database believes replicas are
    believed: set[int] = field(default_factory=set)
    #: where data actually is (diverges after a failure, until audit)
    actual: set[int] = field(default_factory=set)


class GemsSimulation:
    """Figure 9 at full scale on a virtual clock."""

    def __init__(
        self,
        n_files: int = 140,
        file_bytes: int = 100 * MB,
        budget_bytes: int = 40 * GB,
        n_servers: int = 30,
        replication_rate: float = 20 * MB,  # aggregate copy throughput
        audit_interval: float = 120.0,
        step: float = 10.0,
        failures: tuple[tuple[float, int], ...] = (
            (1800.0, 1),
            (2700.0, 5),
            (3600.0, 10),
        ),
        duration: float = 5400.0,
        seed: int = 9,
        policy: ReplicationPolicy | None = None,
    ):
        self.n_files = n_files
        self.file_bytes = file_bytes
        self.budget_bytes = budget_bytes
        self.n_servers = n_servers
        self.replication_rate = replication_rate
        self.audit_interval = audit_interval
        self.step = step
        self.failures = sorted(failures)
        self.duration = duration
        self.rng = random.Random(seed)
        self.policy = policy or BudgetGreedyPolicy(budget_bytes)
        self.records: list[_SimRecord] = []
        self.timeline: list[GemsTimelinePoint] = []

    # -- state helpers ------------------------------------------------------

    def _ingest(self) -> None:
        """The dataset arrives with a single copy each, spread round-robin."""
        for i in range(self.n_files):
            server = i % self.n_servers
            self.records.append(
                _SimRecord(f"f{i}", self.file_bytes, {server}, {server})
            )

    def stored_bytes(self) -> int:
        return sum(r.size * len(r.actual) for r in self.records)

    def believed_bytes(self) -> int:
        return sum(r.size * len(r.believed) for r in self.records)

    def _fail_disks(self, count: int) -> list[int]:
        """Forcibly delete all dataset replicas on ``count`` random disks."""
        candidates = [s for s in range(self.n_servers)
                      if any(s in r.actual for r in self.records)]
        victims = self.rng.sample(candidates, min(count, len(candidates)))
        for r in self.records:
            r.actual.difference_update(victims)
        return victims

    def _audit(self) -> int:
        """Reconcile belief with reality; returns replicas newly noted lost."""
        noted = 0
        for r in self.records:
            lost = r.believed - r.actual
            noted += len(lost)
            r.believed &= r.actual
        return noted

    def _replication_targets(self) -> list[_SimRecord]:
        """Ask the real policy what to copy next, in priority order."""
        summaries = [
            RecordSummary(r.record_id, r.size, len(r.believed))
            for r in self.records
        ]
        plan = self.policy.plan_additions(summaries, self.n_servers)
        by_id = {r.record_id: r for r in self.records}
        return [by_id[rid] for rid in plan]

    def _copy_one(self, record: _SimRecord) -> bool:
        """Place one new replica of a record (instantaneous bookkeeping;
        the caller charges the copy's transfer time)."""
        if not record.actual:
            return False  # nothing to copy from
        options = [s for s in range(self.n_servers) if s not in record.believed]
        if not options:
            return False
        # Prefer the emptiest server, like MostFreePlacement.
        load = {s: 0 for s in options}
        for r in self.records:
            for s in r.actual:
                if s in load:
                    load[s] += r.size
        target = min(options, key=lambda s: (load[s], s))
        record.believed.add(target)
        record.actual.add(target)
        return True

    # -- the run ----------------------------------------------------------

    def run(self) -> list[GemsTimelinePoint]:
        self._ingest()
        now = 0.0
        next_audit = 0.0
        pending_failures = list(self.failures)
        copy_debt = 0.0  # bytes of copying currently owed to the budget
        plan_queue: list[_SimRecord] = []
        self.timeline = [
            GemsTimelinePoint(0.0, self.stored_bytes(), self.believed_bytes(), ("ingest",))
        ]
        while now < self.duration:
            now += self.step
            events: list[str] = []
            # 1. induced failures
            while pending_failures and pending_failures[0][0] <= now:
                _, count = pending_failures.pop(0)
                victims = self._fail_disks(count)
                events.append(f"failure:{len(victims)}-disks")
            # 2. the auditor's periodic pass
            if now >= next_audit:
                noted = self._audit()
                if noted:
                    events.append(f"audit-noted:{noted}")
                next_audit = now + self.audit_interval
                plan_queue = self._replication_targets()
            # 3. the replicator copies at the aggregate rate
            copy_debt += self.replication_rate * self.step
            while plan_queue and copy_debt >= plan_queue[0].size:
                record = plan_queue.pop(0)
                if self._copy_one(record):
                    copy_debt -= record.size
                    events.append(f"replicated:{record.record_id}")
            if not plan_queue:
                copy_debt = min(copy_debt, float(self.file_bytes))
            self.timeline.append(
                GemsTimelinePoint(
                    now, self.stored_bytes(), self.believed_bytes(), tuple(events)
                )
            )
        return self.timeline

    # -- figure summaries used by the bench -------------------------------

    def stored_series_gb(self) -> list[tuple[float, float]]:
        return [(pt.time, pt.stored_bytes / GB) for pt in self.timeline]

    def min_after(self, t: float, window: float = 300.0) -> float:
        pts = [p.stored_bytes for p in self.timeline if t <= p.time <= t + window]
        return min(pts) / GB if pts else float("nan")

    def value_at(self, t: float) -> float:
        best = min(self.timeline, key=lambda p: abs(p.time - t))
        return best.stored_bytes / GB
