"""Closed-form I/O path models for Figures 3, 4 and 5.

Each :class:`IOStack` answers "how long does one call take through this
path?" for the calls the paper measures -- ``getpid``, ``stat``,
``open``+``close``, and reads/writes of a given size.  Composition mirrors
the real paths:

========================  ==============================================
:class:`UnixStack`        application -> kernel -> local filesystem
:class:`ParrotLocalStack` + the ptrace trap and the adapter's extra copy
:class:`NfsStack`         kernel NFS client over the LAN: per-component
                          LOOKUPs, 4 KB request-response RPCs
:class:`CfsStack`         Parrot + Chirp over the LAN: one round trip per
                          call, streaming data on the same connection
:class:`DsfsStack`        CFS + one extra round trip on metadata calls to
                          read the stub file
========================  ==============================================

:func:`bandwidth_curve` turns per-call times into the Figure 5 sweep
(copy 16 MB at a given application block size).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.sim.params import MB, PAPER_PARAMS, SimParams

__all__ = [
    "IOStack",
    "UnixStack",
    "ParrotLocalStack",
    "NfsStack",
    "CfsStack",
    "DsfsStack",
    "WanCfsStack",
    "bandwidth_curve",
    "SYSCALL_NAMES",
]

#: the calls shown in Figures 3 and 4
SYSCALL_NAMES = ("getpid", "stat", "open_close", "read_8k", "write_8k")


class IOStack(ABC):
    """Latency model of one I/O path."""

    name: str = "stack"

    def __init__(self, params: SimParams = PAPER_PARAMS):
        self.p = params

    @abstractmethod
    def op_getpid(self) -> float: ...

    @abstractmethod
    def op_stat(self) -> float: ...

    @abstractmethod
    def op_open_close(self) -> float: ...

    @abstractmethod
    def op_read(self, nbytes: int) -> float: ...

    @abstractmethod
    def op_write(self, nbytes: int) -> float: ...

    def op(self, name: str) -> float:
        """Latency of a named Figure 3/4 call."""
        if name == "getpid":
            return self.op_getpid()
        if name == "stat":
            return self.op_stat()
        if name == "open_close":
            return self.op_open_close()
        if name == "read_8k":
            return self.op_read(8192)
        if name == "write_8k":
            return self.op_write(8192)
        raise ValueError(f"unknown call {name!r}")


class UnixStack(IOStack):
    """Unmodified local system calls (the Figure 3 baseline)."""

    name = "unix"

    def op_getpid(self) -> float:
        return self.p.syscall_getpid

    def op_stat(self) -> float:
        return self.p.syscall_stat

    def op_open_close(self) -> float:
        return self.p.syscall_open_close

    def op_read(self, nbytes: int) -> float:
        return self.p.syscall_rw_base + nbytes / self.p.local_copy_bw

    op_write = op_read


class ParrotLocalStack(UnixStack):
    """The same local calls trapped by the adapter.

    Every call pays the trap's context switches; data calls additionally
    pay one extra copy between kernel, adapter, and application.
    """

    name = "parrot"

    def op_getpid(self) -> float:
        return super().op_getpid() + self.p.parrot_trap_overhead

    def op_stat(self) -> float:
        return super().op_stat() + self.p.parrot_trap_overhead

    def op_open_close(self) -> float:
        return super().op_open_close() + self.p.parrot_trap_overhead

    def op_read(self, nbytes: int) -> float:
        return (
            super().op_read(nbytes)
            + self.p.parrot_trap_overhead
            + nbytes / self.p.parrot_copy_bw
        )

    op_write = op_read


@dataclass(frozen=True)
class _Rpc:
    """One request-response exchange on the LAN."""

    rtt: float
    server: float
    payload_time: float = 0.0

    @property
    def time(self) -> float:
        return self.rtt + self.server + self.payload_time


class NfsStack(IOStack):
    """Kernel NFS client over the LAN, caching disabled.

    Names resolve with one LOOKUP RPC per path component; data moves in
    fixed 4 KB RPCs in strict request-response rhythm -- "the low
    bandwidth is due to the protocol, not due to the target disk."
    """

    name = "nfs"

    def _rpc(self, payload: int = 0) -> float:
        return _Rpc(
            self.p.lan_rtt, self.p.nfs_rpc_overhead, payload / self.p.port_bw
        ).time

    def op_getpid(self) -> float:
        return self.p.syscall_getpid  # getpid never leaves the host

    def op_stat(self) -> float:
        lookups = self.p.nfs_path_depth
        return self.p.syscall_stat + lookups * self._rpc() + self._rpc()

    def op_open_close(self) -> float:
        # LOOKUP per component + GETATTR at open; close is local.
        return (
            self.p.syscall_open_close
            + self.p.nfs_path_depth * self._rpc()
            + self._rpc()
        )

    def op_read(self, nbytes: int) -> float:
        blocks = max(1, math.ceil(nbytes / self.p.nfs_block))
        per_block = self._rpc(min(nbytes, self.p.nfs_block))
        return self.p.syscall_rw_base + blocks * per_block

    op_write = op_read


class CfsStack(IOStack):
    """Parrot + Chirp to a single file server (the TSS data path).

    Every call is exactly one round trip on the shared TCP connection;
    reads and writes stream their payload at the user-level achievable
    rate ("variable sized messages over TCP instead of 4KB RPC packets").
    """

    name = "cfs"

    def _rpc(self) -> float:
        return self.p.lan_rtt + self.p.server_op_overhead

    def _trap(self) -> float:
        return self.p.parrot_trap_overhead

    def op_getpid(self) -> float:
        return self.p.syscall_getpid + self._trap()

    def op_stat(self) -> float:
        return self._trap() + self._rpc()

    def op_open_close(self) -> float:
        return self._trap() * 2 + self._rpc() * 2  # open RPC + close RPC

    def op_read(self, nbytes: int) -> float:
        return self._trap() + self._rpc() + nbytes / self.p.cfs_stream_bw

    op_write = op_read


class DsfsStack(CfsStack):
    """CFS plus stub indirection.

    "DSFS has slower stat and open calls because stub file lookups
    require multiple round trips" -- metadata calls first fetch the stub
    from the directory server, then operate on the data server.  Reads
    and writes on an open file are identical to CFS.
    """

    name = "dsfs"

    def op_stat(self) -> float:
        return super().op_stat() + self.p.dsfs_stub_rpcs * self._rpc()

    def op_open_close(self) -> float:
        return super().op_open_close() + self.p.dsfs_stub_rpcs * self._rpc()


class WanCfsStack(CfsStack):
    """CFS over the wide-area link of section 8 (~100 Mb/s, high RTT)."""

    name = "wan-cfs"

    def _rpc(self) -> float:
        return self.p.wan_rtt + self.p.server_op_overhead

    def op_read(self, nbytes: int) -> float:
        return self._trap() + self._rpc() + nbytes / self.p.wan_bw

    op_write = op_read


def bandwidth_curve(
    stack: IOStack,
    block_sizes: list[int],
    total_bytes: int = 16 * MB,
    direction: str = "write",
) -> dict[int, float]:
    """Figure 5: copy ``total_bytes`` at each block size; returns MB/s.

    The copy performs one open/close pair plus ``total/block`` data calls,
    exactly like the paper's microbenchmark.
    """
    op = stack.op_write if direction == "write" else stack.op_read
    out = {}
    for block in block_sizes:
        if block < 1:
            raise ValueError("block size must be positive")
        full, remainder = divmod(total_bytes, block)
        elapsed = stack.op_open_close() + full * op(block)
        if remainder:
            elapsed += op(remainder)
        out[block] = (total_bytes / elapsed) / MB
    return out
