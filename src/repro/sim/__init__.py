"""Calibrated simulation of the paper's performance evaluation.

The paper's numbers come from 2005 hardware (2.8 GHz Pentium 4, Linux
2.4, 1 Gb/s Ethernet, 250 GB SATA disks, 512 MB RAM per node).  Those
curves are hardware-bound, so this package reproduces their *shapes* with
two kinds of model (see DESIGN.md, substitutions table):

- **Protocol stacks** (:mod:`repro.sim.stacks`): closed-form latency and
  bandwidth models of the unix / parrot / NFS / CFS / DSFS I/O paths,
  calibrated with the constants in :mod:`repro.sim.params`.  These
  regenerate Figures 3, 4 and 5 and feed the SP5 workload model.
- **Discrete-event simulation** (:mod:`repro.sim.engine`,
  :mod:`repro.sim.cluster`, :mod:`repro.sim.dsfs_sim`): servers with
  disks, LRU buffer caches and gigabit NICs behind a switch with a finite
  backplane, driven by clients reading random files.  These regenerate
  the DSFS scalability study (Figures 6-8).
- **Control-loop simulation** (:mod:`repro.sim.gems_sim`): the *real*
  GEMS planning policy running against simulated storage and failures,
  regenerating the Figure 9 preservation timeline.
"""

from repro.sim.engine import Environment, Resource, Process, Timeout
from repro.sim.params import SimParams, PAPER_PARAMS
from repro.sim.stacks import (
    IOStack,
    UnixStack,
    ParrotLocalStack,
    NfsStack,
    CfsStack,
    DsfsStack,
    bandwidth_curve,
)
from repro.sim.dsfs_sim import DsfsExperiment, run_scalability_sweep
from repro.sim.sp5 import SP5Workload, run_sp5_table
from repro.sim.gems_sim import GemsSimulation

__all__ = [
    "Environment",
    "Resource",
    "Process",
    "Timeout",
    "SimParams",
    "PAPER_PARAMS",
    "IOStack",
    "UnixStack",
    "ParrotLocalStack",
    "NfsStack",
    "CfsStack",
    "DsfsStack",
    "bandwidth_curve",
    "DsfsExperiment",
    "run_scalability_sweep",
    "SP5Workload",
    "run_sp5_table",
    "GemsSimulation",
]
