"""Cluster hardware models for the DSFS scalability study (Figures 6-8).

Each storage node has a gigabit NIC (modeled as a FIFO
:class:`~repro.sim.engine.Resource` serving bytes at the practical port
rate), a disk (seek + streaming rate), and an LRU buffer cache over whole
files.  All nodes hang off one commodity switch whose backplane is itself
a FIFO resource with a 300 MB/s ceiling -- the paper's explanation for the
plateau in Figure 6.

A file transfer moves chunk by chunk through three stations -- server NIC
(tx), switch backplane, client NIC (rx) -- so contention emerges from
queueing rather than from closed-form arithmetic.  Within one transfer the
stations are visited sequentially per chunk, which under-uses a *single*
idle path (a lone stream reaches ~45 MB/s, not 100), but the experiment --
like the paper's -- drives servers with many concurrent clients, and
aggregate throughput is limited by station utilization, which this model
gets right.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.sim.engine import Environment, Resource
from repro.sim.params import SimParams

__all__ = ["BufferCache", "SimDisk", "SimNic", "SimSwitch", "StorageNode", "ClientNode", "transfer"]

CHUNK = 256 * 1024  # transfer granularity through the network stations


class BufferCache:
    """Whole-file LRU cache standing in for the node's page cache."""

    def __init__(self, capacity_bytes: int):
        self.capacity = capacity_bytes
        self.used = 0
        self._files: "OrderedDict[object, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, file_id, size: int) -> bool:
        """Touch a file; True on hit.  Miss inserts it (with eviction)."""
        if file_id in self._files:
            self._files.move_to_end(file_id)
            self.hits += 1
            return True
        self.misses += 1
        if size <= self.capacity:
            while self.used + size > self.capacity and self._files:
                _, evicted = self._files.popitem(last=False)
                self.used -= evicted
            self._files[file_id] = size
            self.used += size
        return False

    def invalidate(self, file_id) -> None:
        size = self._files.pop(file_id, None)
        if size is not None:
            self.used -= size

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SimDisk:
    """One disk: a FIFO resource charging seek + bytes/rate per read."""

    def __init__(self, env: Environment, params: SimParams):
        self.env = env
        self.p = params
        self.resource = Resource(env, capacity=1)

    def read(self, nbytes: int):
        """Process: hold the disk for one file-sized read."""
        req = self.resource.request()
        yield req
        yield self.env.timeout(self.p.disk_seek + nbytes / self.p.disk_bw)
        self.resource.release()


class SimNic:
    """One direction of a gigabit port: serves chunks at the port rate."""

    def __init__(self, env: Environment, params: SimParams):
        self.env = env
        self.p = params
        self.resource = Resource(env, capacity=1)

    def send(self, nbytes: int):
        req = self.resource.request()
        yield req
        yield self.env.timeout(nbytes / self.p.port_bw)
        self.resource.release()


class SimSwitch:
    """The commodity switch: per-chunk service at the backplane rate."""

    def __init__(self, env: Environment, params: SimParams):
        self.env = env
        self.p = params
        self.resource = Resource(env, capacity=1)

    def forward(self, nbytes: int):
        req = self.resource.request()
        yield req
        yield self.env.timeout(nbytes / self.p.backplane_bw)
        self.resource.release()


@dataclass
class StorageNode:
    """A file server node: tx NIC + disk + buffer cache."""

    env: Environment
    params: SimParams
    name: str
    nic_tx: SimNic = field(init=False)
    disk: SimDisk = field(init=False)
    cache: BufferCache = field(init=False)

    def __post_init__(self):
        self.nic_tx = SimNic(self.env, self.params)
        self.disk = SimDisk(self.env, self.params)
        self.cache = BufferCache(self.params.cache_bytes)

    def fetch(self, file_id, size: int):
        """Process: make the file's bytes available to stream (disk or cache)."""
        if not self.cache.access(file_id, size):
            yield from self.disk.read(size)


@dataclass
class ClientNode:
    """A load-generating client node: rx NIC."""

    env: Environment
    params: SimParams
    name: str
    nic_rx: SimNic = field(init=False)
    bytes_received: int = 0

    def __post_init__(self):
        self.nic_rx = SimNic(self.env, self.params)


def transfer(
    env: Environment,
    server: StorageNode,
    client: ClientNode,
    switch: SimSwitch,
    nbytes: int,
    on_bytes=None,
):
    """Process: move ``nbytes`` from server to client through the switch."""
    remaining = nbytes
    while remaining > 0:
        chunk = min(CHUNK, remaining)
        yield from server.nic_tx.send(chunk)
        yield from switch.forward(chunk)
        yield from client.nic_rx.send(chunk)
        remaining -= chunk
        client.bytes_received += chunk
        if on_bytes is not None:
            on_bytes(chunk)
