"""Process-level chaos: a seeded supervisor over real TSS daemons.

Where :mod:`repro.sim.cluster` simulates failures inside one process,
this module kills actual operating-system processes.  A
:class:`ProcSupervisor` launches real servers (``python -m
repro.chirp.main``, the catalog, the database, the keeper CLI) as
subprocesses, and a seeded :func:`build_plan` decides *when* to deliver
*which* signal to *whom* -- SIGKILL (crash), SIGTERM (graceful drain),
SIGSTOP/SIGCONT (stall, the moral equivalent of a wedged machine).

Determinism contract: the plan is a pure function of its seed, computed
up front and replayable -- the same seed always yields the same victim
and signal sequence.  Every action the supervisor takes is appended to
a JSONL event log so a failing CI run uploads exactly what happened and
in what order.

The harness in ``tests/harness`` drives a supervisor-built cluster and
asserts the paper-level invariants: no acknowledged write is lost
across SIGKILL+restart, no corrupt bytes are ever served, the keeper
restores the replication factor, and a draining server never drops an
in-flight acknowledged operation.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass

__all__ = [
    "ChaosEvent",
    "build_plan",
    "ManagedProc",
    "ProcSupervisor",
    "free_port",
    "wait_for_port",
    "python_module_argv",
]

#: Signals the planner may schedule.  ``sigstop`` implies a later
#: ``sigcont`` issued by the harness; ``sigkill``/``sigterm`` imply a
#: later restart decision by the harness.
ACTIONS = ("sigkill", "sigterm", "sigstop")


@dataclass(frozen=True)
class ChaosEvent:
    """One planned fault: after write number ``step``, hit ``victim``
    with ``action``."""

    step: int
    victim: str
    action: str


def build_plan(
    seed: int,
    steps: int,
    victims: tuple[str, ...],
    actions: tuple[str, ...] = ACTIONS,
    events: int = 6,
) -> tuple[ChaosEvent, ...]:
    """Deterministically derive a fault schedule from a seed.

    Pure: no clock, no global RNG -- two calls with equal arguments
    return equal plans, which is what makes a CI failure replayable
    from nothing but the seed.  Steps are drawn without replacement so
    at most one fault lands between consecutive writes.
    """
    import random

    if not victims:
        raise ValueError("chaos plan needs at least one victim")
    rng = random.Random(seed)
    count = min(events, steps)
    chosen_steps = sorted(rng.sample(range(1, steps + 1), count))
    plan = tuple(
        ChaosEvent(step=step, victim=rng.choice(victims), action=rng.choice(actions))
        for step in chosen_steps
    )
    return plan


def free_port() -> int:
    """Pick a currently free TCP port (the daemons use SO_REUSEADDR, so
    the same port survives kill/restart cycles)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def wait_for_port(host: str, port: int, timeout: float = 10.0) -> bool:
    """Poll until a TCP connect succeeds (a daemon finished booting)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=0.5):
                return True
        except OSError:
            time.sleep(0.05)
    return False


@dataclass
class ManagedProc:
    """One supervised subprocess and how to respawn it."""

    name: str
    argv: list
    env: dict
    stderr_path: str
    proc: subprocess.Popen
    restarts: int = 0
    stopped: bool = False  # currently SIGSTOPped

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None


class ProcSupervisor:
    """Launches, signals, restarts, and logs real TSS processes.

    :param log_path: JSONL event log; every spawn/signal/exit/restart is
        appended with a monotonically increasing sequence number.
    :param stderr_dir: directory collecting each process's stderr, one
        file per process name (kept across restarts, opened in append
        mode), for CI artifact upload.
    """

    def __init__(self, *, log_path: str | None = None, stderr_dir: str | None = None):
        self.procs: dict[str, ManagedProc] = {}
        self.events: list[dict] = []
        self._seq = 0
        self._log_path = log_path
        self._stderr_dir = stderr_dir
        if stderr_dir is not None:
            os.makedirs(stderr_dir, exist_ok=True)

    # -- event log ------------------------------------------------------

    def record(self, action: str, name: str, **info) -> None:
        self._seq += 1
        event = {"seq": self._seq, "action": action, "name": name, **info}
        self.events.append(event)
        if self._log_path is not None:
            with open(self._log_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(event, sort_keys=True) + "\n")

    # -- process control ------------------------------------------------

    def spawn(
        self, name: str, argv: list, env: dict | None = None
    ) -> ManagedProc:
        """Launch a process under supervision.

        ``argv`` conventionally starts with ``sys.executable -m
        repro...`` so the child runs the same interpreter and source
        tree as the harness.  The environment always pins
        ``PYTHONHASHSEED=0`` for cross-process determinism.
        """
        if name in self.procs and self.procs[name].alive:
            raise RuntimeError(f"process {name!r} is already running")
        full_env = dict(os.environ)
        full_env["PYTHONHASHSEED"] = "0"
        if env:
            full_env.update(env)
        stderr_path = (
            os.path.join(self._stderr_dir, f"{name}.stderr")
            if self._stderr_dir is not None
            else os.devnull
        )
        stderr_fh = open(stderr_path, "ab")
        try:
            proc = subprocess.Popen(
                [str(a) for a in argv],
                stdout=subprocess.DEVNULL,
                stderr=stderr_fh,
                env=full_env,
            )
        finally:
            stderr_fh.close()  # the child holds its own copy of the fd
        managed = ManagedProc(
            name=name, argv=list(argv), env=dict(env or {}),
            stderr_path=stderr_path, proc=proc,
        )
        prior = self.procs.get(name)
        if prior is not None:
            managed.restarts = prior.restarts
        self.procs[name] = managed
        self.record("spawn", name, pid=proc.pid)
        return managed

    def signal(self, name: str, signum: int) -> bool:
        """Deliver a signal; False when the process is already gone."""
        managed = self.procs[name]
        try:
            managed.proc.send_signal(signum)
        except (ProcessLookupError, OSError):
            self.record("signal_missed", name, signum=int(signum))
            return False
        if signum == signal.SIGSTOP:
            managed.stopped = True
        elif signum == signal.SIGCONT:
            managed.stopped = False
        self.record("signal", name, signum=int(signum),
                    signame=signal.Signals(signum).name)
        return True

    def sigkill(self, name: str) -> bool:
        return self.signal(name, signal.SIGKILL)

    def sigterm(self, name: str) -> bool:
        return self.signal(name, signal.SIGTERM)

    def sigstop(self, name: str) -> bool:
        return self.signal(name, signal.SIGSTOP)

    def sigcont(self, name: str) -> bool:
        return self.signal(name, signal.SIGCONT)

    def wait(self, name: str, timeout: float = 10.0) -> int | None:
        """Wait for exit; returns the return code, or None on timeout."""
        managed = self.procs[name]
        try:
            code = managed.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.record("wait_timeout", name, timeout=timeout)
            return None
        self.record("exit", name, returncode=code)
        return code

    def restart(self, name: str, settle: float = 0.0) -> ManagedProc:
        """Respawn a dead (or killed) process with its original argv.

        The daemons bind with SO_REUSEADDR, so the replacement reclaims
        the same port; durable state (store root, db log, keeper
        journal) lives on disk and carries over -- exactly the
        crash+restart cycle the invariants are about.
        """
        managed = self.procs[name]
        if managed.alive:
            raise RuntimeError(f"process {name!r} is still running")
        if settle:
            time.sleep(settle)
        fresh = self.spawn(name, managed.argv, managed.env)
        fresh.restarts = managed.restarts + 1
        self.record("restart", name, restarts=fresh.restarts)
        return fresh

    def alive(self, name: str) -> bool:
        managed = self.procs.get(name)
        return managed is not None and managed.alive

    def shutdown(self, grace: float = 3.0) -> None:
        """Stop everything: SIGCONT stalled procs, SIGTERM, then SIGKILL."""
        for name, managed in self.procs.items():
            if not managed.alive:
                continue
            if managed.stopped:
                self.sigcont(name)
            self.sigterm(name)
        deadline = time.monotonic() + grace
        for name, managed in self.procs.items():
            if not managed.alive:
                continue
            left = max(0.1, deadline - time.monotonic())
            try:
                managed.proc.wait(timeout=left)
            except subprocess.TimeoutExpired:
                try:
                    managed.proc.kill()
                    managed.proc.wait(timeout=5)
                except OSError:
                    pass
                self.record("forced_kill", name)
        self.record("shutdown", "*")


def python_module_argv(module: str, *args: object) -> list:
    """Argv for running a repro module as a child of this interpreter."""
    return [sys.executable, "-m", module, *[str(a) for a in args]]
