"""A runnable NFS-like file service (protocol-shape baseline).

Captures the three protocol properties the paper contrasts with Chirp:

1. **Per-component LOOKUP**: opening ``/a/b/c`` costs a ``lookup`` RPC per
   path component (plus a ``getattr``), where Chirp's ``open`` is one
   round trip -- the paper's explanation for CFS's lower stat/open latency.
2. **Fixed-size block transfer**: reads and writes move at most
   ``NFS_BLOCK_SIZE`` (4 KB) per RPC, strictly request-response -- the
   paper's explanation for NFS's ~10 MB/s bandwidth ceiling.
3. **File handles, not descriptors**: handles are server-side tokens for
   paths; there is no open/close state on the server.

Caching is deliberately absent on both sides, matching the paper's
"apples-to-apples" configuration (NFS with caching disabled).
"""

from __future__ import annotations

import logging
import os
import secrets
import socket
import threading
from typing import Optional

from repro.chirp.protocol import ChirpStat
from repro.util.errors import (
    ChirpError,
    DisconnectedError,
    DoesNotExistError,
    InvalidRequestError,
    StatusCode,
    error_from_status,
    status_from_exception,
)
from repro.util.paths import PathEscapeError, confine, normalize_virtual
from repro.util.wire import LineStream

__all__ = ["NfsLikeServer", "NfsLikeClient", "NFS_BLOCK_SIZE"]

log = logging.getLogger("repro.baselines.nfslike")

NFS_BLOCK_SIZE = 4096


class NfsLikeServer:
    """A minimal NFS-flavored server over one exported directory."""

    def __init__(self, root: str, host: str = "127.0.0.1", port: int = 0):
        self.root = os.path.realpath(root)
        if not os.path.isdir(self.root):
            raise NotADirectoryError(root)
        self.host, self.port = host, port
        self._fh_to_path: dict[str, str] = {}
        self._path_to_fh: dict[str, str] = {}
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self.address = (host, port)
        self.root_fh = self._fh_for("/")

    # -- handle table ---------------------------------------------------

    def _fh_for(self, vpath: str) -> str:
        vpath = normalize_virtual(vpath)
        with self._lock:
            fh = self._path_to_fh.get(vpath)
            if fh is None:
                fh = secrets.token_hex(8)
                self._path_to_fh[vpath] = fh
                self._fh_to_path[fh] = vpath
            return fh

    def _path_for(self, fh: str) -> str:
        with self._lock:
            try:
                return self._fh_to_path[fh]
            except KeyError:
                raise error_from_status(
                    int(StatusCode.STALE), f"stale file handle {fh}"
                ) from None

    def _real(self, vpath: str) -> str:
        try:
            return confine(self.root, vpath)
        except PathEscapeError as exc:
            raise InvalidRequestError(str(exc)) from exc

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "NfsLikeServer":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(64)
        sock.settimeout(0.2)  # prompt stop(): see chirp server
        self._listener = sock
        self.address = sock.getsockname()[:2]
        t = threading.Thread(target=self._accept_loop, name="nfslike-accept", daemon=True)
        t.start()
        self._threads.append(t)
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        for t in self._threads:
            t.join(timeout=5)
        self._threads.clear()

    def __enter__(self) -> "NfsLikeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(None)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            t = threading.Thread(target=self._serve, args=(conn,), daemon=True)
            t.start()

    def _serve(self, sock: socket.socket) -> None:
        stream = LineStream(sock)
        try:
            while not self._stop.is_set():
                tokens = stream.read_tokens()
                if not tokens:
                    continue
                try:
                    self._dispatch(stream, tokens)
                except ChirpError as exc:
                    stream.write_line(int(exc.status), str(exc))
                except OSError as exc:
                    stream.write_line(int(status_from_exception(exc)), str(exc))
                except (ValueError, IndexError) as exc:
                    stream.write_line(int(StatusCode.INVALID_REQUEST), str(exc))
        except DisconnectedError:
            pass
        finally:
            stream.close()

    # -- RPCs --------------------------------------------------------------

    def _dispatch(self, stream: LineStream, tokens: list[str]) -> None:
        op, args = tokens[0], tokens[1:]
        if op == "lookup":
            parent = self._path_for(args[0])
            child = normalize_virtual(parent.rstrip("/") + "/" + args[1])
            if not os.path.exists(self._real(child)):
                raise DoesNotExistError(child)
            stream.write_line(0, self._fh_for(child))
        elif op == "getattr":
            st = ChirpStat.from_os(os.stat(self._real(self._path_for(args[0]))))
            stream.write_line(0, *st.to_tokens())
        elif op == "read":
            fh, offset, count = args[0], int(args[1]), int(args[2])
            count = min(count, NFS_BLOCK_SIZE)
            with open(self._real(self._path_for(fh)), "rb") as f:
                f.seek(offset)
                data = f.read(count)
            stream.write_line(len(data))
            if data:
                stream.write(data)
        elif op == "write":
            fh, offset, count = args[0], int(args[1]), int(args[2])
            if count > NFS_BLOCK_SIZE:
                raise InvalidRequestError("write exceeds NFS block size")
            data = stream.read_exact(count)
            real = self._real(self._path_for(fh))
            fd = os.open(real, os.O_WRONLY)
            try:
                os.pwrite(fd, data, offset)
            finally:
                os.close(fd)
            stream.write_line(count)
        elif op == "create":
            parent = self._path_for(args[0])
            child = normalize_virtual(parent.rstrip("/") + "/" + args[1])
            fd = os.open(self._real(child), os.O_CREAT | os.O_WRONLY | os.O_TRUNC, 0o644)
            os.close(fd)
            stream.write_line(0, self._fh_for(child))
        elif op == "remove":
            parent = self._path_for(args[0])
            child = normalize_virtual(parent.rstrip("/") + "/" + args[1])
            os.unlink(self._real(child))
            self._forget(child)
            stream.write_line(0)
        elif op == "rename":
            src = normalize_virtual(self._path_for(args[0]).rstrip("/") + "/" + args[1])
            dst = normalize_virtual(self._path_for(args[2]).rstrip("/") + "/" + args[3])
            os.rename(self._real(src), self._real(dst))
            self._forget(src)
            stream.write_line(0)
        elif op == "mkdir":
            parent = self._path_for(args[0])
            child = normalize_virtual(parent.rstrip("/") + "/" + args[1])
            os.mkdir(self._real(child))
            stream.write_line(0, self._fh_for(child))
        elif op == "rmdir":
            parent = self._path_for(args[0])
            child = normalize_virtual(parent.rstrip("/") + "/" + args[1])
            os.rmdir(self._real(child))
            self._forget(child)
            stream.write_line(0)
        elif op == "readdir":
            names = sorted(os.listdir(self._real(self._path_for(args[0]))))
            stream.write_line(len(names))
            for name in names:
                stream.write_line(name)
        elif op == "rootfh":
            stream.write_line(0, self.root_fh)
        else:
            raise InvalidRequestError(f"unknown op {op!r}")

    def _forget(self, vpath: str) -> None:
        with self._lock:
            fh = self._path_to_fh.pop(vpath, None)
            if fh is not None:
                self._fh_to_path.pop(fh, None)


class NfsLikeClient:
    """Client performing NFS-style name resolution and block transfer."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host, self.port = host, port
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._stream = LineStream(sock)
        self._lock = threading.Lock()
        self.root_fh = self._call("rootfh")[1]

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "NfsLikeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, *tokens, payload: bytes | None = None) -> list[str]:
        with self._lock:
            self._stream.write_line(*tokens)
            if payload:
                self._stream.write(payload)
            reply = self._stream.read_tokens()
            status = int(reply[0])
            if status < 0:
                raise error_from_status(status, reply[1] if len(reply) > 1 else "")
            return reply

    def _call_data(self, *tokens) -> bytes:
        with self._lock:
            self._stream.write_line(*tokens)
            reply = self._stream.read_tokens()
            status = int(reply[0])
            if status < 0:
                raise error_from_status(status, reply[1] if len(reply) > 1 else "")
            return self._stream.read_exact(status)

    # -- name resolution: one LOOKUP per component ------------------------

    def lookup(self, path: str) -> str:
        fh = self.root_fh
        for part in [p for p in normalize_virtual(path).split("/") if p]:
            fh = self._call("lookup", fh, part)[1]
        return fh

    def getattr(self, path: str) -> ChirpStat:
        reply = self._call("getattr", self.lookup(path))
        return ChirpStat.from_tokens(reply[1:])

    def readdir(self, path: str) -> list[str]:
        fh = self.lookup(path)
        with self._lock:
            self._stream.write_line("readdir", fh)
            reply = self._stream.read_tokens()
            status = int(reply[0])
            if status < 0:
                raise error_from_status(status, reply[1] if len(reply) > 1 else "")
            return [
                (self._stream.read_tokens() or [""])[0] for _ in range(status)
            ]

    # -- block-at-a-time data path ------------------------------------------

    def read_block(self, fh: str, offset: int, count: int = NFS_BLOCK_SIZE) -> bytes:
        return self._call_data("read", fh, offset, min(count, NFS_BLOCK_SIZE))

    def write_block(self, fh: str, offset: int, data: bytes) -> int:
        if len(data) > NFS_BLOCK_SIZE:
            raise InvalidRequestError("block exceeds NFS block size")
        reply = self._call("write", fh, offset, len(data), payload=data)
        return int(reply[0])

    def read_file(self, path: str) -> bytes:
        """Whole-file read: one getattr + ceil(size/4KB) read RPCs."""
        fh = self.lookup(path)
        size = ChirpStat.from_tokens(self._call("getattr", fh)[1:]).size
        chunks = []
        offset = 0
        while offset < size:
            data = self.read_block(fh, offset)
            if not data:
                break
            chunks.append(data)
            offset += len(data)
        return b"".join(chunks)

    def write_file(self, path: str, data: bytes) -> int:
        """Whole-file write: create + ceil(size/4KB) write RPCs."""
        parent, _, name = normalize_virtual(path).rpartition("/")
        fh = self._call("create", self.lookup(parent or "/"), name)[1]
        offset = 0
        view = memoryview(data)
        while offset < len(data):
            block = bytes(view[offset : offset + NFS_BLOCK_SIZE])
            offset += self.write_block(fh, offset, block)
        return offset

    def create(self, path: str) -> str:
        parent, _, name = normalize_virtual(path).rpartition("/")
        return self._call("create", self.lookup(parent or "/"), name)[1]

    def remove(self, path: str) -> None:
        parent, _, name = normalize_virtual(path).rpartition("/")
        self._call("remove", self.lookup(parent or "/"), name)

    def mkdir(self, path: str) -> str:
        parent, _, name = normalize_virtual(path).rpartition("/")
        return self._call("mkdir", self.lookup(parent or "/"), name)[1]

    def rmdir(self, path: str) -> None:
        parent, _, name = normalize_virtual(path).rpartition("/")
        self._call("rmdir", self.lookup(parent or "/"), name)

    def rename(self, old: str, new: str) -> None:
        op, _, oname = normalize_virtual(old).rpartition("/")
        np_, _, nname = normalize_virtual(new).rpartition("/")
        self._call("rename", self.lookup(op or "/"), oname, self.lookup(np_ or "/"), nname)
