"""Baselines the paper compares against.

:mod:`repro.baselines.nfslike` is a runnable NFS-flavored file service:
stateless per-RPC design, per-component ``LOOKUP`` name resolution, and
fixed-size (4 KB) read/write transfers in strict request-response rhythm.
It exists so the loopback latency/bandwidth benchmarks compare our Chirp
implementation against the *protocol structure* the paper blames for NFS's
low bandwidth ("the low bandwidth is due to the protocol, not due to the
target disk"), holding everything else (Python, sockets, host) constant.
"""

from repro.baselines.nfslike import NfsLikeServer, NfsLikeClient, NFS_BLOCK_SIZE

__all__ = ["NfsLikeServer", "NfsLikeClient", "NFS_BLOCK_SIZE"]
