"""repro: a Tactical Storage System (TSS).

A reproduction of "Separating Abstractions from Resources in a Tactical
Storage System" (Thain, Klous, Wozniak, Brenner, Striegel, Izaguirre --
SC 2005).

The system has two layers plus the glue that binds them to applications:

- **Resource layer** (:mod:`repro.chirp`, :mod:`repro.catalog`): personal
  file servers exporting a Unix-like protocol with virtual user spaces and
  per-directory ACLs, plus catalogs for discovery.
- **Abstraction layer** (:mod:`repro.core`, :mod:`repro.db`): CFS, DPFS,
  DSFS and DSDB, all recursively speaking the same Unix interface.
- **Adapter** (:mod:`repro.adapter`): the Parrot analog -- a POSIX surface
  plus interposition so unmodified application code runs on TSS paths.
- **GEMS** (:mod:`repro.gems`): replication, audit and repair policies on
  the DSDB, as deployed for bioinformatics in the paper.
- **Simulation** (:mod:`repro.sim`): the calibrated discrete-event models
  that regenerate the paper's performance figures (see EXPERIMENTS.md).

Quickstart::

    from repro import FileServer, ServerConfig, Adapter

    server = FileServer(ServerConfig(root="/tmp/export", owner="unix:me"))
    server.start()
    host, port = server.address

    adapter = Adapter()
    with adapter.open(f"/cfs/{host}:{port}/hello.txt", "w") as f:
        f.write("tactical storage\\n")
"""

from repro.chirp import ChirpClient, FileServer, ServerConfig, OpenFlags
from repro.catalog import CatalogServer, CatalogClient
from repro.core import (
    CFS,
    DPFS,
    DSFS,
    DSDB,
    ClientPool,
    LocalFilesystem,
    RetryPolicy,
)
from repro.adapter import Adapter, Mountlist, interposed
from repro.db import MetadataDB, DatabaseServer, DatabaseClient, Query
from repro.transport import (
    Endpoint,
    EndpointManager,
    MetricsRegistry,
    default_registry,
)
from repro.auth import Acl, AclEntry, parse_rights
from repro.auth.methods import (
    AuthContext,
    ClientCredentials,
    SimulatedCA,
    SimulatedKDC,
)

__version__ = "1.0.0"

__all__ = [
    "ChirpClient",
    "FileServer",
    "ServerConfig",
    "OpenFlags",
    "CatalogServer",
    "CatalogClient",
    "CFS",
    "DPFS",
    "DSFS",
    "DSDB",
    "ClientPool",
    "LocalFilesystem",
    "RetryPolicy",
    "Adapter",
    "Mountlist",
    "interposed",
    "MetadataDB",
    "DatabaseServer",
    "DatabaseClient",
    "Query",
    "Endpoint",
    "EndpointManager",
    "MetricsRegistry",
    "default_registry",
    "Acl",
    "AclEntry",
    "parse_rights",
    "AuthContext",
    "ClientCredentials",
    "SimulatedCA",
    "SimulatedKDC",
    "__version__",
]
