"""Per-directory access control lists with the reserve right.

Rights (paper, section 4):

======  =====================================================
``r``   read files in the directory
``w``   write or create files
``l``   list the directory
``d``   delete files (but not modify them)
``a``   administer: modify the ACL
``v``   *reserve*: ``mkdir`` creates a fresh namespace whose ACL
        grants the caller only the rights in the parenthesized
        group, e.g. ``v(rwla)``
======  =====================================================

An ACL is an ordered list of ``(subject-pattern, rights)`` entries.  The
effective rights of a subject are the *union* of all matching entries.
ACLs are stored in a hidden file (``.__acl``) inside each directory, one
entry per line -- the same recursive-abstraction trick the server uses for
everything else: plain files are sufficient.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.auth.subjects import subject_matches, validate_subject

__all__ = [
    "Rights",
    "ALL_RIGHTS",
    "ACL_FILE_NAME",
    "AclEntry",
    "Acl",
    "parse_rights",
    "format_rights",
]

ACL_FILE_NAME = ".__acl"
ALL_RIGHTS = frozenset("rwldav")

# Convenience aliases accepted by parse_rights.
_RIGHT_ALIASES = {
    "read": "r",
    "write": "w",
    "list": "l",
    "delete": "d",
    "admin": "a",
    "reserve": "v",
    "rw": "rw",
    "rwl": "rwl",
    "rwld": "rwld",
    "rwlda": "rwlda",
    "full": "rwldav",
    "none": "",
    "n": "",  # the canonical no-rights marker emitted by format_rights
}


@dataclass(frozen=True)
class Rights:
    """An immutable set of rights plus the reserve sub-rights.

    ``flags`` is a frozenset drawn from ``rwldav``.  When ``v`` is present,
    ``reserve`` holds the rights a reserved (freshly mkdir'd) directory
    grants its creator; an empty reserve group means ``v()`` -- the caller
    may reserve a directory but receives no rights inside it, which is
    legal if unusual.
    """

    flags: frozenset[str] = frozenset()
    reserve: frozenset[str] = frozenset()

    def __post_init__(self):
        bad = self.flags - ALL_RIGHTS
        if bad:
            raise ValueError(f"unknown rights {sorted(bad)}")
        bad = self.reserve - (ALL_RIGHTS - {"v"})
        if bad:
            raise ValueError(f"unknown reserve rights {sorted(bad)}")
        if self.reserve and "v" not in self.flags:
            raise ValueError("reserve group present without the v right")

    def has(self, right: str) -> bool:
        return right in self.flags

    def union(self, other: "Rights") -> "Rights":
        return Rights(self.flags | other.flags, self.reserve | other.reserve)

    def __bool__(self) -> bool:
        return bool(self.flags)

    def __str__(self) -> str:
        return format_rights(self)


def parse_rights(text: str) -> Rights:
    """Parse a rights string such as ``rwl``, ``v(rwla)``, or ``rlv(rwl)``."""
    text = text.strip().lower()
    text = _RIGHT_ALIASES.get(text, text)
    flags: set[str] = set()
    reserve: set[str] = set()
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "v":
            flags.add("v")
            i += 1
            if i < n and text[i] == "(":
                close = text.find(")", i)
                if close < 0:
                    raise ValueError(f"unclosed reserve group in {text!r}")
                group = text[i + 1 : close]
                for g in group:
                    if g not in ALL_RIGHTS or g == "v":
                        raise ValueError(f"bad reserve right {g!r} in {text!r}")
                    reserve.add(g)
                i = close + 1
        elif ch in ALL_RIGHTS:
            flags.add(ch)
            i += 1
        else:
            raise ValueError(f"bad right {ch!r} in {text!r}")
    return Rights(frozenset(flags), frozenset(reserve))


def format_rights(rights: Rights) -> str:
    """Serialize rights in canonical order, e.g. ``rwlv(rwla)``."""
    order = "rwlda"
    out = "".join(c for c in order if c in rights.flags)
    if "v" in rights.flags:
        out += "v(" + "".join(c for c in order if c in rights.reserve) + ")"
    return out or "n"  # "n" = explicit no-rights marker


@dataclass(frozen=True)
class AclEntry:
    """One line of an ACL: a subject pattern and its rights."""

    pattern: str
    rights: Rights

    def matches(self, subject: str) -> bool:
        return subject_matches(self.pattern, subject)

    def to_line(self) -> str:
        return f"{self.pattern} {format_rights(self.rights)}"

    @classmethod
    def from_line(cls, line: str) -> "AclEntry":
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"malformed ACL line {line!r}")
        pattern, rights_text = parts
        if "*" not in pattern and "?" not in pattern and "[" not in pattern:
            validate_subject(pattern)
        elif ":" not in pattern and pattern != "*":
            raise ValueError(f"ACL pattern {pattern!r} lacks a method prefix")
        rights = parse_rights(rights_text) if rights_text != "n" else Rights()
        return cls(pattern, rights)


@dataclass
class Acl:
    """An ordered access control list.

    The union rule means order does not affect the outcome of permission
    checks, but order is preserved for human readability and round-trips.
    """

    entries: list[AclEntry] = field(default_factory=list)

    # -- construction --------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Acl":
        entries = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            entries.append(AclEntry.from_line(line))
        return cls(entries)

    @classmethod
    def owner_default(cls, owner_subject: str) -> "Acl":
        """The ACL a fresh server root gets: owner has every right."""
        return cls([AclEntry(owner_subject, parse_rights("rwldav(rwlda)"))])

    def to_text(self) -> str:
        return "".join(e.to_line() + "\n" for e in self.entries)

    # -- queries -------------------------------------------------------

    def rights_for(self, subject: str) -> Rights:
        """Union of rights over all entries matching ``subject``."""
        out = Rights()
        for entry in self.entries:
            if entry.matches(subject):
                out = out.union(entry.rights)
        return out

    def check(self, subject: str, right: str) -> bool:
        """Does ``subject`` hold ``right`` (one of ``rwldav``)?"""
        if right not in ALL_RIGHTS:
            raise ValueError(f"unknown right {right!r}")
        return right in self.rights_for(subject).flags

    def reserve_rights_for(self, subject: str) -> frozenset[str]:
        """The rights a reserved mkdir grants this subject (union rule)."""
        return self.rights_for(subject).reserve

    def __iter__(self) -> Iterator[AclEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # -- mutation ------------------------------------------------------

    def set_entry(self, pattern: str, rights: Rights | str) -> None:
        """Add or replace the entry for ``pattern``.

        Setting empty rights removes the entry entirely (matching the
        behaviour of the real chirp ``setacl ... none``).
        """
        if isinstance(rights, str):
            rights = parse_rights(rights)
        self.entries = [e for e in self.entries if e.pattern != pattern]
        if rights.flags:
            self.entries.append(AclEntry(pattern, rights))

    def reserved_for(self, subject: str) -> "Acl":
        """Build the ACL of a directory created under the reserve right.

        Per the paper: "the newly-created directory is initialized with an
        ACL giving only the calling user the rights specified in the parent
        directory" -- i.e. the parenthesized group, which may deliberately
        omit ``a`` to stop the visitor extending access to others.
        """
        granted = self.reserve_rights_for(subject)
        return Acl([AclEntry(subject, Rights(frozenset(granted)))] if granted else [])


def load_acl(directory: str) -> Acl | None:
    """Read the ACL file stored inside ``directory`` (None if absent)."""
    path = os.path.join(directory, ACL_FILE_NAME)
    try:
        with open(path, "r", encoding="utf-8") as f:
            return Acl.from_text(f.read())
    except FileNotFoundError:
        return None


def store_acl(directory: str, acl: Acl) -> None:
    """Atomically write the ACL file inside ``directory``."""
    path = os.path.join(directory, ACL_FILE_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(acl.to_text())
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
