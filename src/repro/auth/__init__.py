"""Virtual user space: authentication and access control for the TSS.

The paper's file server manages *free-form text identities independently of
the local user database* so that sharing can cross administrative domains.
This package implements that virtual user space:

- :mod:`repro.auth.subjects` -- ``method:name`` subject strings and
  wildcard pattern matching (``hostname:*.cse.nd.edu``).
- :mod:`repro.auth.acl` -- per-directory access control lists with rights
  ``R W L D A`` and the *reserve* right ``V(...)`` that lets visiting users
  carve out fresh private namespaces via ``mkdir``.
- :mod:`repro.auth.methods` -- the four authentication methods from the
  paper (``hostname``, ``unix``, ``globus``, ``kerberos``); the Globus CA
  and the Kerberos KDC are simulated (see DESIGN.md, substitutions table).
"""

from repro.auth.subjects import (
    make_subject,
    parse_subject,
    subject_matches,
    validate_subject,
)
from repro.auth.acl import (
    Acl,
    AclEntry,
    Rights,
    ALL_RIGHTS,
    parse_rights,
    format_rights,
)
from repro.auth.methods import (
    AuthContext,
    AuthFailed,
    authenticate_client,
    authenticate_server,
    SimulatedCA,
    GlobusCredential,
    SimulatedKDC,
    KerberosTicket,
)

__all__ = [
    "make_subject",
    "parse_subject",
    "subject_matches",
    "validate_subject",
    "Acl",
    "AclEntry",
    "Rights",
    "ALL_RIGHTS",
    "parse_rights",
    "format_rights",
    "AuthContext",
    "AuthFailed",
    "authenticate_client",
    "authenticate_server",
    "SimulatedCA",
    "GlobusCredential",
    "SimulatedKDC",
    "KerberosTicket",
]
