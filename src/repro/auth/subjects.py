"""Subject names: the TSS virtual user space.

A *subject* is a free-form string ``method:name`` produced by a successful
authentication -- e.g. ``hostname:laptop.cse.nd.edu``,
``unix:dthain``, ``globus:/O=NotreDame/CN=Alice``,
``kerberos:alice@ND.EDU``.  Access-control entries hold subject *patterns*
in the same syntax where the name part may contain shell-style wildcards.
"""

from __future__ import annotations

from fnmatch import fnmatchcase

__all__ = [
    "KNOWN_METHODS",
    "make_subject",
    "parse_subject",
    "validate_subject",
    "subject_matches",
]

KNOWN_METHODS = ("hostname", "unix", "globus", "kerberos")


def make_subject(method: str, name: str) -> str:
    """Build a ``method:name`` subject string."""
    if not method or ":" in method:
        raise ValueError(f"bad auth method {method!r}")
    if not name:
        raise ValueError("empty subject name")
    return f"{method}:{name}"


def parse_subject(subject: str) -> tuple[str, str]:
    """Split a subject into (method, name); raises on malformed input."""
    method, sep, name = subject.partition(":")
    if not sep or not method or not name:
        raise ValueError(f"malformed subject {subject!r}")
    return method, name


def validate_subject(subject: str) -> str:
    """Validate and return a subject string (for storage in ACLs)."""
    parse_subject(subject)
    if any(c in subject for c in " \t\n"):
        raise ValueError(f"whitespace in subject {subject!r}")
    return subject


def subject_matches(pattern: str, subject: str) -> bool:
    """True when an ACL pattern matches an authenticated subject.

    Matching is case-sensitive shell-glob matching over the *entire*
    ``method:name`` string, so ``globus:/O=NotreDame/*`` matches every
    GSI subject issued under that organization, and a ``*`` pattern
    matches anyone.  The method part must match literally unless it is
    itself wildcarded -- ``hostname:*`` can never match a ``unix:`` user.
    """
    return fnmatchcase(subject, pattern)
