"""The four authentication methods of the Chirp file server.

Wire handshake (over the same :class:`~repro.util.wire.LineStream` as the
rest of the protocol)::

    C: auth <method>
    S: refused            (method not enabled here; client may try another)
    S: proceed            (method enabled; method-specific dialogue follows)
    ... method dialogue ...
    S: success <subject>  | failure <reason>

A client "may attempt any number of authentication methods in any order"
(paper, section 4); the first success fixes the subject for the session.

Methods:

``hostname``
    The server derives identity from the peer address via a resolver hook.
    Weak by design -- it identifies a *machine*, not a person.

``unix``
    Challenge-response within a shared local filesystem: the server asks
    the client to create a specific file, then infers the client's local
    username from the created file's ``st_uid``.  Works whenever client and
    server share a filesystem (in the paper, and here, the same host).

``globus``
    Grid Security Infrastructure.  **Simulated** (see DESIGN.md): a
    :class:`SimulatedCA` signs distinguished names with an HMAC chain and
    issues a per-credential private key; the server verifies the signature
    against its trusted-CA table and challenges the client to prove
    possession of the key.  The subject-name flow (``globus:/O=.../CN=...``)
    and failure modes (unknown CA, bad signature, stolen cert without key)
    match the real system.

``kerberos``
    **Simulated** KDC: principals authenticate to the KDC with a password
    and receive a time-limited service ticket sealed under the service's
    key, plus a session key; the server unseals the ticket and challenges
    the client to prove it holds the session key.  Expired tickets fail.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import os
import secrets
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.auth.subjects import make_subject
from repro.util.wire import LineStream

__all__ = [
    "AuthFailed",
    "AuthContext",
    "ClientCredentials",
    "authenticate_server",
    "authenticate_client",
    "SimulatedCA",
    "GlobusCredential",
    "SimulatedKDC",
    "KerberosTicket",
    "TICKET_LIFETIME",
]

TICKET_LIFETIME = 3600.0  # seconds; mirrors a short Kerberos ticket life


class AuthFailed(Exception):
    """Every enabled method was attempted and none succeeded."""


def _hmac(key: bytes, *parts: str) -> str:
    mac = hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        mac.update(part.encode("utf-8"))
        mac.update(b"\x00")
    return mac.hexdigest()


# ---------------------------------------------------------------------------
# Simulated Globus GSI
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GlobusCredential:
    """A signed distinguished name plus its possession-proof key."""

    dn: str
    ca_name: str
    signature: str
    key: str  # private: proves possession; never sent on the wire


class SimulatedCA:
    """A certificate authority that signs DNs with an HMAC chain.

    The CA secret stands in for the CA's private key.  A server that
    trusts this CA holds the same secret (the analog of holding the CA's
    public certificate -- symmetric rather than asymmetric, which is fine
    for reproducing the *authorization flow*; see DESIGN.md).
    """

    def __init__(self, name: str, secret: bytes | None = None):
        if not name:
            raise ValueError("CA needs a name")
        self.name = name
        self.secret = secret if secret is not None else secrets.token_bytes(32)

    def issue(self, dn: str) -> GlobusCredential:
        """Issue a credential for a distinguished name like ``/O=ND/CN=a``."""
        if not dn.startswith("/"):
            raise ValueError("distinguished names start with '/'")
        return GlobusCredential(
            dn=dn,
            ca_name=self.name,
            signature=_hmac(self.secret, "cert", dn),
            key=_hmac(self.secret, "key", dn),
        )

    def verify_signature(self, dn: str, signature: str) -> bool:
        return hmac.compare_digest(signature, _hmac(self.secret, "cert", dn))

    def key_for(self, dn: str) -> str:
        return _hmac(self.secret, "key", dn)


# ---------------------------------------------------------------------------
# Simulated Kerberos
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KerberosTicket:
    """An opaque sealed ticket plus the session key the KDC handed us."""

    blob: str  # base64 payload + "." + HMAC under the service key
    session_key: str
    principal: str
    expires: float


class SimulatedKDC:
    """A key distribution center with a principal database.

    Services register and receive a service key; clients authenticate with
    a password and receive tickets sealed under that service key.
    """

    def __init__(self, realm: str):
        self.realm = realm
        self._principals: dict[str, str] = {}
        self._service_keys: dict[str, bytes] = {}

    def add_principal(self, name: str, password: str) -> None:
        self._principals[name] = password

    def register_service(self, service: str) -> bytes:
        key = secrets.token_bytes(32)
        self._service_keys[service] = key
        return key

    def issue_ticket(
        self,
        principal: str,
        password: str,
        service: str,
        *,
        lifetime: float = TICKET_LIFETIME,
        now: Optional[float] = None,
    ) -> KerberosTicket:
        if self._principals.get(principal) != password:
            raise PermissionError(f"bad password for {principal}")
        service_key = self._service_keys.get(service)
        if service_key is None:
            raise KeyError(f"unknown service {service}")
        now = time.time() if now is None else now
        payload = {
            "client": f"{principal}@{self.realm}",
            "service": service,
            "expires": now + lifetime,
            "skey": secrets.token_hex(16),
        }
        raw = json.dumps(payload, sort_keys=True)
        sealed = base64.b64encode(raw.encode()).decode()
        sig = _hmac(service_key, "ticket", raw)
        return KerberosTicket(
            blob=f"{sealed}.{sig}",
            session_key=payload["skey"],
            principal=payload["client"],
            expires=payload["expires"],
        )

    @staticmethod
    def unseal(blob: str, service_key: bytes, *, now: Optional[float] = None) -> dict:
        """Server-side: verify and open a ticket; raises on any problem."""
        sealed, _, sig = blob.partition(".")
        if not sig:
            raise PermissionError("malformed ticket")
        raw = base64.b64decode(sealed).decode()
        if not hmac.compare_digest(sig, _hmac(service_key, "ticket", raw)):
            raise PermissionError("ticket signature invalid")
        payload = json.loads(raw)
        now = time.time() if now is None else now
        if payload["expires"] < now:
            raise PermissionError("ticket expired")
        return payload


# ---------------------------------------------------------------------------
# Server / client configuration
# ---------------------------------------------------------------------------


@dataclass
class AuthContext:
    """Server-side authentication configuration.

    :ivar enabled: methods offered, in no particular order.
    :ivar hostname_resolver: maps a peer IP address to a hostname; None
        return disables hostname auth for that peer.  The default maps
        loopback to ``localhost`` (tests install richer mappings).
    :ivar unix_challenge_dir: directory shared with local clients for the
        unix challenge (defaults to the system temp dir).
    :ivar trusted_cas: CA name -> CA secret for globus auth.
    :ivar kerberos_service_key: this server's service key from the KDC.
    :ivar clock: time source for ticket-expiry checks.
    """

    enabled: tuple[str, ...] = ("hostname", "unix")
    hostname_resolver: Callable[[str], Optional[str]] = None  # type: ignore[assignment]
    unix_challenge_dir: str = ""
    trusted_cas: dict[str, bytes] = field(default_factory=dict)
    kerberos_service_key: Optional[bytes] = None
    now: Callable[[], float] = time.time

    def __post_init__(self):
        if self.hostname_resolver is None:
            self.hostname_resolver = default_hostname_resolver
        if not self.unix_challenge_dir:
            import tempfile

            self.unix_challenge_dir = tempfile.gettempdir()


def default_hostname_resolver(addr: str) -> Optional[str]:
    if addr in ("127.0.0.1", "::1"):
        return "localhost"
    try:
        import socket

        return socket.getfqdn(addr) or None
    except OSError:
        return None


@dataclass
class ClientCredentials:
    """Client-side credentials; ``methods`` gives the order of attempts."""

    methods: tuple[str, ...] = ("unix", "hostname")
    globus: Optional[GlobusCredential] = None
    kerberos: Optional[KerberosTicket] = None


# ---------------------------------------------------------------------------
# Server-side dialogue
# ---------------------------------------------------------------------------


def authenticate_server(stream: LineStream, ctx: AuthContext, peer_addr: str) -> str:
    """Run the server side of authentication; returns the subject.

    Loops over client attempts until one succeeds; raises
    :class:`AuthFailed` if the client gives up (sends ``auth done``).
    """
    while True:
        tokens = stream.read_tokens()
        if not tokens or tokens[0] != "auth":
            stream.write_line("failure", "expected auth command")
            raise AuthFailed("protocol violation before authentication")
        if len(tokens) == 2 and tokens[1] == "done":
            stream.write_line("failure", "no method succeeded")
            raise AuthFailed("client exhausted authentication methods")
        if len(tokens) != 2:
            stream.write_line("refused")
            continue
        method = tokens[1]
        if method not in ctx.enabled:
            stream.write_line("refused")
            continue
        stream.write_line("proceed")
        subject = _SERVER_DIALOGUES[method](stream, ctx, peer_addr)
        if subject is not None:
            stream.write_line("success", subject)
            return subject
        stream.write_line("failure", f"{method} authentication failed")


def _server_hostname(stream: LineStream, ctx: AuthContext, peer_addr: str) -> Optional[str]:
    name = ctx.hostname_resolver(peer_addr)
    if not name:
        return None
    return make_subject("hostname", name)


def _server_unix(stream: LineStream, ctx: AuthContext, peer_addr: str) -> Optional[str]:
    challenge = os.path.join(
        ctx.unix_challenge_dir, f".tss-challenge-{secrets.token_hex(16)}"
    )
    stream.write_line("challenge", challenge)
    reply = stream.read_tokens()
    try:
        if not reply or reply[0] != "touched":
            return None
        try:
            st = os.stat(challenge)
        except FileNotFoundError:
            return None
        try:
            import pwd

            username = pwd.getpwuid(st.st_uid).pw_name
        except (ImportError, KeyError):
            username = str(st.st_uid)
        return make_subject("unix", username)
    finally:
        try:
            os.unlink(challenge)
        except OSError:
            pass


def _server_globus(stream: LineStream, ctx: AuthContext, peer_addr: str) -> Optional[str]:
    tokens = stream.read_tokens()
    if len(tokens) != 4 or tokens[0] != "cred":
        return None
    _, dn, ca_name, signature = tokens
    # Always send the nonce so the dialogue has a fixed line shape; the
    # verdict is computed at the end.  This keeps client and server in
    # lockstep even when the certificate is rejected.
    nonce = secrets.token_hex(16)
    stream.write_line("nonce", nonce)
    reply = stream.read_tokens()
    if len(reply) != 2 or reply[0] != "response":
        return None
    ca_secret = ctx.trusted_cas.get(ca_name)
    if ca_secret is None or not dn:
        return None
    if not hmac.compare_digest(signature, _hmac(ca_secret, "cert", dn)):
        return None
    expected = _hmac(_hmac(ca_secret, "key", dn).encode(), "nonce", nonce)
    if not hmac.compare_digest(reply[1], expected):
        return None
    return make_subject("globus", dn)


def _server_kerberos(stream: LineStream, ctx: AuthContext, peer_addr: str) -> Optional[str]:
    if ctx.kerberos_service_key is None:
        return None
    nonce = secrets.token_hex(16)
    stream.write_line("nonce", nonce)
    tokens = stream.read_tokens()
    if len(tokens) != 3 or tokens[0] != "ticket":
        return None
    _, blob, response = tokens
    try:
        payload = SimulatedKDC.unseal(blob, ctx.kerberos_service_key, now=ctx.now())
    except (PermissionError, ValueError, KeyError):
        return None
    expected = _hmac(payload["skey"].encode(), "nonce", nonce)
    if not hmac.compare_digest(response, expected):
        return None
    return make_subject("kerberos", payload["client"])


_SERVER_DIALOGUES = {
    "hostname": _server_hostname,
    "unix": _server_unix,
    "globus": _server_globus,
    "kerberos": _server_kerberos,
}


# ---------------------------------------------------------------------------
# Client-side dialogue
# ---------------------------------------------------------------------------


def authenticate_client(stream: LineStream, creds: ClientCredentials) -> str:
    """Run the client side; returns the subject granted by the server."""
    for method in creds.methods:
        if method not in _CLIENT_DIALOGUES:
            raise ValueError(f"unknown auth method {method!r}")
        stream.write_line("auth", method)
        reply = stream.read_tokens()
        if reply and reply[0] == "refused":
            continue
        if reply:
            # Admission control answers a fresh connection with a bare
            # status line (e.g. ``-10 retry_after_ms=250``) before ever
            # reading the auth line.  Surface it as the matching
            # ChirpError (BusyError carries the retry-after hint) so the
            # transport can back off instead of reporting auth failure.
            _raise_if_refusal_status(reply)
        if not reply or reply[0] != "proceed":
            raise AuthFailed(f"unexpected server reply {reply!r}")
        ok = _CLIENT_DIALOGUES[method](stream, creds)
        final = stream.read_tokens()
        if final and final[0] == "success" and len(final) == 2 and ok:
            return final[1]
        # failure: fall through to the next method
    stream.write_line("auth", "done")
    final = stream.read_tokens()
    raise AuthFailed("all authentication methods failed")


def _raise_if_refusal_status(reply: list[str]) -> None:
    """Raise the ChirpError for a negative-status line mid-handshake.

    Handshake replies are words (``proceed``, ``refused``); a leading
    negative integer is a protocol-level refusal from a server that
    declined the connection outright.  Old clients (without this check)
    fall through to a clean ``AuthFailed`` instead -- the refusal is
    v1-compatible.
    """
    try:
        status = int(reply[0])
    except ValueError:
        return
    if status < 0:
        from repro.util.errors import error_from_status

        raise error_from_status(status, reply[1] if len(reply) > 1 else "")


def _client_hostname(stream: LineStream, creds: ClientCredentials) -> bool:
    return True  # nothing to do; the server inspects the peer address


def _client_unix(stream: LineStream, creds: ClientCredentials) -> bool:
    tokens = stream.read_tokens()
    if len(tokens) != 2 or tokens[0] != "challenge":
        return False
    path = tokens[1]
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o600)
        os.close(fd)
    except OSError:
        stream.write_line("cannot")
        return False
    stream.write_line("touched")
    return True


def _client_globus(stream: LineStream, creds: ClientCredentials) -> bool:
    cred = creds.globus
    if cred is None:
        # Keep the dialogue shape: empty credential, junk response.
        stream.write_line("cred", "", "", "")
        tokens = stream.read_tokens()
        if len(tokens) == 2 and tokens[0] == "nonce":
            stream.write_line("response", "")
        return False
    stream.write_line("cred", cred.dn, cred.ca_name, cred.signature)
    tokens = stream.read_tokens()
    if len(tokens) != 2 or tokens[0] != "nonce":
        return False
    stream.write_line("response", _hmac(cred.key.encode(), "nonce", tokens[1]))
    return True


def _client_kerberos(stream: LineStream, creds: ClientCredentials) -> bool:
    tokens = stream.read_tokens()
    if len(tokens) != 2 or tokens[0] != "nonce":
        return False
    ticket = creds.kerberos
    if ticket is None:
        stream.write_line("ticket", "", "")
        return False
    response = _hmac(ticket.session_key.encode(), "nonce", tokens[1])
    stream.write_line("ticket", ticket.blob, response)
    return True


_CLIENT_DIALOGUES = {
    "hostname": _client_hostname,
    "unix": _client_unix,
    "globus": _client_globus,
    "kerberos": _client_kerberos,
}
