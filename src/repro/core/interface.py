"""The recursive Unix interface every abstraction implements.

"A TSS uses the same interface at every layer from the file server all the
way up to the user interface: a filesystem with the familiar interface of
open, read, rename, and so forth."  This module pins that interface down
as an abstract class so the adapter can bind any abstraction -- and so new
abstractions (striped, replicated, versioned filesystems, the paper's
future work) plug in without touching the adapter.

Positions are explicit (``pread``/``pwrite``): seek state belongs to the
caller, exactly like the Chirp protocol itself.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import NamedTuple

from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs

__all__ = ["FileHandle", "Filesystem", "StatResult", "to_stat_result"]


class StatResult(NamedTuple):
    """An ``os.stat_result``-compatible view of remote metadata.

    Field order matches ``os.stat_result`` so unmodified code using
    ``st_mode``/``st_size``/... works against interposed stats.
    """

    st_mode: int
    st_ino: int
    st_dev: int
    st_nlink: int
    st_uid: int
    st_gid: int
    st_size: int
    st_atime: int
    st_mtime: int
    st_ctime: int


def to_stat_result(st: ChirpStat) -> StatResult:
    return StatResult(
        st_mode=st.mode,
        st_ino=st.inode,
        st_dev=st.device,
        st_nlink=st.nlink,
        st_uid=st.uid,
        st_gid=st.gid,
        st_size=st.size,
        st_atime=st.atime,
        st_mtime=st.mtime,
        st_ctime=st.ctime,
    )


class FileHandle(ABC):
    """An open file within some abstraction.

    Handles own their recovery: an implementation that talks to a remote
    server transparently reconnects and re-opens according to its
    :class:`~repro.core.retry.RetryPolicy`, raising
    :class:`~repro.util.errors.StaleHandleError` if the file changed
    identity underneath (the paper's NFS-style stale-handle rule).
    """

    @abstractmethod
    def pread(self, length: int, offset: int) -> bytes: ...

    @abstractmethod
    def pwrite(self, data: bytes, offset: int) -> int: ...

    @abstractmethod
    def fsync(self) -> None: ...

    @abstractmethod
    def fstat(self) -> ChirpStat: ...

    def ftruncate(self, size: int) -> None:
        raise NotImplementedError(f"{type(self).__name__} does not support ftruncate")

    @abstractmethod
    def close(self) -> None: ...

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Filesystem(ABC):
    """The Unix-like namespace interface shared by every abstraction.

    Paths are virtual absolute paths within the abstraction.  Methods
    raise :class:`~repro.util.errors.ChirpError` subclasses on failure;
    the adapter translates those to ``OSError`` at the syscall surface.
    """

    @abstractmethod
    def open(self, path: str, flags: OpenFlags, mode: int = 0o644) -> FileHandle: ...

    @abstractmethod
    def stat(self, path: str) -> ChirpStat: ...

    def lstat(self, path: str) -> ChirpStat:
        return self.stat(path)

    @abstractmethod
    def listdir(self, path: str) -> list[str]: ...

    @abstractmethod
    def unlink(self, path: str) -> None: ...

    @abstractmethod
    def rename(self, old: str, new: str) -> None: ...

    @abstractmethod
    def mkdir(self, path: str, mode: int = 0o755) -> None: ...

    @abstractmethod
    def rmdir(self, path: str) -> None: ...

    @abstractmethod
    def truncate(self, path: str, size: int) -> None: ...

    def utime(self, path: str, atime: int, mtime: int) -> None:
        raise NotImplementedError(f"{type(self).__name__} does not support utime")

    @abstractmethod
    def statfs(self) -> StatFs: ...

    def exists(self, path: str) -> bool:
        from repro.util.errors import ChirpError

        try:
            self.stat(path)
            return True
        except ChirpError:
            return False
        except OSError:
            return False

    # -- bulk convenience built on the primitive interface ---------------

    def read_file(self, path: str) -> bytes:
        """Read a whole file via the handle interface."""
        with self.open(path, OpenFlags(read=True)) as h:
            chunks = []
            offset = 0
            while True:
                chunk = h.pread(1 << 20, offset)
                if not chunk:
                    break
                chunks.append(chunk)
                offset += len(chunk)
            return b"".join(chunks)

    def write_file(self, path: str, data: bytes, mode: int = 0o644) -> int:
        """Create/replace a whole file via the handle interface."""
        flags = OpenFlags(write=True, create=True, truncate=True)
        with self.open(path, flags, mode) as h:
            offset = 0
            view = memoryview(data)
            while offset < len(data):
                n = h.pwrite(bytes(view[offset : offset + (1 << 20)]), offset)
                offset += n
            return offset

    def makedirs(self, path: str, mode: int = 0o755) -> None:
        """Create a directory and any missing ancestors."""
        from repro.util.errors import AlreadyExistsError
        from repro.util.paths import normalize_virtual

        parts = [p for p in normalize_virtual(path).split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            try:
                self.mkdir(current, mode)
            except AlreadyExistsError:
                continue

    def walk(self, top: str = "/"):
        """Yield ``(dirpath, dirnames, filenames)`` like :func:`os.walk`."""
        import stat as stat_mod

        dirs, files = [], []
        for name in self.listdir(top):
            child = top.rstrip("/") + "/" + name
            try:
                st = self.stat(child)
            except Exception:
                files.append(name)  # failure coherence: list what we can
                continue
            (dirs if stat_mod.S_ISDIR(st.mode) else files).append(name)
        yield top, dirs, files
        for d in dirs:
            yield from self.walk(top.rstrip("/") + "/" + d)
