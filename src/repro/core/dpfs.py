"""DPFS: the distributed private filesystem.

"Using a distributed-private file system (DPFS), a user can employ the
aggregate storage of multiple file servers in one image.  In a DPFS, the
file servers are used only to store file data.  The directory structure
is stored in a local Unix filesystem chosen by the user."

A DPFS is private because its metadata lives on the user's own disk;
nothing else distinguishes it from a DSFS.  Create one with
:meth:`DPFS.create`, reopen it later with :meth:`DPFS.open_volume`.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.cache.manager import CacheManager
from repro.core.metastore import LocalMetadataStore, VOLUME_FILE
from repro.core.placement import PlacementPolicy
from repro.core.pool import ClientPool
from repro.transport.recovery import RetryPolicy
from repro.core.stubfs import StubFilesystem
from repro.util.errors import AlreadyExistsError

__all__ = ["DPFS"]


def _ensure_remote_dirs(pool: ClientPool, servers, data_dir: str) -> None:
    """mkdir -p the per-volume data directory on every data server."""
    for host, port in servers:
        client = pool.get(host, int(port))
        parts = [p for p in data_dir.split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            try:
                client.mkdir(current)
            except AlreadyExistsError:
                continue


class DPFS(StubFilesystem):
    """A stub filesystem whose directory tree is a private local directory."""

    def __init__(
        self,
        meta_root: str,
        pool: ClientPool,
        servers: Sequence[tuple[str, int]],
        data_dir: str,
        **kwargs,
    ):
        self.meta_root = os.path.realpath(meta_root)
        super().__init__(LocalMetadataStore(meta_root), pool, servers, data_dir, **kwargs)

    @classmethod
    def create(
        cls,
        meta_root: str,
        pool: ClientPool,
        servers: Sequence[tuple[str, int]],
        name: str = "dpfs",
        placement: Optional[PlacementPolicy] = None,
        policy: Optional[RetryPolicy] = None,
        cache: Optional[CacheManager] = None,
    ) -> "DPFS":
        """Create a new DPFS volume.

        "To create a new filesystem, one must specify a list of hosts,
        create a new directory root, and create new storage directories
        on each server."
        """
        servers = [(h, int(p)) for h, p in servers]
        data_dir = f"/tssdata/{name}"
        meta = LocalMetadataStore(meta_root)
        meta.write_config({"name": name, "servers": servers, "data_dir": data_dir})
        _ensure_remote_dirs(pool, servers, data_dir)
        fs = cls(
            meta_root,
            pool,
            servers,
            data_dir,
            placement=placement,
            policy=policy,
            cache=cache,
        )
        return fs

    @classmethod
    def open_volume(
        cls,
        meta_root: str,
        pool: ClientPool,
        placement: Optional[PlacementPolicy] = None,
        policy: Optional[RetryPolicy] = None,
        sync_writes: bool = False,
        cache: Optional[CacheManager] = None,
    ) -> "DPFS":
        """Open an existing DPFS volume from its local metadata root."""
        meta = LocalMetadataStore(meta_root)
        doc = meta.read_config()
        return cls(
            meta_root,
            pool,
            [(h, int(p)) for h, p in doc["servers"]],
            doc["data_dir"],
            placement=placement,
            policy=policy,
            sync_writes=sync_writes,
            cache=cache,
        )

    def add_server(self, host: str, port: int) -> None:
        """Grow the volume onto a new data server, without downtime."""
        endpoint = (host, int(port))
        if endpoint in self.servers:
            return
        _ensure_remote_dirs(self.pool, [endpoint], self.data_dir)
        self.servers.append(endpoint)
        doc = self.meta.read_config()
        doc["servers"] = self.servers
        self.meta.unlink("/" + VOLUME_FILE)
        self.meta.write_config(doc)
