"""VersionedFS: a filesystem that transparently versions data.

The third word of the paper's future-work sentence ("filesystems that
transparently stripe, replicate, and **version** data"), and the enabling
piece of its distributed-backup vision: "allowing cooperating users to
easily record many backup images, thus allowing for on-line perusal,
recovery, and forensic analysis of data over time."

Every write session is copy-on-write: opening a file for writing creates
a fresh data file (seeded with the current contents unless truncating),
and *closing* the handle atomically commits it as the newest version.
The version history lives in the stub, updated by write-to-temp +
rename -- the same atomic primitive everything else here uses.

Semantics:

- readers always see the latest *committed* version; a writer's
  in-progress changes are invisible until close (snapshot isolation at
  file granularity);
- a crash before close leaves the history untouched and at worst one
  orphan data file, which :func:`repro.core.fsck.fsck_volume`-style
  scanning can reclaim;
- ``versions(path)`` lists history; ``open_version``/``read_version``
  peruse it; ``restore`` promotes an old version (itself recorded as a
  new version -- history is append-only); ``prune`` trims old data.
"""

from __future__ import annotations

import json
import posixpath
import time
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.core.cfs import ChirpFileHandle
from repro.core.interface import FileHandle, Filesystem
from repro.core.metastore import MetadataStore, VOLUME_FILE
from repro.core.placement import PlacementPolicy, RoundRobinPlacement
from repro.core.pool import ClientPool
from repro.transport.recovery import RetryPolicy
from repro.core.stubs import unique_data_name
from repro.util.errors import (
    AlreadyExistsError,
    ChirpError,
    DisconnectedError,
    DoesNotExistError,
    InvalidRequestError,
    IsADirectoryError_,
    NotAuthorizedError,
)
from repro.util.paths import normalize_virtual

__all__ = ["VersionedFS", "VersionStub", "Version"]

_TMP_SUFFIX = ".__vtmp"


@dataclass(frozen=True)
class Version:
    """One committed version of a file."""

    number: int
    host: str
    port: int
    path: str
    committed_at: float

    def to_list(self) -> list:
        return [self.number, self.host, self.port, self.path, self.committed_at]

    @classmethod
    def from_list(cls, items) -> "Version":
        number, host, port, path, committed_at = items
        return cls(int(number), str(host), int(port), str(path), float(committed_at))

    @property
    def endpoint(self) -> tuple[str, int]:
        return (self.host, self.port)


@dataclass(frozen=True)
class VersionStub:
    """A file's version history (newest last)."""

    versions: tuple[Version, ...]

    def encode(self) -> bytes:
        doc = {
            "tss": "vstub",
            "v": 1,
            "versions": [v.to_list() for v in self.versions],
        }
        return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")

    @classmethod
    def decode(cls, raw: bytes) -> "VersionStub":
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise InvalidRequestError(f"not a version stub: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("tss") != "vstub":
            raise InvalidRequestError("not a version stub")
        try:
            versions = tuple(Version.from_list(v) for v in doc["versions"])
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidRequestError(f"malformed version stub: {exc}") from exc
        if not versions:
            raise InvalidRequestError("version stub holds no versions")
        return cls(versions)

    @property
    def latest(self) -> Version:
        return self.versions[-1]

    def get(self, number: int) -> Version:
        for v in self.versions:
            if v.number == number:
                return v
        raise DoesNotExistError(f"no version {number}")


class _CommitOnClose(FileHandle):
    """Wraps a data handle; commits the new version when closed."""

    def __init__(self, inner: ChirpFileHandle, commit):
        self._inner = inner
        self._commit = commit
        self._closed = False

    def pread(self, length: int, offset: int) -> bytes:
        return self._inner.pread(length, offset)

    def pwrite(self, data: bytes, offset: int) -> int:
        return self._inner.pwrite(data, offset)

    def fsync(self) -> None:
        self._inner.fsync()

    def fstat(self) -> ChirpStat:
        return self._inner.fstat()

    def ftruncate(self, size: int) -> None:
        self._inner.ftruncate(size)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._inner.fsync()
        except ChirpError:
            pass
        self._inner.close()
        self._commit()

    def abort(self) -> None:
        """Close without committing (the version never happened)."""
        self._closed = True
        self._inner.close()


class VersionedFS(Filesystem):
    """A DSFS-shaped filesystem with per-file version history."""

    def __init__(
        self,
        meta: MetadataStore,
        pool: ClientPool,
        servers: Sequence[tuple[str, int]],
        data_dir: str,
        placement: Optional[PlacementPolicy] = None,
        policy: Optional[RetryPolicy] = None,
        now=time.time,
    ):
        if not servers:
            raise ValueError("a versioned filesystem needs data servers")
        self.meta = meta
        self.pool = pool
        self.servers = [(h, int(p)) for h, p in servers]
        self.data_dir = normalize_virtual(data_dir)
        self.placement = placement or RoundRobinPlacement()
        self.policy = policy or RetryPolicy()
        self.now = now

    # -- plumbing -------------------------------------------------------

    @staticmethod
    def _guard_name(path: str) -> str:
        norm = normalize_virtual(path)
        base = posixpath.basename(norm)
        if base == VOLUME_FILE or base.endswith(_TMP_SUFFIX):
            raise NotAuthorizedError("reserved name")
        return norm

    def _read_stub(self, path: str) -> VersionStub:
        raw = self.meta.read(path)
        if not raw:
            raise DoesNotExistError(f"{path}: stub mid-creation")
        return VersionStub.decode(raw)

    def _swing_stub(self, path: str, stub: VersionStub) -> None:
        """Atomically replace the version history via tmp + rename."""
        tmp = path + _TMP_SUFFIX
        try:
            self.meta.unlink(tmp)
        except ChirpError:
            pass
        if not self.meta.create_exclusive(tmp, stub.encode()):
            raise AlreadyExistsError(f"{path}: concurrent version commit")
        self.meta.rename(tmp, path)

    def _new_data_location(self) -> tuple[tuple[str, int], str]:
        endpoint = tuple(self.placement.choose(self.servers))
        return endpoint, self.data_dir + "/" + unique_data_name()

    def _data_handle(
        self, endpoint, data_path: str, flags: OpenFlags, mode: int
    ) -> ChirpFileHandle:
        client = self.pool.get(*endpoint)
        return ChirpFileHandle(client, data_path, flags, mode, self.policy)

    def _is_dir(self, path: str) -> bool:
        try:
            return self.meta.stat(path).is_dir
        except ChirpError:
            return False

    # -- open (read latest / copy-on-write) ------------------------------

    def open(self, path: str, flags: OpenFlags, mode: int = 0o644) -> FileHandle:
        path = self._guard_name(path)
        if not flags.write:
            version = self._read_stub(path).latest
            return self._data_handle(
                version.endpoint, version.path, replace(flags, create=False), mode
            )
        if self._is_dir(path):
            raise IsADirectoryError_(path)
        return self._open_for_writing(path, flags, mode)

    def _open_for_writing(self, path: str, flags: OpenFlags, mode: int) -> FileHandle:
        exists = True
        try:
            stub = self._read_stub(path)
        except (DoesNotExistError, ChirpError):
            exists = False
            stub = None
        if exists and flags.exclusive:
            raise AlreadyExistsError(path)
        if not exists and not flags.create:
            raise DoesNotExistError(path)

        endpoint, data_path = self._new_data_location()

        # copy-on-write: seed with the current contents unless truncating.
        # On content-addressed servers the seed is a key link -- the new
        # version *shares* the old blob until it diverges, so snapshots
        # of unchanged files cost metadata, not storage.
        seeded = False
        if exists and not flags.truncate:
            seeded = self._seed_by_key(stub.latest, endpoint, data_path, mode)
        if seeded:
            # The data file already exists with the seeded content; open
            # it without create/truncate so writes edit in place.
            dflags = replace(flags, create=False, exclusive=False, truncate=False)
            handle = self._data_handle(endpoint, data_path, dflags, mode)
        else:
            dflags = replace(flags, create=True, exclusive=True)
            handle = self._data_handle(endpoint, data_path, dflags, mode)
            if exists and not flags.truncate:
                source = stub.latest
                client = self.pool.get(*source.endpoint)
                data = client.getfile(source.path)
                offset = 0
                view = memoryview(data)
                while offset < len(data):
                    offset += handle.pwrite(bytes(view[offset : offset + (1 << 20)]), offset)

        def commit():
            current: Optional[VersionStub] = None
            try:
                current = self._read_stub(path)
            except (DoesNotExistError, ChirpError):
                current = None
            next_number = (current.latest.number + 1) if current else 1
            version = Version(
                next_number, endpoint[0], endpoint[1], data_path, self.now()
            )
            history = (current.versions if current else ()) + (version,)
            if current is None:
                if not self.meta.create_exclusive(path, VersionStub((version,)).encode()):
                    # we raced another creator: append to their history
                    current = self._read_stub(path)
                    version2 = Version(
                        current.latest.number + 1,
                        endpoint[0],
                        endpoint[1],
                        data_path,
                        self.now(),
                    )
                    self._swing_stub(path, VersionStub(current.versions + (version2,)))
            else:
                self._swing_stub(path, VersionStub(history))

        return _CommitOnClose(handle, commit)

    def _seed_by_key(self, source: Version, endpoint, data_path: str, mode: int) -> bool:
        """Seed a new data file by content key instead of byte transfer.

        Works when both the source's server and the chosen target speak
        the CAS verbs and the target already holds the blob -- always
        true when they are the same server, which is the common snapshot
        case.  Any refusal (non-CAS server, key absent) returns False
        and the caller streams bytes instead.
        """
        try:
            key = self.pool.get(*source.endpoint).keyof(source.path)
            self.pool.get(*endpoint).putkey(data_path, key, mode)
        except ChirpError:
            return False
        return True

    # -- version perusal -------------------------------------------------

    def versions(self, path: str) -> list[Version]:
        """The file's committed history, oldest first."""
        return list(self._read_stub(self._guard_name(path)).versions)

    def open_version(self, path: str, number: int) -> FileHandle:
        version = self._read_stub(self._guard_name(path)).get(number)
        return self._data_handle(
            version.endpoint, version.path, OpenFlags(read=True), 0
        )

    def read_version(self, path: str, number: int) -> bytes:
        with self.open_version(path, number) as handle:
            chunks = []
            offset = 0
            while True:
                chunk = handle.pread(1 << 20, offset)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)
                offset += len(chunk)

    def restore(self, path: str, number: int) -> Version:
        """Promote an old version to newest (history stays append-only)."""
        path = self._guard_name(path)
        stub = self._read_stub(path)
        old = stub.get(number)
        promoted = Version(
            stub.latest.number + 1, old.host, old.port, old.path, self.now()
        )
        self._swing_stub(path, VersionStub(stub.versions + (promoted,)))
        return promoted

    def prune(self, path: str, keep: int = 1) -> int:
        """Drop all but the newest ``keep`` versions; returns data files
        actually deleted (a data file shared via ``restore`` survives
        until its last referencing version is pruned)."""
        if keep < 1:
            raise ValueError("must keep at least one version")
        path = self._guard_name(path)
        stub = self._read_stub(path)
        if len(stub.versions) <= keep:
            return 0
        kept = stub.versions[-keep:]
        dropped = stub.versions[:-keep]
        self._swing_stub(path, VersionStub(kept))
        still_referenced = {(v.host, v.port, v.path) for v in kept}
        deleted = 0
        for version in dropped:
            key = (version.host, version.port, version.path)
            if key in still_referenced:
                continue
            still_referenced.add(key)  # delete each data file once
            try:
                self.pool.get(*version.endpoint).unlink(version.path)
                deleted += 1
            except ChirpError:
                continue
        return deleted

    # -- namespace ------------------------------------------------------

    def stat(self, path: str) -> ChirpStat:
        path = self._guard_name(path)
        mst = self.meta.stat(path)
        if mst.is_dir:
            return mst
        version = self._read_stub(path).latest
        client = self.pool.get(*version.endpoint)
        dst = self.policy.run(
            lambda: client.stat(version.path), client.ensure_connected
        )
        return ChirpStat(
            device=mst.device,
            inode=mst.inode,
            mode=dst.mode,
            nlink=mst.nlink,
            uid=dst.uid,
            gid=dst.gid,
            size=dst.size,
            atime=dst.atime,
            mtime=dst.mtime,
            ctime=dst.ctime,
        )

    def lstat(self, path: str) -> ChirpStat:
        return self.meta.stat(self._guard_name(path))

    def listdir(self, path: str) -> list[str]:
        names = self.meta.listdir(path)
        names = [n for n in names if not n.endswith(_TMP_SUFFIX)]
        if normalize_virtual(path) == "/":
            names = [n for n in names if n != VOLUME_FILE]
        return names

    def unlink(self, path: str, force: bool = False) -> None:
        """Delete the file and its entire history (data first)."""
        path = self._guard_name(path)
        if self._is_dir(path):
            raise IsADirectoryError_(path)
        stub = self._read_stub(path)
        seen = set()
        for version in stub.versions:
            key = (version.host, version.port, version.path)
            if key in seen:
                continue
            seen.add(key)
            try:
                self.pool.get(*version.endpoint).unlink(version.path)
            except DoesNotExistError:
                continue
            except ChirpError:
                if not force:
                    raise
        self.meta.unlink(path)

    def rename(self, old: str, new: str) -> None:
        self.meta.rename(self._guard_name(old), self._guard_name(new))

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self.meta.mkdir(self._guard_name(path), mode)

    def rmdir(self, path: str) -> None:
        self.meta.rmdir(self._guard_name(path))

    def truncate(self, path: str, size: int) -> None:
        """Truncation is itself a versioned write."""
        path = self._guard_name(path)
        flags = OpenFlags(read=True, write=True)
        handle = self._open_for_writing(path, flags, 0o644)
        try:
            handle.ftruncate(size)
        finally:
            handle.close()

    def statfs(self) -> StatFs:
        total = free = 0
        reachable = 0
        for host, port in self.servers:
            client = self.pool.try_get(host, port)
            if client is None:
                continue
            try:
                fs = client.statfs()
            except ChirpError:
                continue
            total += fs.total_bytes
            free += fs.free_bytes
            reachable += 1
        if reachable == 0:
            raise DisconnectedError("no data server reachable for statfs")
        return StatFs(total, free)
