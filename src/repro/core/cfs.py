"""CFS: the central filesystem abstraction.

"The user simply accesses files and directories on a single file server
without translation. ... CFS is roughly analogous to NFS, except that it
provides grid security and Unix-like consistency by dispensing with
buffering and caching."

All operations pass straight through to one Chirp server; consistency is
whatever the server's host kernel provides.  What CFS adds over the raw
client is *recovery*: handles transparently reconnect with exponential
backoff, re-open their file, and verify (by inode) that it is still the
same file -- otherwise the caller gets a stale-handle error, as in NFS.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Optional

from repro.cache.handle import CachedFileHandle
from repro.cache.manager import CacheManager, file_key
from repro.chirp.client import ChirpClient
from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.core.interface import FileHandle, Filesystem
from repro.transport.recovery import RetryPolicy
from repro.util.errors import DisconnectedError, StaleHandleError
from repro.util.paths import normalize_virtual

__all__ = ["CFS", "ChirpFileHandle"]


class ChirpFileHandle(FileHandle):
    """An open file on a Chirp server, with transparent recovery.

    File descriptors are connection-scoped, so the handle records the
    client's connection *generation* at open.  If the generation moves
    (because this or any other handle reconnected), the fd is dead and the
    handle re-opens before the next operation.  Re-opens strip the
    create/truncate/exclusive bits -- recovering must never clobber data --
    and verify the inode is unchanged, else :class:`StaleHandleError`.
    """

    def __init__(
        self,
        client: ChirpClient,
        path: str,
        flags: OpenFlags,
        mode: int,
        policy: RetryPolicy,
    ):
        self.client = client
        self.path = path
        self.mode = mode
        self.policy = policy
        self._open_flags = flags
        self._reopen_flags = replace(
            flags, create=False, truncate=False, exclusive=False
        )
        self._lock = threading.RLock()
        self._closed = False
        self.fd = self.policy.run(self._first_open, self.client.ensure_connected)

    def _first_open(self) -> int:
        fd = self.client.open(self.path, self._open_flags, self.mode)
        st = self.client.fstat(fd)
        self.inode = st.inode
        self.generation = self.client.generation
        return fd

    def _reopen(self) -> None:
        """Open again on the current connection; verify file identity."""
        fd = self.client.open(self.path, self._reopen_flags, self.mode)
        st = self.client.fstat(fd)
        if st.inode != self.inode:
            try:
                self.client.close_fd(fd)
            except DisconnectedError:
                pass
            raise StaleHandleError(
                f"{self.path}: file changed identity across reconnect"
            )
        self.fd = fd
        self.generation = self.client.generation

    def _recover(self) -> None:
        self.client.ensure_connected()
        self._reopen()

    def _run(self, op, deadline=None):
        with self._lock:
            if self._closed:
                raise DisconnectedError("handle is closed")

            def guarded():
                if self.client.generation != self.generation:
                    # Someone else reconnected; our fd died with the old
                    # connection.  Re-open in place -- no backoff needed,
                    # the new connection is already up.
                    self._reopen()
                return op()

            return self.policy.run(guarded, self._recover, deadline=deadline)

    # -- FileHandle interface -------------------------------------------

    def pread(self, length: int, offset: int, deadline=None) -> bytes:
        return self._run(
            lambda: self.client.pread(self.fd, length, offset, deadline=deadline),
            deadline=deadline,
        )

    def pwrite(self, data: bytes, offset: int) -> int:
        return self._run(lambda: self.client.pwrite(self.fd, data, offset))

    def fsync(self) -> None:
        self._run(lambda: self.client.fsync(self.fd))

    def fstat(self) -> ChirpStat:
        return self._run(lambda: self.client.fstat(self.fd))

    def ftruncate(self, size: int) -> None:
        self._run(lambda: self.client.ftruncate(self.fd, size))

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                if self.client.generation == self.generation:
                    self.client.close_fd(self.fd)
                # else: the fd died with its connection; nothing to close.
            except DisconnectedError:
                pass


class CFS(Filesystem):
    """Direct, untranslated access to one file server (or a subtree).

    :param client: connection to the file server.
    :param root: subtree of the server to expose (default: whole export).
    :param policy: reconnection policy shared by all handles.
    :param sync_writes: transparently add ``O_SYNC`` to every open -- the
        adapter's synchronous-write switch.
    :param cache: optional shared :class:`CacheManager`.  With a
        data-caching policy (``private``), handles are wrapped in
        :class:`~repro.cache.handle.CachedFileHandle`; metadata caching
        happens in the client when the same manager is wired there (the
        :class:`~repro.core.pool.ClientPool` path).  CFS is single-server
        and typically single-writer, which is exactly the ``private``
        contract.
    """

    def __init__(
        self,
        client: ChirpClient,
        root: str = "/",
        policy: Optional[RetryPolicy] = None,
        sync_writes: bool = False,
        cache: Optional[CacheManager] = None,
    ):
        self.client = client
        self.root = normalize_virtual(root)
        self.policy = policy or RetryPolicy()
        self.sync_writes = sync_writes
        self.cache = cache

    def _path(self, path: str) -> str:
        inner = normalize_virtual(path)
        if self.root == "/":
            return inner
        return self.root if inner == "/" else self.root + inner

    def _key(self, server_path: str) -> str:
        return file_key(self.client.host, self.client.port, server_path)

    def _entry_changed(self, server_path: str, data: bool = True) -> None:
        """Belt-and-braces invalidation at the abstraction layer: covers
        stacks where the fs has a cache but the (externally supplied)
        client does not.  Idempotent with the client's own invalidation."""
        if self.cache is None:
            return
        if data:
            self.cache.invalidate_data(self._key(server_path))
        else:
            self.cache.invalidate_meta(self._key(server_path))

    def _run(self, op):
        return self.policy.run(op, self.client.ensure_connected)

    # -- Filesystem interface ---------------------------------------------

    def open(self, path: str, flags: OpenFlags, mode: int = 0o644) -> FileHandle:
        if self.sync_writes and flags.write and not flags.sync:
            flags = replace(flags, sync=True)
        target = self._path(path)
        handle = ChirpFileHandle(self.client, target, flags, mode, self.policy)
        if self.cache is None or not self.cache.data_enabled:
            return handle
        key = self._key(target)
        if flags.truncate:
            self.cache.invalidate_data(key)
        return CachedFileHandle(handle, self.cache, key)

    def stat(self, path: str) -> ChirpStat:
        return self._run(lambda: self.client.stat(self._path(path)))

    def lstat(self, path: str) -> ChirpStat:
        return self._run(lambda: self.client.lstat(self._path(path)))

    def listdir(self, path: str) -> list[str]:
        return self._run(lambda: self.client.getdir(self._path(path)))

    def unlink(self, path: str) -> None:
        target = self._path(path)
        self._run(lambda: self.client.unlink(target))
        self._entry_changed(target)

    def rename(self, old: str, new: str) -> None:
        src, dst = self._path(old), self._path(new)
        self._run(lambda: self.client.rename(src, dst))
        if self.cache is not None:
            # Directory renames strand descendant entries under the old
            # prefix; sweep both subtrees (idempotent with the client's).
            self.cache.invalidate_subtree(self._key(src))
            self.cache.invalidate_subtree(self._key(dst))

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        target = self._path(path)
        self._run(lambda: self.client.mkdir(target, mode))
        self._entry_changed(target, data=False)

    def rmdir(self, path: str) -> None:
        target = self._path(path)
        self._run(lambda: self.client.rmdir(target))
        self._entry_changed(target, data=False)

    def truncate(self, path: str, size: int) -> None:
        target = self._path(path)
        self._run(lambda: self.client.truncate(target, size))
        self._entry_changed(target)

    def utime(self, path: str, atime: int, mtime: int) -> None:
        target = self._path(path)
        self._run(lambda: self.client.utime(target, atime, mtime))
        self._entry_changed(target, data=False)

    def statfs(self) -> StatFs:
        return self._run(self.client.statfs)

    # -- Streaming fast paths ---------------------------------------------

    def read_file(self, path: str) -> bytes:
        """Whole-file read as a single ``getfile`` exchange.

        One RPC instead of an open/pread-loop/close sequence -- the
        streaming fast path of the adapter's bulk helpers.  With a
        data-caching policy the handle path is used instead, so repeat
        reads hit the block cache.
        """
        if self.cache is not None and self.cache.data_enabled:
            return super().read_file(path)
        target = self._path(path)
        return self._run(lambda: self.client.getfile(target))

    def write_file(self, path: str, data: bytes, mode: int = 0o644) -> int:
        """Whole-file replacement as a single ``putfile`` exchange.

        ``putfile`` cannot carry ``O_SYNC``, so a sync-writes CFS falls
        back to the open/pwrite/fsync path of the base implementation.
        """
        if self.sync_writes:
            return super().write_file(path, data, mode)
        target = self._path(path)
        n = self._run(lambda: self.client.putfile(target, data, mode))
        self._entry_changed(target)
        return n
