"""The shared engine of DPFS and DSFS: a stub-indirected filesystem.

The directory tree (wherever it lives -- see
:mod:`repro.core.metastore`) holds directories and *stub files*; file
data lives in per-volume directories on data servers.  This module
implements the paper's semantics over that structure:

- the crash-safe 3-step creation protocol (choose server + unique name;
  exclusively create the stub; exclusively create the data file), whose
  ordering guarantees a crash leaves at worst a *dangling stub* ("better
  than the alternative: a data file but no stub"),
- dangling stubs behave like dangling symlinks: ``open``/``stat`` say
  "file not found", ``lstat`` and ``unlink`` still work,
- deletion removes the data file first, then the stub,
- name-only operations (``mkdir``, ``rename``, ``rmdir``) touch only the
  directory tree,
- failure coherence: an unreachable data server takes out exactly the
  files stored there; everything else keeps working.
"""

from __future__ import annotations

import itertools
import posixpath
from dataclasses import replace
from typing import Callable, Iterable, Optional, Sequence

from repro.cache.handle import CachedFileHandle
from repro.cache.manager import CacheManager, file_key
from repro.cache.meta import MetaCache
from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.core.cfs import ChirpFileHandle
from repro.core.interface import FileHandle, Filesystem
from repro.core.metastore import MetadataStore, VOLUME_FILE
from repro.core.placement import PlacementPolicy, RoundRobinPlacement
from repro.core.pool import ClientPool
from repro.transport.recovery import RetryPolicy
from repro.core.stubs import STUB_MAX_BYTES, Stub, unique_data_name
from repro.util.errors import (
    AlreadyExistsError,
    ChirpError,
    DisconnectedError,
    DoesNotExistError,
    InvalidRequestError,
    IsADirectoryError_,
    NotAuthorizedError,
    TryAgainError,
)
from repro.util.paths import normalize_virtual

__all__ = ["StubFilesystem"]

_CREATE_ATTEMPTS = 4  # retries on data-name collision
_STUB_READ_ATTEMPTS = 5  # retries while a freshly created stub is empty

# Merged stats (namespace identity + data-file attributes) are cached
# under a synthetic per-instance "host" so two stub filesystems mounted
# over the same cache manager can never see each other's entries.
_stubfs_ns = itertools.count()


class StubFilesystem(Filesystem):
    """A distributed filesystem of stubs + data servers.

    Not constructed directly by users; see :class:`repro.core.dpfs.DPFS`
    and :class:`repro.core.dsfs.DSFS` for volume creation and opening.
    """

    def __init__(
        self,
        meta: MetadataStore,
        pool: ClientPool,
        servers: Sequence[tuple[str, int]],
        data_dir: str,
        placement: Optional[PlacementPolicy] = None,
        policy: Optional[RetryPolicy] = None,
        sync_writes: bool = False,
        cache: Optional[CacheManager] = None,
        avoid_servers: Optional[Callable[[], Iterable[tuple[str, int]]]] = None,
    ):
        if not servers:
            raise ValueError("a stub filesystem needs at least one data server")
        self.meta = meta
        self.pool = pool
        self.servers = [(h, int(p)) for h, p in servers]
        self.data_dir = normalize_virtual(data_dir)
        self.placement = placement or RoundRobinPlacement()
        self.policy = policy or RetryPolicy()
        self.sync_writes = sync_writes
        self.cache = cache
        # Advisory placement exclusions (e.g. servers advertising drain
        # in the catalog; see DrainingServerView).  Consulted per create;
        # the callable must be cheap and must not raise.
        self.avoid_servers = avoid_servers
        self._cache_host = f"stubfs{next(_stubfs_ns)}"

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _guard_name(path: str) -> str:
        norm = normalize_virtual(path)
        if posixpath.basename(norm) == VOLUME_FILE:
            raise NotAuthorizedError("the volume file is managed by the filesystem")
        return norm

    def _read_stub(self, path: str) -> Stub:
        """Read and decode a stub, tolerating the create-then-write window."""
        last: Exception | None = None
        for _ in range(_STUB_READ_ATTEMPTS):
            raw = self.meta.read(path)
            if len(raw) > STUB_MAX_BYTES:
                raise InvalidRequestError(f"{path}: not a stub file")
            if raw:
                return Stub.decode(raw)
            last = TryAgainError(f"{path}: stub is mid-creation")
            self.policy.clock.sleep(0.01)
        raise DoesNotExistError(f"{path}: stub never completed creation") from last

    def _merged_key(self, path: str) -> str:
        return file_key(self._cache_host, 0, normalize_virtual(path))

    def _entry_changed(self, path: str, stub: Optional[Stub] = None) -> None:
        """Drop the merged stat for ``path`` and, when the stub is known,
        the data file's blocks + metadata on its server's shared key."""
        if self.cache is None:
            return
        self.cache.meta.invalidate(self._merged_key(path))
        if stub is not None:
            self.cache.invalidate_data(file_key(stub.host, stub.port, stub.path))

    def _data_handle(
        self, stub: Stub, flags: OpenFlags, mode: int, path: Optional[str] = None
    ) -> FileHandle:
        client = self.pool.get(*stub.endpoint)
        handle: FileHandle = ChirpFileHandle(
            client, stub.path, flags, mode, self.policy
        )
        cache = self.cache
        if cache is None or not cache.data_enabled:
            return handle
        data_key = file_key(stub.host, stub.port, stub.path)
        if flags.truncate:
            cache.invalidate_data(data_key)
        merged_key = self._merged_key(path) if path is not None else None

        def on_mutate():
            # The data write already invalidated the shared data-server
            # key (CachedFileHandle does that); the merged stat lives
            # under this filesystem's private namespace and must go too.
            if merged_key is not None:
                cache.meta.invalidate(merged_key)

        return CachedFileHandle(handle, cache, data_key, on_mutate=on_mutate)

    def _is_dir(self, path: str) -> bool:
        try:
            return self.meta.stat(path).is_dir
        except ChirpError:
            return False

    # ------------------------------------------------------------------
    # open / create
    # ------------------------------------------------------------------

    def open(self, path: str, flags: OpenFlags, mode: int = 0o644) -> FileHandle:
        path = self._guard_name(path)
        if self.sync_writes and flags.write and not flags.sync:
            flags = replace(flags, sync=True)
        if flags.create:
            return self._create_or_open(path, flags, mode)
        return self._open_existing(path, flags, mode)

    def _open_existing(self, path: str, flags: OpenFlags, mode: int) -> FileHandle:
        if self._is_dir(path):
            raise IsADirectoryError_(path)
        dflags = replace(flags, create=False, exclusive=False)
        # A concurrent creator may be between steps 2 and 3 (stub exists,
        # data file not yet created); give it a moment before declaring
        # the stub dangling.  Truly dangling stubs (crashed creator, data
        # evicted) still surface as "file not found", per the paper.
        for attempt in range(_STUB_READ_ATTEMPTS):
            stub = self._read_stub(path)
            try:
                return self._data_handle(stub, dflags, mode, path)
            except DoesNotExistError:
                if attempt + 1 < _STUB_READ_ATTEMPTS:
                    self.policy.clock.sleep(0.01)
        raise DoesNotExistError(f"{path}: dangling stub (no data file)")

    def _excluded(self, dead: set[tuple[str, int]]) -> frozenset:
        """Placement exclusions: observed-dead plus advisory avoidance.

        The advisory set (draining servers) is dropped when honoring it
        would leave nothing to place on -- a write landing on a draining
        server beats a write failing outright.
        """
        if self.avoid_servers is None:
            return frozenset(dead)
        avoid = dead | {(h, int(p)) for h, p in self.avoid_servers()}
        if all(tuple(ep) in avoid for ep in self.servers):
            return frozenset(dead)
        return frozenset(avoid)

    def _create_or_open(self, path: str, flags: OpenFlags, mode: int) -> FileHandle:
        dead: set[tuple[str, int]] = set()
        for _ in range(_CREATE_ATTEMPTS):
            # Step 1: choose a server and generate a unique data name.
            try:
                endpoint = tuple(
                    self.placement.choose(self.servers, self._excluded(dead))
                )
            except LookupError:
                raise DisconnectedError(f"{path}: no data server for placement") from None
            data_path = self.data_dir + "/" + unique_data_name()
            stub = Stub(endpoint[0], endpoint[1], data_path)
            # Step 2: exclusively create the stub entry.
            if not self.meta.create_exclusive(path, stub.encode()):
                if flags.exclusive:
                    raise AlreadyExistsError(path)
                return self._open_existing(path, flags, mode)
            # Step 3: exclusively create the data file.
            dflags = replace(flags, create=True, exclusive=True, write=True)
            try:
                handle = self._data_handle(stub, dflags, mode, path)
                # The path may have been cached as absent before creation.
                self._entry_changed(path)
                return handle
            except AlreadyExistsError:
                # Unlikely data-name collision: abort this creation
                # (paper's rule) and retry with a fresh name.
                self.meta.unlink(path)
                continue
            except DisconnectedError:
                self.meta.unlink(path)
                dead.add(endpoint)
                continue
            except Exception:
                self.meta.unlink(path)
                raise
        raise DisconnectedError(f"{path}: no data server accepted the new file")

    # ------------------------------------------------------------------
    # metadata operations
    # ------------------------------------------------------------------

    def stat(self, path: str) -> ChirpStat:
        path = self._guard_name(path)
        cache = self.cache
        key = None
        generation = 0
        if cache is not None and cache.meta_enabled:
            key = self._merged_key(path)
            cached = cache.meta.get("stat", key)
            if cached is MetaCache.NEGATIVE:
                raise DoesNotExistError(f"{path}: no such file or directory (cached)")
            if cached is not MetaCache.MISS:
                return cached
            # Sampled before the RPCs so a concurrent same-client
            # mutation's invalidation refuses this (now stale) result.
            generation = cache.meta.generation(key)
        try:
            merged = self._stat_uncached(path)
        except DoesNotExistError:
            if key is not None:
                cache.meta.put_negative(
                    "stat", key, cache.policy.negative_expiry(), generation=generation
                )
            raise
        if key is not None:
            cache.meta.put(
                "stat", key, merged, cache.policy.meta_expiry(), generation=generation
            )
        return merged

    def _stat_uncached(self, path: str) -> ChirpStat:
        mst = self.meta.stat(path)
        if mst.is_dir:
            return mst
        stub = self._read_stub(path)
        client = self.pool.get(*stub.endpoint)
        try:
            dst = self.policy.run(
                lambda: client.stat(stub.path), client.ensure_connected
            )
        except DoesNotExistError:
            raise DoesNotExistError(f"{path}: dangling stub (no data file)") from None
        # Identity (device/inode) comes from the namespace entry; content
        # attributes (size, times, mode bits) come from the data file.
        return ChirpStat(
            device=mst.device,
            inode=mst.inode,
            mode=dst.mode,
            nlink=mst.nlink,
            uid=dst.uid,
            gid=dst.gid,
            size=dst.size,
            atime=dst.atime,
            mtime=dst.mtime,
            ctime=dst.ctime,
        )

    def lstat(self, path: str) -> ChirpStat:
        """The stub entry itself -- works even when data is unreachable."""
        return self.meta.stat(self._guard_name(path))

    def listdir(self, path: str) -> list[str]:
        names = self.meta.listdir(path)
        if normalize_virtual(path) == "/":
            names = [n for n in names if n != VOLUME_FILE]
        return names

    def unlink(self, path: str, force: bool = False) -> None:
        """Delete data first, then the stub (the paper's ordering).

        ``force=True`` removes the stub even when the data server is
        unreachable -- the escape hatch for permanently lost servers.
        """
        path = self._guard_name(path)
        if self._is_dir(path):
            raise IsADirectoryError_(path)
        stub = self._read_stub(path)
        try:
            client = self.pool.get(*stub.endpoint)
            self.policy.run(
                lambda: client.unlink(stub.path), client.ensure_connected
            )
        except DoesNotExistError:
            pass  # dangling stub: nothing to delete on the data side
        except DisconnectedError:
            if not force:
                raise
        self.meta.unlink(path)
        self._entry_changed(path, stub)

    def rename(self, old: str, new: str) -> None:
        # Name-only: the stub moves, the data file never does.
        old, new = self._guard_name(old), self._guard_name(new)
        self.meta.rename(old, new)
        if self.cache is not None:
            # ``old`` may be a directory: descendants' merged stats are
            # keyed under the old prefix and must go too.  Data blocks
            # live under data-server keys, which a rename never moves.
            self.cache.invalidate_subtree(self._merged_key(old))
            self.cache.invalidate_subtree(self._merged_key(new))

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        path = self._guard_name(path)
        self.meta.mkdir(path, mode)
        # The path may have been cached as absent before creation.
        self._entry_changed(path)

    def rmdir(self, path: str) -> None:
        path = self._guard_name(path)
        self.meta.rmdir(path)
        self._entry_changed(path)

    def truncate(self, path: str, size: int) -> None:
        path = self._guard_name(path)
        stub = self._read_stub(path)
        client = self.pool.get(*stub.endpoint)
        self.policy.run(
            lambda: client.truncate(stub.path, size), client.ensure_connected
        )
        self._entry_changed(path, stub)

    def utime(self, path: str, atime: int, mtime: int) -> None:
        path = self._guard_name(path)
        stub = self._read_stub(path)
        client = self.pool.get(*stub.endpoint)
        self.policy.run(
            lambda: client.utime(stub.path, atime, mtime), client.ensure_connected
        )
        self._entry_changed(path)

    def statfs(self) -> StatFs:
        """Aggregate capacity over the *reachable* data servers."""
        total = free = 0
        reachable = 0
        for host, port in self.servers:
            client = self.pool.try_get(host, port)
            if client is None:
                continue
            try:
                fs = self.policy.run(client.statfs, client.ensure_connected)
            except ChirpError:
                continue
            total += fs.total_bytes
            free += fs.free_bytes
            reachable += 1
        if reachable == 0:
            raise DisconnectedError("no data server reachable for statfs")
        return StatFs(total, free)

    # ------------------------------------------------------------------
    # streaming fast path
    # ------------------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        """Whole-file read as one ``getfile`` on the data server.

        Mirrors :meth:`_open_existing`'s tolerance of the create window:
        a stub whose data file has not appeared yet gets a few retries
        before being declared dangling.  With a data-caching policy the
        handle path is used instead, so repeat reads hit the block cache.
        """
        if self.cache is not None and self.cache.data_enabled:
            return super().read_file(path)
        path = self._guard_name(path)
        if self._is_dir(path):
            raise IsADirectoryError_(path)
        for attempt in range(_STUB_READ_ATTEMPTS):
            stub = self._read_stub(path)
            client = self.pool.get(*stub.endpoint)
            try:
                return self.policy.run(
                    lambda: client.getfile(stub.path), client.ensure_connected
                )
            except DoesNotExistError:
                if attempt + 1 < _STUB_READ_ATTEMPTS:
                    self.policy.clock.sleep(0.01)
        raise DoesNotExistError(f"{path}: dangling stub (no data file)")

    # ------------------------------------------------------------------
    # introspection used by tools and tests
    # ------------------------------------------------------------------

    def stub_for(self, path: str) -> Stub:
        """Expose the stub for a path (tools, tests, repair scripts)."""
        return self._read_stub(self._guard_name(path))
