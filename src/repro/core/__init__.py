"""The abstraction layer: filesystems and databases built from file servers.

Each abstraction recursively exposes the same Unix-like interface the file
servers export (:class:`repro.core.interface.Filesystem`), so abstractions
compose with the adapter and with each other:

- :class:`repro.core.cfs.CFS` -- central filesystem: direct, untranslated
  access to a single file server (the paper's NFS analog, minus caching).
- :class:`repro.core.dpfs.DPFS` -- distributed private filesystem: local
  directory tree of stub files pointing at data on many servers.
- :class:`repro.core.dsfs.DSFS` -- distributed shared filesystem: the
  directory tree itself lives on a file server, so multiple clients share
  multiple devices.
- :class:`repro.core.dsdb.DSDB` -- distributed shared database: metadata
  and pointers in a database server, file data on file servers, accessed
  directly after a query.

All four are *failure coherent*: losing a data server makes only the files
on it unavailable; the namespace (or database) stays navigable.
"""

from repro.core.interface import Filesystem, FileHandle, StatResult, to_stat_result
from repro.core.retry import RetryPolicy
from repro.core.pool import ClientPool
from repro.core.localfs import LocalFilesystem
from repro.core.cfs import CFS
from repro.core.dpfs import DPFS
from repro.core.dsfs import DSFS
from repro.core.dsdb import DSDB
from repro.core.placement import (
    PlacementPolicy,
    RoundRobinPlacement,
    RandomPlacement,
    MostFreePlacement,
)
from repro.core.stubs import Stub, unique_data_name
from repro.core.replfs import ReplicatedFS, MultiStub
from repro.core.fsck import FsckReport, fsck_volume
from repro.core.stripefs import StripedFS, StripeStub
from repro.core.versionfs import VersionedFS, Version, VersionStub

__all__ = [
    "Filesystem",
    "FileHandle",
    "StatResult",
    "to_stat_result",
    "RetryPolicy",
    "ClientPool",
    "LocalFilesystem",
    "CFS",
    "DPFS",
    "DSFS",
    "DSDB",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "RandomPlacement",
    "MostFreePlacement",
    "Stub",
    "unique_data_name",
    "ReplicatedFS",
    "MultiStub",
    "FsckReport",
    "fsck_volume",
    "StripedFS",
    "StripeStub",
    "VersionedFS",
    "Version",
    "VersionStub",
]
