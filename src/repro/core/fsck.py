"""fsck for stub filesystems: audit and repair DPFS/DSFS volumes.

Failure coherence leaves two benign kinds of litter behind (paper,
section 5): *dangling stubs* (a crash between creation steps 2 and 3, or
data evicted by a server's owner) and *orphan data files* (a crash
between data deletion and stub deletion never happens by construction --
data goes first -- but data servers rejoining after a partition, or
interrupted ``heal``/replication, can strand data no stub points to).

``fsck_volume`` walks the directory tree and every data server's volume
directory, classifies both kinds, and (optionally) removes them.  It
needs nothing beyond the Unix interface -- one more dividend of recursive
abstraction.
"""

from __future__ import annotations

import logging
import posixpath
from dataclasses import dataclass, field

from repro.core.stubfs import StubFilesystem
from repro.util.errors import ChirpError, DisconnectedError, DoesNotExistError

__all__ = ["FsckReport", "fsck_volume"]

log = logging.getLogger("repro.core.fsck")


@dataclass
class FsckReport:
    """What an fsck pass found (and possibly fixed)."""

    files_checked: int = 0
    directories_checked: int = 0
    healthy: int = 0
    #: stub path -> reason ("no data file" / "server unreachable")
    dangling_stubs: dict = field(default_factory=dict)
    #: (host, port, data path) of data files no stub references
    orphan_data: list = field(default_factory=list)
    unreachable_servers: list = field(default_factory=list)
    removed_stubs: int = 0
    removed_orphans: int = 0

    @property
    def clean(self) -> bool:
        return not self.dangling_stubs and not self.orphan_data


def _walk_stubs(fs: StubFilesystem, report: FsckReport):
    """Yield (path, stub) for every file entry; count directories."""
    pending = ["/"]
    while pending:
        directory = pending.pop()
        report.directories_checked += 1
        for name in fs.listdir(directory):
            path = posixpath.join(directory, name)
            try:
                if fs.meta.stat(path).is_dir:
                    pending.append(path)
                    continue
            except ChirpError:
                continue
            report.files_checked += 1
            try:
                yield path, fs.stub_for(path)
            except ChirpError:
                report.dangling_stubs[path] = "unreadable stub"


def fsck_volume(
    fs: StubFilesystem,
    *,
    remove_dangling: bool = False,
    remove_orphans: bool = False,
) -> FsckReport:
    """Audit (and optionally repair) one DPFS/DSFS volume.

    Repair is conservative: dangling stubs whose data server is merely
    *unreachable* are reported but never removed -- the server may come
    back.  Only stubs whose server answered "no such file" are eligible
    for removal, and only orphan files in this volume's own data
    directory are eligible for deletion.
    """
    report = FsckReport()
    referenced: dict[tuple[str, int], set[str]] = {
        tuple(endpoint): set() for endpoint in fs.servers
    }

    # Pass 1: every stub must point at live data.
    for path, stub in _walk_stubs(fs, report):
        endpoint = stub.endpoint
        referenced.setdefault(endpoint, set()).add(stub.path)
        client = fs.pool.try_get(*endpoint)
        if client is None:
            report.dangling_stubs[path] = "server unreachable"
            continue
        try:
            client.stat(stub.path)
            report.healthy += 1
        except DoesNotExistError:
            report.dangling_stubs[path] = "no data file"
            if remove_dangling:
                try:
                    fs.meta.unlink(path)
                    report.removed_stubs += 1
                except ChirpError:
                    pass
        except DisconnectedError:
            report.dangling_stubs[path] = "server unreachable"
        except ChirpError as exc:
            report.dangling_stubs[path] = f"error: {exc}"

    # Pass 2: every data file must be referenced by some stub.
    for endpoint in fs.servers:
        endpoint = tuple(endpoint)
        client = fs.pool.try_get(*endpoint)
        if client is None:
            report.unreachable_servers.append(endpoint)
            continue
        try:
            names = client.getdir(fs.data_dir)
        except ChirpError:
            continue
        known = referenced.get(endpoint, set())
        for name in names:
            data_path = fs.data_dir + "/" + name
            if data_path in known:
                continue
            report.orphan_data.append((endpoint[0], endpoint[1], data_path))
            if remove_orphans:
                try:
                    client.unlink(data_path)
                    report.removed_orphans += 1
                except ChirpError:
                    pass

    if not report.clean:
        log.info(
            "fsck: %d dangling stubs, %d orphan data files",
            len(report.dangling_stubs),
            len(report.orphan_data),
        )
    return report
