"""Reconnection policy: exponential backoff with an attempt ceiling.

"If the TCP connection to a server is lost ... the adapter responds by
attempting to reconnect to the server with an exponentially increasing
delay.  (Users may place an upper limit on these retries with a
command-line argument.)"  This module is that behaviour, factored out so
every handle type shares it and tests can drive it with a manual clock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.util.clock import Clock, MonotonicClock
from repro.util.errors import DisconnectedError

__all__ = ["RetryPolicy"]

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """How aggressively to recover from a lost server connection.

    :ivar max_attempts: total tries (first try included); ``1`` disables
        reconnection entirely -- the user-visible "upper limit" knob.
    :ivar initial_delay: seconds before the first reconnect attempt.
    :ivar multiplier: backoff factor between attempts.
    :ivar max_delay: backoff ceiling.
    """

    max_attempts: int = 5
    initial_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 30.0
    clock: Clock = field(default_factory=MonotonicClock)

    def delays(self):
        """The sleep before each *re*-attempt (``max_attempts - 1`` values)."""
        delay = self.initial_delay
        for _ in range(max(0, self.max_attempts - 1)):
            yield min(delay, self.max_delay)
            delay *= self.multiplier

    def run(
        self,
        operation: Callable[[], T],
        recover: Callable[[], None],
    ) -> T:
        """Run ``operation``; on disconnect, back off, ``recover``, retry.

        ``recover`` re-establishes whatever state the operation needs
        (reconnect, re-open, verify inode); exceptions it raises other
        than :class:`DisconnectedError` propagate immediately (e.g. a
        stale-handle verdict must not be retried away).
        """
        delays = self.delays()
        while True:
            try:
                return operation()
            except DisconnectedError as exc:
                delay = next(delays, None)
                if delay is None:
                    raise  # attempts exhausted: surface the disconnect
                self.clock.sleep(delay)
                try:
                    recover()
                except DisconnectedError:
                    # Server still down: burn another attempt and keep
                    # backing off rather than calling operation() doomed.
                    continue
