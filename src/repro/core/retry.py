"""Back-compat shim: reconnection policy now lives in the transport layer.

The exponential-backoff recovery behaviour ("the adapter responds by
attempting to reconnect to the server with an exponentially increasing
delay") moved to :mod:`repro.transport.recovery` when connection
lifecycle was centralized there; this module keeps the historical import
path working.
"""

from __future__ import annotations

from repro.transport.recovery import RetryPolicy

__all__ = ["RetryPolicy"]
