"""Stub files: the pointers that stitch distributed filesystems together.

"Where the directory structure indicates a file, it instead contains a
stub file pointing to the file data elsewhere."  A stub is a one-line
JSON document naming the data server and the data file's name there.
Stubs are deliberately tiny and self-describing, so a directory server
(or a user with ``cat``) can always tell where data lives -- part of the
failure-coherence story: even if the directory service is lost, data
files remain in distinguishable per-volume directories on each server.
"""

from __future__ import annotations

import json
import os
import secrets
import socket
import time
from dataclasses import dataclass

from repro.util.errors import InvalidRequestError

__all__ = ["Stub", "unique_data_name", "STUB_MAX_BYTES"]

STUB_MAX_BYTES = 4096  # anything bigger is certainly not a stub


@dataclass(frozen=True)
class Stub:
    """A pointer to file data on a file server."""

    host: str
    port: int
    path: str  # data file path on that server

    def encode(self) -> bytes:
        doc = {"tss": "stub", "v": 1, "host": self.host, "port": self.port, "path": self.path}
        return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")

    @classmethod
    def decode(cls, raw: bytes) -> "Stub":
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise InvalidRequestError(f"not a stub file: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("tss") != "stub":
            raise InvalidRequestError("not a stub file")
        try:
            return cls(host=str(doc["host"]), port=int(doc["port"]), path=str(doc["path"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidRequestError(f"malformed stub: {exc}") from exc

    @classmethod
    def is_stub(cls, raw: bytes) -> bool:
        try:
            cls.decode(raw)
            return True
        except InvalidRequestError:
            return False

    @property
    def endpoint(self) -> tuple[str, int]:
        return (self.host, self.port)


def unique_data_name() -> str:
    """Generate a collision-resistant data file name.

    Per the paper's creation protocol, the name is derived from "the
    client's IP address, current time, and a random number"; uniqueness is
    then *enforced* by exclusive create on the data server, so this only
    needs to make collisions rare, not impossible.
    """
    try:
        ip = socket.gethostbyname(socket.gethostname())
    except OSError:
        ip = "0.0.0.0"
    ip_tag = ip.replace(".", "-")
    return f"file-{ip_tag}-{time.time_ns():x}-{secrets.token_hex(4)}"
