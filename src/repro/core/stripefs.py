"""StripedFS: a transparently striping filesystem.

The second half of the paper's future-work sentence ("filesystems that
transparently stripe, replicate, and version data").  A file's bytes are
interleaved round-robin in fixed-size stripes across N data servers, so
a single client can exceed one server's disk or NIC -- the aggregate-
bandwidth effect Figures 6-8 get from whole-file placement, delivered
*within* one file.

Layout: logical chunk ``k`` (bytes ``[k*S, (k+1)*S)``) lives in stripe
file ``k % N`` at inner offset ``(k // N) * S``.  Every logical byte maps
to exactly one stripe byte, so the logical size is simply the sum of the
stripe file sizes; pure functions below implement the mapping and are
property-tested against a byte-level reference.

Availability trade-off (documented, deliberate): striping *divides*
failure coherence -- losing any one stripe server makes the whole file
unavailable.  Stripe for bandwidth, replicate for durability; the two
compose by mounting a :class:`~repro.core.replfs.ReplicatedFS` under the
stripes' metadata if both are needed.

Sparse-file caveat: a hole that ends inside an *unwritten stripe tail*
reads as end-of-file rather than zeros (the stripe file is simply short),
so reads stop at the first such hole.  Dense (gapless) files behave
exactly like flat files; sparse logical files would need the logical size
recorded in metadata, which this minimal extension deliberately omits.
"""

from __future__ import annotations

import json
import posixpath
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.core.cfs import ChirpFileHandle
from repro.core.interface import FileHandle, Filesystem
from repro.core.metastore import MetadataStore, VOLUME_FILE
from repro.core.pool import ClientPool
from repro.core.stubs import unique_data_name
from repro.transport.fanout import DEFAULT_FANOUT, FanoutPool
from repro.transport.recovery import RetryPolicy
from repro.util.errors import (
    AlreadyExistsError,
    ChirpError,
    DisconnectedError,
    DoesNotExistError,
    InvalidRequestError,
    IsADirectoryError_,
    NotAuthorizedError,
    PartialFailureError,
)
from repro.util.paths import normalize_virtual

__all__ = [
    "StripedFS",
    "StripeStub",
    "StripedHandle",
    "map_extent",
    "stripe_sizes_for_length",
]

DEFAULT_STRIPE_SIZE = 64 * 1024


# ---------------------------------------------------------------------------
# pure layout math
# ---------------------------------------------------------------------------


def map_extent(offset: int, length: int, n_stripes: int, stripe_size: int):
    """Split a logical byte extent into per-stripe pieces.

    Yields ``(stripe_index, inner_offset, piece_length, logical_offset)``
    in logical order.  Pure function -- the heart of the striping layout.
    """
    if offset < 0 or length < 0:
        raise ValueError("negative offset or length")
    position = offset
    end = offset + length
    while position < end:
        chunk = position // stripe_size
        within = position - chunk * stripe_size
        piece = min(stripe_size - within, end - position)
        stripe = chunk % n_stripes
        inner = (chunk // n_stripes) * stripe_size + within
        yield (stripe, inner, piece, position)
        position += piece


def stripe_sizes_for_length(length: int, n_stripes: int, stripe_size: int) -> list[int]:
    """Size of each stripe file for a logical file of ``length`` bytes."""
    if length < 0:
        raise ValueError("negative length")
    sizes = [0] * n_stripes
    full_chunks, remainder = divmod(length, stripe_size)
    rounds, extra = divmod(full_chunks, n_stripes)
    for i in range(n_stripes):
        sizes[i] = rounds * stripe_size
        if i < extra:
            sizes[i] += stripe_size
    if remainder:
        sizes[extra % n_stripes] += remainder
    return sizes


# ---------------------------------------------------------------------------
# on-disk pointer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StripeStub:
    """Pointer to a striped file's pieces."""

    stripe_size: int
    locations: tuple[tuple[str, int, str], ...]  # one per stripe, in order

    def encode(self) -> bytes:
        doc = {
            "tss": "sstub",
            "v": 1,
            "stripe_size": self.stripe_size,
            "locations": [[h, p, path] for h, p, path in self.locations],
        }
        return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")

    @classmethod
    def decode(cls, raw: bytes) -> "StripeStub":
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise InvalidRequestError(f"not a stripe stub: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("tss") != "sstub":
            raise InvalidRequestError("not a stripe stub")
        try:
            stripe_size = int(doc["stripe_size"])
            locations = tuple(
                (str(h), int(p), str(path)) for h, p, path in doc["locations"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidRequestError(f"malformed stripe stub: {exc}") from exc
        if stripe_size < 1 or not locations:
            raise InvalidRequestError("stripe stub needs stripes and a size")
        return cls(stripe_size, locations)


# ---------------------------------------------------------------------------
# the handle
# ---------------------------------------------------------------------------


class StripedHandle(FileHandle):
    """An open striped file: extents scatter/gather across stripe handles.

    Reads *and* writes spanning several stripes run **in parallel**
    through the filesystem's :class:`FanoutPool` -- each stripe server
    has its own connections at the transport layer, so a wide extent
    aggregates the servers' bandwidth, which is the point of striping.
    Pieces landing on the same stripe keep their logical order (one
    worker walks each stripe's piece list), so per-stripe write ordering
    within one handle stays obvious.  A pool sized to one worker degrades
    to serial execution -- the forced-serial arm of the striping ablation.
    """

    def __init__(
        self,
        handles: list[ChirpFileHandle],
        stripe_size: int,
        fanout: Optional[FanoutPool] = None,
    ):
        if not handles:
            raise DoesNotExistError("no stripe could be opened")
        self._handles = handles
        self.stripe_size = stripe_size
        self.fanout = fanout or FanoutPool(min(len(handles), DEFAULT_FANOUT))

    @property
    def width(self) -> int:
        return len(self._handles)

    def _stripe_label(self, stripe: int) -> str:
        client = self._handles[stripe].client
        return f"{client.host}:{client.port}"

    def _raise_partial(self, failures: list) -> None:
        """Striping has no redundancy, so *any* dead stripe fails the
        operation -- but the error names every dead stripe, not just the
        first, so an operator (or a replication layer above) knows the
        full damage from one exception."""
        if failures:
            failures.sort(key=lambda f: f[0])
            raise PartialFailureError(
                f"{len(failures)} of {self.width} stripes unreachable",
                failures=failures,
            )

    def pread(self, length: int, offset: int) -> bytes:
        pieces = list(
            map_extent(offset, length, self.width, self.stripe_size)
        )
        by_stripe: dict[int, list] = {}
        for item in pieces:
            by_stripe.setdefault(item[0], []).append(item)
        results: dict[int, bytes] = {}  # logical offset -> data
        failures: list = []

        def fetch(stripe: int) -> None:
            handle = self._handles[stripe]
            try:
                for _s, inner, piece, logical in by_stripe[stripe]:
                    data = handle.pread(piece, inner)
                    results[logical] = data
                    if len(data) < piece:
                        break  # EOF in this stripe; later pieces are past it
            except DisconnectedError as exc:
                failures.append(
                    (stripe, self._stripe_label(stripe), str(exc) or "disconnected")
                )

        self.fanout.run([
            (lambda s=stripe: fetch(s)) for stripe in by_stripe
        ])
        self._raise_partial(failures)

        # reassemble while contiguous; stop at the first gap/short piece
        out = []
        position = offset
        for _stripe, _inner, piece, logical in pieces:
            data = results.get(logical)
            if data is None or logical != position:
                break
            out.append(data)
            position += len(data)
            if len(data) < piece:
                break
        return b"".join(out)

    def pwrite(self, data: bytes, offset: int) -> int:
        view = memoryview(data)
        by_stripe: dict[int, list] = {}
        for item in map_extent(offset, len(data), self.width, self.stripe_size):
            by_stripe.setdefault(item[0], []).append(item)

        failures: list = []

        def push(stripe: int) -> int:
            handle = self._handles[stripe]
            done = 0
            try:
                for _s, inner, piece, logical in by_stripe[stripe]:
                    start = logical - offset
                    done += handle.pwrite(bytes(view[start : start + piece]), inner)
            except DisconnectedError as exc:
                failures.append(
                    (stripe, self._stripe_label(stripe), str(exc) or "disconnected")
                )
            return done

        written = sum(
            self.fanout.run([(lambda s=stripe: push(s)) for stripe in by_stripe])
        )
        self._raise_partial(failures)
        return written

    def fsync(self) -> None:
        failures: list = []

        def sync_one(stripe: int) -> None:
            try:
                self._handles[stripe].fsync()
            except DisconnectedError as exc:
                failures.append(
                    (stripe, self._stripe_label(stripe), str(exc) or "disconnected")
                )

        self.fanout.run([
            (lambda s=stripe: sync_one(s)) for stripe in range(self.width)
        ])
        self._raise_partial(failures)

    def fstat(self) -> ChirpStat:
        stats = [h.fstat() for h in self._handles]
        logical_size = sum(st.size for st in stats)
        first = stats[0]
        return ChirpStat(
            device=first.device,
            inode=first.inode,
            mode=first.mode,
            nlink=first.nlink,
            uid=first.uid,
            gid=first.gid,
            size=logical_size,
            atime=max(st.atime for st in stats),
            mtime=max(st.mtime for st in stats),
            ctime=max(st.ctime for st in stats),
        )

    def ftruncate(self, size: int) -> None:
        for i, target in enumerate(
            stripe_sizes_for_length(size, self.width, self.stripe_size)
        ):
            self._handles[i].ftruncate(target)

    def close(self) -> None:
        for handle in self._handles:
            try:
                handle.close()
            except ChirpError:
                pass


# ---------------------------------------------------------------------------
# the filesystem
# ---------------------------------------------------------------------------


class StripedFS(Filesystem):
    """A DSFS-shaped filesystem whose files are striped across servers."""

    def __init__(
        self,
        meta: MetadataStore,
        pool: ClientPool,
        servers: Sequence[tuple[str, int]],
        data_dir: str,
        stripe_size: int = DEFAULT_STRIPE_SIZE,
        stripes: Optional[int] = None,
        policy: Optional[RetryPolicy] = None,
        fanout_workers: Optional[int] = None,
    ):
        if stripe_size < 1:
            raise ValueError("stripe_size must be positive")
        self.meta = meta
        self.pool = pool
        self.servers = [(h, int(p)) for h, p in servers]
        self.stripes = stripes if stripes is not None else len(self.servers)
        if not 1 <= self.stripes <= len(self.servers):
            raise ValueError("stripes must be between 1 and the server count")
        self.data_dir = normalize_virtual(data_dir)
        self.stripe_size = stripe_size
        self.policy = policy or RetryPolicy()
        # Shared by every handle; 1 forces serial stripe I/O (the
        # ablation baseline).
        self.fanout = FanoutPool(
            fanout_workers
            if fanout_workers is not None
            else min(self.stripes, DEFAULT_FANOUT)
        )
        self._rotation = 0

    @staticmethod
    def _guard_name(path: str) -> str:
        norm = normalize_virtual(path)
        if posixpath.basename(norm) == VOLUME_FILE:
            raise NotAuthorizedError("the volume file is managed by the filesystem")
        return norm

    def _read_stub(self, path: str) -> StripeStub:
        raw = self.meta.read(path)
        if not raw:
            raise DoesNotExistError(f"{path}: stub mid-creation")
        return StripeStub.decode(raw)

    def _open_handles(
        self, stub: StripeStub, flags: OpenFlags, mode: int
    ) -> StripedHandle:
        handles = []
        failures: list = []
        try:
            for index, (host, port, data_path) in enumerate(stub.locations):
                try:
                    client = self.pool.get(host, port)
                    handles.append(
                        ChirpFileHandle(client, data_path, flags, mode, self.policy)
                    )
                except DisconnectedError as exc:
                    # Keep probing: the error should name *every* dead
                    # stripe server, not only the first one hit.
                    failures.append(
                        (index, f"{host}:{port}", str(exc) or "disconnected")
                    )
        except ChirpError:
            for h in handles:
                try:
                    h.close()
                except ChirpError:
                    pass
            raise
        if failures:
            for h in handles:
                try:
                    h.close()
                except ChirpError:
                    pass
            raise PartialFailureError(
                f"{len(failures)} of {len(stub.locations)} stripes unreachable",
                failures=failures,
            )
        return StripedHandle(handles, stub.stripe_size, fanout=self.fanout)

    def _is_dir(self, path: str) -> bool:
        try:
            return self.meta.stat(path).is_dir
        except ChirpError:
            return False

    # -- open / create ------------------------------------------------------

    def open(self, path: str, flags: OpenFlags, mode: int = 0o644) -> FileHandle:
        path = self._guard_name(path)
        if flags.create:
            return self._create_or_open(path, flags, mode)
        return self._open_existing(path, flags, mode)

    def _open_existing(self, path: str, flags: OpenFlags, mode: int) -> StripedHandle:
        if self._is_dir(path):
            raise IsADirectoryError_(path)
        stub = self._read_stub(path)
        dflags = replace(flags, create=False, exclusive=False)
        try:
            return self._open_handles(stub, dflags, mode)
        except DoesNotExistError:
            raise DoesNotExistError(f"{path}: dangling stripe stub") from None

    def _create_or_open(self, path: str, flags: OpenFlags, mode: int) -> FileHandle:
        # rotate the starting server so small files spread load too
        start = self._rotation
        self._rotation = (self._rotation + 1) % len(self.servers)
        chosen = [
            self.servers[(start + i) % len(self.servers)] for i in range(self.stripes)
        ]
        locations = tuple(
            (h, p, self.data_dir + "/" + unique_data_name()) for h, p in chosen
        )
        stub = StripeStub(self.stripe_size, locations)
        if not self.meta.create_exclusive(path, stub.encode()):
            if flags.exclusive:
                raise AlreadyExistsError(path)
            return self._open_existing(path, flags, mode)
        dflags = replace(flags, create=True, exclusive=True, write=True)
        try:
            return self._open_handles(stub, dflags, mode)
        except Exception:
            self.meta.unlink(path)
            raise

    # -- namespace ------------------------------------------------------

    def stat(self, path: str) -> ChirpStat:
        path = self._guard_name(path)
        mst = self.meta.stat(path)
        if mst.is_dir:
            return mst
        stub = self._read_stub(path)

        def stat_stripe(host: str, port: int, data_path: str) -> ChirpStat:
            client = self.pool.get(host, port)
            return self.policy.run(
                lambda: client.stat(data_path), client.ensure_connected
            )

        try:
            stats = self.fanout.run([
                (lambda loc=loc: stat_stripe(*loc)) for loc in stub.locations
            ])
        except DoesNotExistError:
            raise DoesNotExistError(f"{path}: dangling stripe stub") from None
        logical_size = sum(dst.size for dst in stats)
        newest = max(dst.mtime for dst in stats)
        return ChirpStat(
            device=mst.device,
            inode=mst.inode,
            mode=mst.mode & ~0o170000 | 0o100000,  # present as a regular file
            nlink=mst.nlink,
            uid=mst.uid,
            gid=mst.gid,
            size=logical_size,
            atime=newest,
            mtime=newest,
            ctime=mst.ctime,
        )

    def lstat(self, path: str) -> ChirpStat:
        return self.meta.stat(self._guard_name(path))

    def listdir(self, path: str) -> list[str]:
        names = self.meta.listdir(path)
        if normalize_virtual(path) == "/":
            names = [n for n in names if n != VOLUME_FILE]
        return names

    def unlink(self, path: str, force: bool = False) -> None:
        path = self._guard_name(path)
        if self._is_dir(path):
            raise IsADirectoryError_(path)
        stub = self._read_stub(path)
        for host, port, data_path in stub.locations:
            try:
                self.pool.get(host, port).unlink(data_path)
            except DoesNotExistError:
                continue
            except ChirpError:
                if not force:
                    raise
        self.meta.unlink(path)

    def rename(self, old: str, new: str) -> None:
        self.meta.rename(self._guard_name(old), self._guard_name(new))

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self.meta.mkdir(self._guard_name(path), mode)

    def rmdir(self, path: str) -> None:
        self.meta.rmdir(self._guard_name(path))

    def truncate(self, path: str, size: int) -> None:
        path = self._guard_name(path)
        stub = self._read_stub(path)
        targets = stripe_sizes_for_length(size, len(stub.locations), stub.stripe_size)
        for (host, port, data_path), target in zip(stub.locations, targets):
            self.pool.get(host, port).truncate(data_path, target)

    def statfs(self) -> StatFs:
        def probe(host: str, port: int) -> Optional[StatFs]:
            client = self.pool.try_get(host, port)
            if client is None:
                return None
            try:
                return client.statfs()
            except ChirpError:
                return None

        reports = [
            fs
            for fs in self.fanout.run(
                [(lambda ep=ep: probe(*ep)) for ep in self.servers]
            )
            if fs is not None
        ]
        if not reports:
            raise DisconnectedError("no data server reachable for statfs")
        return StatFs(
            sum(fs.total_bytes for fs in reports),
            sum(fs.free_bytes for fs in reports),
        )
