"""A local directory exposed through the abstraction interface.

This is the degenerate abstraction: no network at all.  It exists so the
adapter can mount local trees uniformly (the ``Unix`` baseline in the
paper's tables), and so the DPFS can treat its private metadata directory
exactly like any other filesystem -- recursion all the way down.
"""

from __future__ import annotations

import os

from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.core.interface import FileHandle, Filesystem
from repro.util.errors import (
    InvalidRequestError,
    error_from_status,
    status_from_exception,
)
from repro.util.paths import PathEscapeError, confine

__all__ = ["LocalFilesystem", "LocalHandle"]


def _wrap(exc: OSError, path: str = ""):
    return error_from_status(status_from_exception(exc), f"{path}: {exc}")


class LocalHandle(FileHandle):
    """An open local file, position-less like every TSS handle."""

    def __init__(self, fd: int):
        self._fd = fd
        self._closed = False

    def pread(self, length: int, offset: int) -> bytes:
        try:
            return os.pread(self._fd, length, offset)
        except OSError as exc:
            raise _wrap(exc) from exc

    def pwrite(self, data: bytes, offset: int) -> int:
        try:
            return os.pwrite(self._fd, data, offset)
        except OSError as exc:
            raise _wrap(exc) from exc

    def fsync(self) -> None:
        try:
            os.fsync(self._fd)
        except OSError as exc:
            raise _wrap(exc) from exc

    def fstat(self) -> ChirpStat:
        try:
            return ChirpStat.from_os(os.fstat(self._fd))
        except OSError as exc:
            raise _wrap(exc) from exc

    def ftruncate(self, size: int) -> None:
        try:
            os.ftruncate(self._fd, size)
        except OSError as exc:
            raise _wrap(exc) from exc

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                os.close(self._fd)
            except OSError:
                pass


class LocalFilesystem(Filesystem):
    """The abstraction interface over a confined local directory."""

    def __init__(self, root: str):
        self.root = os.path.realpath(root)
        if not os.path.isdir(self.root):
            raise NotADirectoryError(f"{root!r} is not a directory")

    def _real(self, path: str) -> str:
        try:
            return confine(self.root, path)
        except PathEscapeError as exc:
            raise InvalidRequestError(str(exc)) from exc

    def open(self, path: str, flags: OpenFlags, mode: int = 0o644) -> LocalHandle:
        real = self._real(path)
        if os.path.isdir(real):
            # os.open(dir, O_RDONLY) would succeed on Linux; the TSS
            # interface only opens files (matching the Chirp backend).
            from repro.util.errors import IsADirectoryError_

            raise IsADirectoryError_(path)
        try:
            fd = os.open(real, flags.to_os_flags(), mode & 0o777)
        except OSError as exc:
            raise _wrap(exc, path) from exc
        return LocalHandle(fd)

    def stat(self, path: str) -> ChirpStat:
        try:
            return ChirpStat.from_os(os.stat(self._real(path)))
        except OSError as exc:
            raise _wrap(exc, path) from exc

    def lstat(self, path: str) -> ChirpStat:
        try:
            return ChirpStat.from_os(os.lstat(self._real(path)))
        except OSError as exc:
            raise _wrap(exc, path) from exc

    def listdir(self, path: str) -> list[str]:
        try:
            return sorted(os.listdir(self._real(path)))
        except OSError as exc:
            raise _wrap(exc, path) from exc

    def unlink(self, path: str) -> None:
        try:
            os.unlink(self._real(path))
        except OSError as exc:
            raise _wrap(exc, path) from exc

    def rename(self, old: str, new: str) -> None:
        try:
            os.rename(self._real(old), self._real(new))
        except OSError as exc:
            raise _wrap(exc, old) from exc

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        try:
            os.mkdir(self._real(path), mode & 0o777)
        except OSError as exc:
            raise _wrap(exc, path) from exc

    def rmdir(self, path: str) -> None:
        try:
            os.rmdir(self._real(path))
        except OSError as exc:
            raise _wrap(exc, path) from exc

    def truncate(self, path: str, size: int) -> None:
        try:
            os.truncate(self._real(path), size)
        except OSError as exc:
            raise _wrap(exc, path) from exc

    def utime(self, path: str, atime: int, mtime: int) -> None:
        try:
            os.utime(self._real(path), (atime, mtime))
        except OSError as exc:
            raise _wrap(exc, path) from exc

    def statfs(self) -> StatFs:
        vfs = os.statvfs(self.root)
        return StatFs(vfs.f_blocks * vfs.f_frsize, vfs.f_bavail * vfs.f_frsize)
