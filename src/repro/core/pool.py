"""Shared Chirp sessions for multi-server abstractions.

A DPFS/DSFS/DSDB touches many file servers; keeping one *session* per
server and sharing it across all handles keeps the congestion windows
warm (the single-connection design the paper contrasts with FTP) and
bounds socket usage.  The pool also carries the user's credentials so an
abstraction can be built from a list of ``(host, port)`` pairs alone --
e.g. straight out of a catalog query.

Since the transport refactor this is a thin facade: connection
lifecycle, caps and metrics live in
:class:`~repro.transport.endpoint.EndpointManager`; this module maps
each endpoint to the one :class:`~repro.chirp.client.ChirpClient`
session riding on it.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.auth.methods import ClientCredentials
from repro.cache.manager import CacheManager
from repro.chirp.client import ChirpClient
from repro.transport.endpoint import DEFAULT_MAX_CONNS, EndpointManager
from repro.transport.health import HealthRegistry
from repro.transport.metrics import MetricsRegistry
from repro.transport.recovery import RetryPolicy

__all__ = ["ClientPool"]


class ClientPool:
    """A thread-safe cache of :class:`ChirpClient` keyed by endpoint.

    :param max_conns_per_endpoint: connection cap handed to every
        endpoint; >1 lets fan-out abstractions overlap RPCs to the same
        server.
    :param cache: optional :class:`CacheManager` handed to every session,
        so metadata caching (and its invalidation) is shared across all
        servers the pool reaches.
    """

    def __init__(
        self,
        credentials: Optional[ClientCredentials] = None,
        timeout: float = 30.0,
        max_conns_per_endpoint: int = DEFAULT_MAX_CONNS,
        policy: Optional[RetryPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        health: Optional[HealthRegistry] = None,
        cache: Optional[CacheManager] = None,
    ):
        self.endpoints = EndpointManager(
            credentials=credentials,
            timeout=timeout,
            max_conns_per_endpoint=max_conns_per_endpoint,
            policy=policy,
            metrics=metrics,
            health=health,
        )
        self.credentials = self.endpoints.credentials
        self.timeout = timeout
        self.cache = cache
        self._clients: dict[tuple[str, int], ChirpClient] = {}
        self._lock = threading.Lock()

    @property
    def metrics(self) -> MetricsRegistry:
        return self.endpoints.metrics

    @property
    def health(self) -> HealthRegistry:
        """Per-endpoint circuit breakers shared by every session."""
        return self.endpoints.health

    def get(self, host: str, port: int) -> ChirpClient:
        """Connect (or reuse the cached session) to a server.

        A cached-but-dead client is returned as-is -- *deliberately*:
        handle-level recovery owns reconnection so that generation
        numbers advance exactly once per reconnect, no matter how many
        handles notice the failure.  Callers that want a pool with no
        dead sessions (e.g. before a placement decision) call
        :meth:`evict_dead` explicitly.
        """
        key = (host, int(port))
        with self._lock:
            client = self._clients.get(key)
            if client is None:
                client = ChirpClient(
                    host,
                    int(port),
                    endpoint=self.endpoints.endpoint(host, int(port)),
                    cache=self.cache,
                )
                self._clients[key] = client
            return client

    def try_get(self, host: str, port: int) -> Optional[ChirpClient]:
        """Like :meth:`get` but returns None when the server is down."""
        from repro.util.errors import ChirpError

        try:
            return self.get(host, port)
        except ChirpError:
            return None

    def evict(self, host: str, port: int) -> None:
        """Forget a server entirely: close and drop its session *and* its
        endpoint (e.g. after a permanent failure), so the next
        :meth:`get` starts from scratch."""
        with self._lock:
            client = self._clients.pop((host, int(port)), None)
        if client is not None:
            client.close()
        self.endpoints.evict(host, int(port))

    def invalidate(self, host: str, port: int) -> None:
        """Historical name for :meth:`evict`."""
        self.evict(host, port)

    def evict_dead(self) -> list[tuple[str, int]]:
        """Drop every cached session whose endpoint holds no live
        connection; returns the endpoints evicted.

        The cheap liveness check (no RPC, just socket state) for callers
        that must not be handed a dead session silently -- the complement
        of :meth:`get`'s hands-off contract.  Sessions with handles in
        active recovery are *not* special-cased: eviction closes the old
        endpoint, and recovering handles dial a fresh one on next use.
        """
        with self._lock:
            dead = [
                key
                for key, client in self._clients.items()
                if not client.endpoint.is_connected
            ]
        for host, port in dead:
            self.evict(host, port)
        return dead

    def close_all(self) -> None:
        """Close every session and every endpoint."""
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            client.close()
        self.endpoints.close_all()

    def close(self) -> None:
        self.close_all()

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._clients)
