"""Shared Chirp connections for multi-server abstractions.

A DPFS/DSFS/DSDB touches many file servers; opening one TCP connection
per server and sharing it across all handles keeps the congestion window
warm (the single-connection design the paper contrasts with FTP) and
bounds socket usage.  The pool also carries the user's credentials so an
abstraction can be built from a list of ``(host, port)`` pairs alone --
e.g. straight out of a catalog query.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.auth.methods import ClientCredentials
from repro.chirp.client import ChirpClient

__all__ = ["ClientPool"]


class ClientPool:
    """A thread-safe cache of :class:`ChirpClient` keyed by endpoint."""

    def __init__(
        self,
        credentials: Optional[ClientCredentials] = None,
        timeout: float = 30.0,
    ):
        self.credentials = credentials or ClientCredentials()
        self.timeout = timeout
        self._clients: dict[tuple[str, int], ChirpClient] = {}
        self._lock = threading.Lock()

    def get(self, host: str, port: int) -> ChirpClient:
        """Connect (or reuse the cached connection) to a server.

        A cached-but-dead client is returned as-is: handle-level recovery
        owns reconnection so that generation numbers advance exactly once
        per reconnect, no matter how many handles notice the failure.
        """
        key = (host, int(port))
        with self._lock:
            client = self._clients.get(key)
            if client is None:
                client = ChirpClient(
                    host, int(port), credentials=self.credentials, timeout=self.timeout
                )
                self._clients[key] = client
            return client

    def try_get(self, host: str, port: int) -> Optional[ChirpClient]:
        """Like :meth:`get` but returns None when the server is down."""
        from repro.util.errors import ChirpError

        try:
            return self.get(host, port)
        except ChirpError:
            return None

    def invalidate(self, host: str, port: int) -> None:
        """Forget a cached connection (e.g. after a permanent failure)."""
        with self._lock:
            client = self._clients.pop((host, int(port)), None)
        if client is not None:
            client.close()

    def close(self) -> None:
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            client.close()

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._clients)
