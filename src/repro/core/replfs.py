"""ReplicatedFS: a transparently replicating filesystem.

The paper's conclusion leaves this open: "One may imagine filesystems
that transparently stripe, replicate, and version data."  This module is
that extension for replication, built with exactly the pieces the TSS
already provides -- a metadata store, exclusive create, and file servers
-- demonstrating the architecture's claim that new abstractions need no
new server machinery.

Semantics:

- every file's stub lists ``copies`` locations on distinct servers;
- writes go to **all** live replicas (no write-behind -- direct access);
- reads are served by the first reachable replica, failing over in order;
- a replica whose server dies mid-handle is dropped from the handle (the
  file degrades but stays available as long as one replica lives);
  ``degraded`` on the handle reports this so callers can re-replicate;
- ``heal`` re-copies a file back up to its target replica count.

Divergence (a write that succeeded on some replicas when the client
crashed) is detected by ``verify``, which compares replica checksums;
policy-driven repair belongs to a GEMS-style auditor, not the filesystem.
"""

from __future__ import annotations

import json
import posixpath
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.core.cfs import ChirpFileHandle
from repro.core.interface import FileHandle, Filesystem
from repro.core.metastore import MetadataStore, VOLUME_FILE
from repro.core.placement import PlacementPolicy, RoundRobinPlacement
from repro.core.pool import ClientPool
from repro.core.stubs import unique_data_name
from repro.transport.fanout import DEFAULT_FANOUT, FanoutPool
from repro.transport.health import STATE_OPEN
from repro.transport.recovery import RetryPolicy
from repro.util.errors import (
    AlreadyExistsError,
    ChirpError,
    DisconnectedError,
    DoesNotExistError,
    IntegrityError,
    InvalidRequestError,
    IsADirectoryError_,
    NotAuthorizedError,
)
from repro.util.paths import normalize_virtual

__all__ = ["ReplicatedFS", "MultiStub", "ReplicatedHandle"]

_CREATE_ATTEMPTS = 4


@dataclass(frozen=True)
class MultiStub:
    """A pointer to N replicas of one file's data."""

    locations: tuple[tuple[str, int, str], ...]  # (host, port, data path)

    def encode(self) -> bytes:
        doc = {
            "tss": "rstub",
            "v": 1,
            "locations": [[h, p, path] for h, p, path in self.locations],
        }
        return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")

    @classmethod
    def decode(cls, raw: bytes) -> "MultiStub":
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise InvalidRequestError(f"not a replicated stub: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("tss") != "rstub":
            raise InvalidRequestError("not a replicated stub")
        try:
            locations = tuple(
                (str(h), int(p), str(path)) for h, p, path in doc["locations"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidRequestError(f"malformed replicated stub: {exc}") from exc
        if not locations:
            raise InvalidRequestError("replicated stub lists no locations")
        return cls(locations)


class ReplicatedHandle(FileHandle):
    """An open replicated file: reads fail over, writes fan out.

    Write-path fan-out (pwrite/fsync/ftruncate) pushes to every replica
    **concurrently** through a :class:`FanoutPool`; each replica server
    has its own connections at the transport layer, so write latency is
    the slowest replica, not the sum.  Survivor bookkeeping (dropping
    dead replicas, declaring the file unreachable) happens sequentially
    after the parallel round, so the handle's replica list never mutates
    under a worker.

    Degraded-mode reads: the read path consults each replica's circuit
    breaker and skips endpoints currently quarantined, so a read after a
    server death pays one failover instead of a full backoff schedule
    per operation.  Every replica dropped mid-handle is recorded in
    ``suspects`` (``host:port`` labels) so callers -- and a GEMS-style
    auditor -- know exactly which servers to re-replicate around.
    """

    def __init__(
        self,
        handles: list[ChirpFileHandle],
        fanout: Optional[FanoutPool] = None,
    ):
        if not handles:
            raise DoesNotExistError("no replica could be opened")
        self._handles = handles
        self.dropped = 0
        #: ``host:port`` of every replica dropped from this handle.
        self.suspects: list[str] = []
        self.fanout = fanout or FanoutPool(min(len(handles), DEFAULT_FANOUT))

    @property
    def degraded(self) -> bool:
        return self.dropped > 0

    @property
    def width(self) -> int:
        return len(self._handles)

    @staticmethod
    def _quarantined(handle: ChirpFileHandle) -> bool:
        health = getattr(handle.client.endpoint, "health", None)
        return health is not None and health.is_open

    def _pick_reader(self) -> ChirpFileHandle:
        """The first replica whose breaker is not open.

        When every surviving replica is quarantined, the first is used
        anyway: a read against a suspect server beats refusing outright,
        and its failure feeds the breaker it would have consulted.
        """
        for handle in self._handles:
            if not self._quarantined(handle):
                return handle
        return self._handles[0]

    def _survivors_after(self, dead: ChirpFileHandle) -> None:
        self._handles.remove(dead)
        self.dropped += 1
        label = f"{dead.client.host}:{dead.client.port}"
        if label not in self.suspects:
            self.suspects.append(label)
        try:
            dead.close()
        except ChirpError:
            pass
        if not self._handles:
            raise DisconnectedError("every replica of this file is unreachable")

    def _fanout_all(self, op) -> list:
        """Run ``op(handle)`` on every replica concurrently.

        Returns the successful results; replicas that raised
        DisconnectedError are dropped afterwards (raising only when none
        survive).  Other errors propagate.
        """
        snapshot = list(self._handles)

        def attempt(handle: ChirpFileHandle):
            try:
                return (handle, op(handle), None)
            except DisconnectedError as exc:
                return (handle, None, exc)

        outcomes = self.fanout.run([
            (lambda h=h: attempt(h)) for h in snapshot
        ])
        results = []
        for handle, result, exc in outcomes:
            if exc is None:
                results.append(result)
            else:
                self._survivors_after(handle)
        return results

    def pread(self, length: int, offset: int, deadline=None) -> bytes:
        """Read from the first healthy replica, failing over in order.

        ``deadline`` bounds the *total* time across every replica tried:
        it clamps each replica's retry backoff and socket waits, so a
        read against a sick file set returns data or
        :class:`~repro.util.errors.TimedOutError` within the budget.
        """
        while True:
            handle = self._pick_reader()
            try:
                return handle.pread(length, offset, deadline=deadline)
            except DisconnectedError:
                self._survivors_after(handle)

    def pwrite(self, data: bytes, offset: int) -> int:
        # Fan out; drop replicas that died, succeed if at least one took it.
        written = self._fanout_all(lambda h: h.pwrite(data, offset))
        if not written:  # pragma: no cover - _survivors_after raises first
            raise DisconnectedError("write reached no replica")
        return written[0]

    def fsync(self) -> None:
        self._fanout_all(lambda h: h.fsync())

    def ftruncate(self, size: int) -> None:
        self._fanout_all(lambda h: h.ftruncate(size))

    def fstat(self) -> ChirpStat:
        while True:
            handle = self._pick_reader()
            try:
                return handle.fstat()
            except DisconnectedError:
                self._survivors_after(handle)

    def close(self) -> None:
        for handle in self._handles:
            try:
                handle.close()
            except ChirpError:
                pass


class ReplicatedFS(Filesystem):
    """A DSFS-shaped filesystem that keeps N copies of every file."""

    def __init__(
        self,
        meta: MetadataStore,
        pool: ClientPool,
        servers: Sequence[tuple[str, int]],
        data_dir: str,
        copies: int = 2,
        placement: Optional[PlacementPolicy] = None,
        policy: Optional[RetryPolicy] = None,
        fanout_workers: Optional[int] = None,
    ):
        if copies < 1:
            raise ValueError("copies must be >= 1")
        if len(servers) < copies:
            raise ValueError("need at least as many servers as copies")
        self.meta = meta
        self.pool = pool
        self.servers = [(h, int(p)) for h, p in servers]
        self.data_dir = normalize_virtual(data_dir)
        self.copies = copies
        self.placement = placement or RoundRobinPlacement()
        self.policy = policy or RetryPolicy()
        # Shared by every handle's replica fan-out; 1 forces serial pushes.
        self.fanout = FanoutPool(
            fanout_workers
            if fanout_workers is not None
            else min(self.copies, DEFAULT_FANOUT)
        )
        #: ``host:port`` of every server that served bytes failing digest
        #: verification (see :meth:`read_verified`).  Mirrors
        #: :attr:`ReplicatedHandle.suspects`: corruption is the server
        #: *answering wrong*, not the transport failing, so it must not
        #: trip the circuit breaker -- this list is the parallel channel
        #: an auditor drains to know which servers to re-replicate around.
        self.suspects: list[str] = []

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _guard_name(path: str) -> str:
        norm = normalize_virtual(path)
        if posixpath.basename(norm) == VOLUME_FILE:
            raise NotAuthorizedError("the volume file is managed by the filesystem")
        return norm

    def _read_stub(self, path: str) -> MultiStub:
        raw = self.meta.read(path)
        if not raw:
            raise DoesNotExistError(f"{path}: stub mid-creation")
        return MultiStub.decode(raw)

    def _open_location(
        self, location: tuple[str, int, str], flags: OpenFlags, mode: int
    ) -> ChirpFileHandle:
        host, port, data_path = location
        client = self.pool.get(host, port)
        return ChirpFileHandle(client, data_path, flags, mode, self.policy)

    def _is_dir(self, path: str) -> bool:
        try:
            return self.meta.stat(path).is_dir
        except ChirpError:
            return False

    # ------------------------------------------------------------------
    # open / create
    # ------------------------------------------------------------------

    def open(self, path: str, flags: OpenFlags, mode: int = 0o644) -> FileHandle:
        path = self._guard_name(path)
        if flags.create:
            return self._create_or_open(path, flags, mode)
        return self._open_existing(path, flags, mode)

    def _open_existing(self, path: str, flags: OpenFlags, mode: int) -> ReplicatedHandle:
        if self._is_dir(path):
            raise IsADirectoryError_(path)
        stub = self._read_stub(path)
        dflags = replace(flags, create=False, exclusive=False)
        # Stable sort, quarantined servers last: the handle's read path
        # prefers earlier replicas, so a server with an open breaker only
        # gets traffic when every healthy one is gone.
        locations = sorted(
            stub.locations,
            key=lambda loc: self.pool.health.state_of(loc[0], loc[1]) == STATE_OPEN,
        )
        handles = []
        missing = 0
        for location in locations:
            try:
                handles.append(self._open_location(location, dflags, mode))
            except DoesNotExistError:
                missing += 1
            except DisconnectedError:
                continue
        if not handles:
            if missing == len(stub.locations):
                raise DoesNotExistError(f"{path}: dangling stub (no data anywhere)")
            raise DisconnectedError(f"{path}: no replica reachable")
        handle = ReplicatedHandle(handles, fanout=self.fanout)
        handle.dropped = len(stub.locations) - len(handles)
        return handle

    def _create_or_open(self, path: str, flags: OpenFlags, mode: int) -> FileHandle:
        for _ in range(_CREATE_ATTEMPTS):
            # choose `copies` distinct servers
            chosen: list[tuple[str, int]] = []
            exclude: set[tuple[str, int]] = set()
            try:
                while len(chosen) < self.copies:
                    endpoint = tuple(self.placement.choose(self.servers, frozenset(exclude)))
                    chosen.append(endpoint)
                    exclude.add(endpoint)
            except LookupError:
                if not chosen:
                    raise DisconnectedError(f"{path}: no server for placement") from None
            locations = tuple(
                (h, p, self.data_dir + "/" + unique_data_name()) for h, p in chosen
            )
            stub = MultiStub(locations)
            if not self.meta.create_exclusive(path, stub.encode()):
                if flags.exclusive:
                    raise AlreadyExistsError(path)
                return self._open_existing(path, flags, mode)
            dflags = replace(flags, create=True, exclusive=True, write=True)
            handles = []
            try:
                for location in locations:
                    handles.append(self._open_location(location, dflags, mode))
            except (AlreadyExistsError, DisconnectedError):
                for h in handles:
                    try:
                        h.close()
                    except ChirpError:
                        pass
                self.meta.unlink(path)
                continue
            except Exception:
                for h in handles:
                    try:
                        h.close()
                    except ChirpError:
                        pass
                self.meta.unlink(path)
                raise
            return ReplicatedHandle(handles, fanout=self.fanout)
        raise DisconnectedError(f"{path}: could not create replicated file")

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------

    def stat(self, path: str) -> ChirpStat:
        path = self._guard_name(path)
        mst = self.meta.stat(path)
        if mst.is_dir:
            return mst
        stub = self._read_stub(path)
        last: Exception | None = None
        for host, port, data_path in stub.locations:
            client = self.pool.try_get(host, port)
            if client is None:
                last = DisconnectedError(f"{host}:{port} down")
                continue
            try:
                dst = client.stat(data_path)
            except ChirpError as exc:
                last = exc
                continue
            return ChirpStat(
                device=mst.device,
                inode=mst.inode,
                mode=dst.mode,
                nlink=mst.nlink,
                uid=dst.uid,
                gid=dst.gid,
                size=dst.size,
                atime=dst.atime,
                mtime=dst.mtime,
                ctime=dst.ctime,
            )
        raise DoesNotExistError(f"{path}: no replica reachable") from last

    def lstat(self, path: str) -> ChirpStat:
        return self.meta.stat(self._guard_name(path))

    def listdir(self, path: str) -> list[str]:
        names = self.meta.listdir(path)
        if normalize_virtual(path) == "/":
            names = [n for n in names if n != VOLUME_FILE]
        return names

    def unlink(self, path: str, force: bool = False) -> None:
        path = self._guard_name(path)
        if self._is_dir(path):
            raise IsADirectoryError_(path)
        stub = self._read_stub(path)
        for host, port, data_path in stub.locations:
            try:
                client = self.pool.get(host, port)
                client.unlink(data_path)
            except DoesNotExistError:
                continue
            except ChirpError:
                if not force:
                    raise
        self.meta.unlink(path)

    def rename(self, old: str, new: str) -> None:
        self.meta.rename(self._guard_name(old), self._guard_name(new))

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self.meta.mkdir(self._guard_name(path), mode)

    def rmdir(self, path: str) -> None:
        self.meta.rmdir(self._guard_name(path))

    def truncate(self, path: str, size: int) -> None:
        path = self._guard_name(path)
        for host, port, data_path in self._read_stub(path).locations:
            client = self.pool.try_get(host, port)
            if client is None:
                continue
            try:
                client.truncate(data_path, size)
            except ChirpError:
                continue

    def statfs(self) -> StatFs:
        def probe(host: str, port: int) -> Optional[StatFs]:
            client = self.pool.try_get(host, port)
            if client is None:
                return None
            try:
                return client.statfs()
            except ChirpError:
                return None

        reports = [
            fs
            for fs in self.fanout.run(
                [(lambda ep=ep: probe(*ep)) for ep in self.servers]
            )
            if fs is not None
        ]
        if not reports:
            raise DisconnectedError("no data server reachable for statfs")
        total = sum(fs.total_bytes for fs in reports)
        free = sum(fs.free_bytes for fs in reports)
        # Usable capacity is divided by the replication factor.
        return StatFs(total // self.copies, free // self.copies)

    # ------------------------------------------------------------------
    # replication maintenance
    # ------------------------------------------------------------------

    def verify(self, path: str) -> dict[tuple[str, int, str], str]:
        """Checksum every replica; returns location -> ok/missing/diverged.

        "ok" means *agrees with the majority checksum*.  With only two
        live replicas a divergence is a tie, and no filesystem-level
        information says which copy is the truth; the tie is broken
        deterministically in favor of the replica listed first in the
        stub (creation order).  Deployments that need real corruption
        arbitration should run ``copies >= 3`` so a majority exists.
        """
        path = self._guard_name(path)
        stub = self._read_stub(path)
        digests = self._replica_digests(stub)
        majority = self._majority_digest(stub, digests)
        out = {}
        for location, digest in digests.items():
            if digest is None:
                out[location] = "missing"
            elif digest == majority:
                out[location] = "ok"
            else:
                out[location] = "diverged"
        return out

    def _replica_digests(
        self, stub: MultiStub
    ) -> dict[tuple[str, int, str], Optional[str]]:
        """Advertised checksum of every replica (None when unreachable)."""
        digests: dict[tuple[str, int, str], Optional[str]] = {}
        for location in stub.locations:
            host, port, data_path = location
            client = self.pool.try_get(host, port)
            if client is None:
                digests[location] = None
                continue
            try:
                digests[location] = client.checksum(data_path)
            except ChirpError:
                digests[location] = None
        return digests

    @staticmethod
    def _majority_digest(
        stub: MultiStub, digests: dict[tuple[str, int, str], Optional[str]]
    ) -> Optional[str]:
        """Majority by count; ties go to the earliest location's digest."""
        seen = [d for d in digests.values() if d is not None]
        if not seen:
            return None
        best_count = max(seen.count(d) for d in seen)
        for location in stub.locations:
            digest = digests.get(location)
            if digest is not None and seen.count(digest) == best_count:
                return digest
        return None

    def read_verified(self, path: str) -> bytes:
        """Read a file's full contents, verified byte-for-byte.

        The expected digest is the majority of the replicas' *advertised*
        checksums (as in :meth:`verify`); the bytes actually fetched are
        then hashed against it before being returned.  The second hash is
        not redundant: on a content-addressed server the ``checksum`` RPC
        is an O(1) pointer read, blind to bitrot in the object at rest,
        so a replica can advertise the majority digest and still serve
        corrupt bytes.  Such a replica is treated as failed -- recorded
        in :attr:`suspects` and skipped -- and the read fails over to the
        next majority replica.  Corrupt bytes are never returned.
        """
        path = self._guard_name(path)
        if self._is_dir(path):
            raise IsADirectoryError_(path)
        stub = self._read_stub(path)
        digests = self._replica_digests(stub)
        expected = self._majority_digest(stub, digests)
        if expected is None:
            raise DoesNotExistError(f"{path}: no replica reachable")
        last: Exception | None = None
        for location in stub.locations:
            if digests.get(location) != expected:
                continue  # missing or already known to diverge
            host, port, data_path = location
            client = self.pool.try_get(host, port)
            if client is None:
                continue
            try:
                return client.getfile_verified(data_path, expected)
            except IntegrityError as exc:
                label = f"{host}:{port}"
                if label not in self.suspects:
                    self.suspects.append(label)
                last = exc
            except ChirpError as exc:
                last = exc
        raise DoesNotExistError(
            f"{path}: no replica serves bytes matching digest {expected}"
        ) from last

    def heal(self, path: str) -> int:
        """Restore a file to its target replica count; returns copies added.

        Missing/diverged replicas are replaced by copies of a majority-
        checksum replica, landing on servers not already holding one.
        """
        path = self._guard_name(path)
        stub = self._read_stub(path)
        health = self.verify(path)
        good = [loc for loc in stub.locations if health[loc] == "ok"]
        if not good:
            raise DoesNotExistError(f"{path}: no intact replica to heal from")
        if len(good) >= self.copies:
            return 0
        source_host, source_port, source_path = good[0]
        source = self.pool.get(source_host, source_port)
        # Copy-by-reference setup: learn the source's content key once.
        # Targets that already hold the blob (CAS servers) then heal via
        # a metadata link; bytes are fetched lazily, only when a target
        # actually needs them.
        try:
            source_key = source.keyof(source_path)
        except ChirpError:
            source_key = None
        data = None
        occupied = {(h, p) for h, p, _ in good}
        new_locations = list(good)
        added = 0
        while len(new_locations) < self.copies:
            try:
                endpoint = tuple(
                    self.placement.choose(self.servers, frozenset(occupied))
                )
            except LookupError:
                break
            occupied.add(endpoint)
            data_path = self.data_dir + "/" + unique_data_name()
            try:
                client = self.pool.get(*endpoint)
                linked = False
                if source_key is not None:
                    try:
                        client.putkey(data_path, source_key)
                        linked = True
                    except ChirpError:
                        linked = False
                if not linked:
                    if data is None:
                        data = source.getfile(source_path)
                    client.putfile(data_path, data)
            except ChirpError:
                continue
            new_locations.append((endpoint[0], endpoint[1], data_path))
            added += 1
        # swing the stub to the healed location set, then retire bad data
        self.meta.unlink(path)
        if not self.meta.create_exclusive(path, MultiStub(tuple(new_locations)).encode()):
            raise AlreadyExistsError(f"{path}: concurrent recreation during heal")
        for location in stub.locations:
            if location not in new_locations and health[location] == "diverged":
                host, port, data_path = location
                client = self.pool.try_get(host, port)
                if client is not None:
                    try:
                        client.unlink(data_path)
                    except ChirpError:
                        pass
        return added
