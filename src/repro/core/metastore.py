"""Metadata stores: where a distributed filesystem keeps its directory tree.

The only difference between the paper's DPFS and DSFS is *where the
directory structure lives*: "The distributed shared filesystem (DSFS) is
created by moving the directory tree onto a file server."  This module
captures that seam as a small interface with two implementations:

- :class:`LocalMetadataStore` -- a private local directory (DPFS),
- :class:`ChirpMetadataStore` -- a directory on a file server (DSFS),

so the stub-management logic in :mod:`repro.core.stubfs` is written once.
Thanks to recursive abstractions both implementations need only Unix-like
calls -- including the *exclusive open* that makes the crash-safe file
creation protocol work on either store.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from typing import Optional

from repro.chirp.client import ChirpClient
from repro.chirp.protocol import ChirpStat, OpenFlags
from repro.transport.recovery import RetryPolicy
from repro.util.errors import (
    AlreadyExistsError,
    ChirpError,
    error_from_status,
    status_from_exception,
)
from repro.util.paths import PathEscapeError, confine, normalize_virtual

__all__ = ["MetadataStore", "LocalMetadataStore", "ChirpMetadataStore", "VOLUME_FILE"]

VOLUME_FILE = ".tssvolume"


class MetadataStore(ABC):
    """Unix-like operations a stub filesystem needs from its directory tree."""

    @abstractmethod
    def stat(self, path: str) -> ChirpStat: ...

    @abstractmethod
    def listdir(self, path: str) -> list[str]: ...

    @abstractmethod
    def read(self, path: str) -> bytes:
        """Read a whole (small) metadata file, e.g. a stub."""

    @abstractmethod
    def create_exclusive(self, path: str, content: bytes) -> bool:
        """Create a metadata file with ``O_EXCL``; False if it exists.

        The exclusivity of the *create* is the atomic primitive; content
        is written immediately after, so readers must tolerate a briefly
        empty file (see ``StubFilesystem._read_stub``).
        """

    @abstractmethod
    def unlink(self, path: str) -> None: ...

    @abstractmethod
    def rename(self, old: str, new: str) -> None: ...

    @abstractmethod
    def mkdir(self, path: str, mode: int = 0o755) -> None: ...

    @abstractmethod
    def rmdir(self, path: str) -> None: ...

    # -- volume configuration -------------------------------------------

    def read_config(self) -> dict:
        raw = self.read("/" + VOLUME_FILE)
        doc = json.loads(raw.decode("utf-8"))
        if not isinstance(doc, dict) or doc.get("tss") != "volume":
            raise ValueError("not a TSS volume")
        return doc

    def write_config(self, doc: dict) -> None:
        doc = dict(doc)
        doc["tss"] = "volume"
        content = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        if not self.create_exclusive("/" + VOLUME_FILE, content):
            raise AlreadyExistsError("volume already initialized here")


class LocalMetadataStore(MetadataStore):
    """Directory tree in a private local filesystem (the DPFS case)."""

    def __init__(self, root: str, sync_meta: bool = True):
        self.root = os.path.realpath(root)
        self.sync_meta = sync_meta
        os.makedirs(self.root, exist_ok=True)

    def _fsync_dir(self, real_path: str) -> None:
        # The stub-creation protocol's crash-safety rests on the O_EXCL
        # create being durable; that requires syncing the parent
        # directory's entry table, not just the new file's data.
        if not self.sync_meta:
            return
        try:
            fd = os.open(real_path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _real(self, path: str) -> str:
        try:
            return confine(self.root, path)
        except PathEscapeError as exc:
            raise error_from_status(-8, str(exc)) from exc

    def _wrap(self, exc: OSError, path: str) -> ChirpError:
        return error_from_status(status_from_exception(exc), f"{path}: {exc}")

    def stat(self, path: str) -> ChirpStat:
        try:
            return ChirpStat.from_os(os.stat(self._real(path)))
        except OSError as exc:
            raise self._wrap(exc, path) from exc

    def listdir(self, path: str) -> list[str]:
        try:
            return sorted(os.listdir(self._real(path)))
        except OSError as exc:
            raise self._wrap(exc, path) from exc

    def read(self, path: str) -> bytes:
        try:
            with open(self._real(path), "rb") as f:
                return f.read()
        except OSError as exc:
            raise self._wrap(exc, path) from exc

    def create_exclusive(self, path: str, content: bytes) -> bool:
        try:
            fd = os.open(self._real(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        except OSError as exc:
            raise self._wrap(exc, path) from exc
        try:
            os.write(fd, content)
            if self.sync_meta:
                os.fsync(fd)
        finally:
            os.close(fd)
        self._fsync_dir(os.path.dirname(self._real(path)))
        return True

    def unlink(self, path: str) -> None:
        try:
            os.unlink(self._real(path))
        except OSError as exc:
            raise self._wrap(exc, path) from exc

    def rename(self, old: str, new: str) -> None:
        try:
            os.rename(self._real(old), self._real(new))
        except OSError as exc:
            raise self._wrap(exc, old) from exc

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        try:
            os.mkdir(self._real(path), mode)
        except OSError as exc:
            raise self._wrap(exc, path) from exc

    def rmdir(self, path: str) -> None:
        try:
            os.rmdir(self._real(path))
        except OSError as exc:
            raise self._wrap(exc, path) from exc


class ChirpMetadataStore(MetadataStore):
    """Directory tree on a file server (the DSFS case).

    One server "might be dedicated for use as a DSFS directory, or it
    might serve double duty as both directory and file server" -- nothing
    here cares which.
    """

    def __init__(
        self,
        client: ChirpClient,
        root: str = "/",
        policy: Optional[RetryPolicy] = None,
    ):
        self.client = client
        self.root = normalize_virtual(root)
        self.policy = policy or RetryPolicy()

    def _path(self, path: str) -> str:
        inner = normalize_virtual(path)
        if self.root == "/":
            return inner
        return self.root if inner == "/" else self.root + inner

    def _run(self, op):
        return self.policy.run(op, self.client.ensure_connected)

    def stat(self, path: str) -> ChirpStat:
        return self._run(lambda: self.client.stat(self._path(path)))

    def listdir(self, path: str) -> list[str]:
        return self._run(lambda: self.client.getdir(self._path(path)))

    def read(self, path: str) -> bytes:
        return self._run(lambda: self.client.getfile(self._path(path)))

    def create_exclusive(self, path: str, content: bytes) -> bool:
        real = self._path(path)

        def attempt() -> bool:
            try:
                fd = self.client.open(
                    real, OpenFlags(write=True, create=True, exclusive=True), 0o644
                )
            except AlreadyExistsError:
                return False
            try:
                self.client.pwrite(fd, content, 0)
            finally:
                self.client.close_fd(fd)
            return True

        return self._run(attempt)

    def unlink(self, path: str) -> None:
        self._run(lambda: self.client.unlink(self._path(path)))

    def rename(self, old: str, new: str) -> None:
        self._run(lambda: self.client.rename(self._path(old), self._path(new)))

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._run(lambda: self.client.mkdir(self._path(path), mode))

    def rmdir(self, path: str) -> None:
        self._run(lambda: self.client.rmdir(self._path(path)))
