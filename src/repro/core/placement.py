"""Placement policies: choosing a file server for new data.

The paper leaves placement open ("a remote server must be chosen"); these
policies cover the obvious choices and define the seam where smarter ones
(locality-aware, catalog-driven) plug in.
"""

from __future__ import annotations

import random
import threading
import time
from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.core.pool import ClientPool

__all__ = [
    "PlacementPolicy",
    "RoundRobinPlacement",
    "RandomPlacement",
    "MostFreePlacement",
    "DrainingServerView",
]

Endpoint = tuple  # (host, port)


class PlacementPolicy(ABC):
    """Chooses which data server receives a newly created file."""

    @abstractmethod
    def choose(
        self, servers: Sequence[Endpoint], exclude: frozenset = frozenset()
    ) -> Endpoint:
        """Pick a server, never one in ``exclude`` (e.g. known-dead ones).

        Raises :class:`LookupError` when every server is excluded.
        """

    @staticmethod
    def _eligible(servers: Sequence[Endpoint], exclude: frozenset) -> list:
        out = [s for s in servers if tuple(s) not in exclude]
        if not out:
            raise LookupError("no eligible file server for placement")
        return out


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through servers; starts at a random offset to spread load."""

    def __init__(self, seed: Optional[int] = None):
        self._counter = random.Random(seed).randrange(1 << 16)
        self._lock = threading.Lock()

    def choose(self, servers, exclude=frozenset()):
        eligible = self._eligible(servers, exclude)
        with self._lock:
            pick = eligible[self._counter % len(eligible)]
            self._counter += 1
        return pick


class RandomPlacement(PlacementPolicy):
    """Uniform random choice; deterministic under a seed for tests."""

    def __init__(self, seed: Optional[int] = None):
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def choose(self, servers, exclude=frozenset()):
        eligible = self._eligible(servers, exclude)
        with self._lock:
            return self._rng.choice(eligible)


class DrainingServerView:
    """A cached view of catalog-advertised draining servers.

    Plugs into ``StubFilesystem(avoid_servers=...)`` so new files are
    not placed on servers that are gracefully shutting down.  The view
    is advisory and must never break placement: catalog queries are
    TTL-cached, and on a failed query the last known view (possibly
    empty) is served rather than raising.
    """

    def __init__(self, catalog, ttl: float = 5.0, clock=time.monotonic):
        self.catalog = catalog
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._cached: frozenset = frozenset()
        self._fetched_at: float | None = None

    def __call__(self) -> frozenset:
        with self._lock:
            now = self._clock()
            if self._fetched_at is not None and now - self._fetched_at < self.ttl:
                return self._cached
            reports = self.catalog.try_discover()
            self._fetched_at = now
            if reports is not None:
                self._cached = frozenset(
                    (r.host, int(r.port))
                    for r in reports
                    if r.type == "chirp" and getattr(r, "draining", False)
                )
            return self._cached


class MostFreePlacement(PlacementPolicy):
    """Ask each server for its free space and pick the roomiest.

    Costs one ``statfs`` RPC per eligible server per placement; suited to
    large-file workloads (GEMS), not metadata-heavy ones.  Unreachable
    servers are skipped -- placement, like everything else, must tolerate
    partial failure.
    """

    def __init__(self, pool: ClientPool):
        self.pool = pool

    def choose(self, servers, exclude=frozenset()):
        eligible = self._eligible(servers, exclude)
        best = None
        best_free = -1
        for host, port in eligible:
            client = self.pool.try_get(host, port)
            if client is None:
                continue
            try:
                free = client.statfs().free_bytes
            except Exception:
                continue
            if free > best_free:
                best, best_free = (host, port), free
        if best is None:
            raise LookupError("no reachable file server for placement")
        return best
