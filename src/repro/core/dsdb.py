"""DSDB: the distributed shared database.

"The DSDB is similar to the DSFS, except that a database server is used
to store file metadata as well as pointers to files.  A user queries the
database to yield the names of matching files, and then accesses them
directly with the adapter."

A DSDB record is a JSON object carrying user metadata plus the fields the
system maintains::

    {
      "id": ...,  "tss_kind": "file",  "name": "run5/traj.dcd",
      "size": 1048576,  "checksum": "…",
      "replicas": [ {"host": h, "port": p, "path": "/tssdata/vol/file-…",
                     "state": "ok"|"damaged"|"missing", …}, … ],

(``verify_replica`` can additionally answer ``unreachable`` -- an
inconclusive verdict that is never written into a replica's state.)
    }

Replication, auditing, and repair policies live in :mod:`repro.gems`;
this class provides the mechanism: ingest, query, direct fetch with
failover across replicas, replica add/remove, delete.
"""

from __future__ import annotations

import io
import tempfile
from typing import BinaryIO, Optional, Protocol, Sequence, Union

from repro.chirp.protocol import StatFs
from repro.core.placement import PlacementPolicy, RoundRobinPlacement
from repro.core.pool import ClientPool
from repro.core.stubs import unique_data_name
from repro.transport.fanout import DEFAULT_FANOUT, FanoutPool
from repro.transport.recovery import RetryPolicy
from repro.db.query import Query
from repro.util.checksum import data_checksum, file_checksum, stream_checksum
from repro.util.errors import (
    ChirpError,
    DisconnectedError,
    DoesNotExistError,
    IntegrityError,
    InvalidRequestError,
    TryAgainError,
)

__all__ = ["DSDB", "Replica", "RecordStore"]

Replica = dict  # {"host", "port", "path", "state"}

FILE_KIND = "file"


class RecordStore(Protocol):
    """What DSDB needs from its database.

    Satisfied by both :class:`repro.db.engine.MetadataDB` (embedded) and
    :class:`repro.db.client.DatabaseClient` (remote server) -- the same
    recursive trick as everywhere else: local and remote are one interface.
    """

    def insert(self, record: dict) -> str: ...

    def get(self, rid: str) -> Optional[dict]: ...

    def update(self, rid: str, fields: dict) -> dict: ...

    def delete(self, rid: str) -> bool: ...

    def query(self, query: Query, limit: Optional[int] = None) -> list[dict]: ...

    def count(self, query: Query) -> int: ...


def live_replicas(record: dict) -> list[Replica]:
    """Replicas believed intact (state ``ok``)."""
    return [r for r in record.get("replicas", []) if r.get("state", "ok") == "ok"]


class DSDB:
    """A distributed shared database of files.

    :param db: the record store (embedded or remote).
    :param pool: shared client pool carrying the user's credentials.
    :param servers: file servers available for data placement.
    :param volume: name; data lands under ``/tssdata/<volume>`` on servers.
    """

    def __init__(
        self,
        db: RecordStore,
        pool: ClientPool,
        servers: Sequence[tuple[str, int]],
        volume: str = "dsdb",
        placement: Optional[PlacementPolicy] = None,
        policy: Optional[RetryPolicy] = None,
    ):
        if not servers:
            raise ValueError("a DSDB needs at least one file server")
        self.db = db
        self.pool = pool
        self.servers = [(h, int(p)) for h, p in servers]
        self.volume = volume
        self.data_dir = f"/tssdata/{volume}"
        self.placement = placement or RoundRobinPlacement()
        self.policy = policy or RetryPolicy()
        self.fanout = FanoutPool(min(max(len(self.servers), 1), DEFAULT_FANOUT))
        self._dirs_made: set[tuple[str, int]] = set()

    # ------------------------------------------------------------------
    # placement plumbing
    # ------------------------------------------------------------------

    def add_server(self, host: str, port: int) -> None:
        """New equipment arrives: start placing data on it, no downtime."""
        endpoint = (host, int(port))
        if endpoint not in self.servers:
            self.servers.append(endpoint)

    def remove_server(self, host: str, port: int) -> None:
        """Stop placing *new* data on a server (existing replicas remain
        in records until an auditor notices their fate)."""
        endpoint = (host, int(port))
        self.servers = [s for s in self.servers if s != endpoint]

    def _ensure_dir(self, endpoint: tuple[str, int]) -> None:
        if endpoint in self._dirs_made:
            return
        from repro.util.errors import AlreadyExistsError

        client = self.pool.get(*endpoint)
        current = ""
        for part in self.data_dir.strip("/").split("/"):
            current += "/" + part
            try:
                client.mkdir(current)
            except AlreadyExistsError:
                continue
        self._dirs_made.add(endpoint)

    def _place_bytes(
        self, data_or_file: Union[bytes, BinaryIO], exclude: frozenset
    ) -> Replica:
        """Store one copy on a fresh server; returns the replica descriptor.

        Write-path failure coherence, the mirror of :meth:`fetch`: a
        server that refuses the copy (down, draining, busy, circuit
        open) is excluded and the placement re-chosen, so one dead
        machine never fails a write the rest of the cluster could
        accept.  Raises the last transport error only once every
        candidate server has refused; raises ``LookupError`` when
        ``exclude`` already covered everything.
        """
        tried = set(exclude)
        last: Optional[ChirpError] = None
        while True:
            try:
                endpoint = tuple(self.placement.choose(self.servers, frozenset(tried)))
            except LookupError:
                if last is None:
                    raise
                raise last
            try:
                return self._store_bytes(endpoint, data_or_file)
            except ChirpError as exc:
                last = exc
                tried.add(endpoint)

    def _store_bytes(
        self,
        endpoint: tuple[str, int],
        data_or_file: Union[bytes, BinaryIO],
        path: Optional[str] = None,
    ) -> Replica:
        """Store one copy on a *given* server; returns the replica descriptor."""
        self._ensure_dir(endpoint)
        if path is None:
            path = self.data_dir + "/" + unique_data_name()
        client = self.pool.get(*endpoint)
        if isinstance(data_or_file, (bytes, bytearray, memoryview)):
            client.putfile(path, bytes(data_or_file))
        else:
            data_or_file.seek(0)
            client.putfile(path, data_or_file)
        return {"host": endpoint[0], "port": endpoint[1], "path": path, "state": "ok"}

    # ------------------------------------------------------------------
    # ingest / query / fetch / delete
    # ------------------------------------------------------------------

    def ingest(
        self,
        name: str,
        data: Union[bytes, BinaryIO, str],
        metadata: Optional[dict] = None,
        replicas: int = 1,
    ) -> dict:
        """Store a file and index it.

        ``data`` may be bytes, a binary file object, or a local path.
        The record is inserted as soon as *one* copy is safely stored
        (GEMS: "once a single copy of the data is accepted, the
        replicator process then works to replicate"); additional copies
        requested here are added before returning, on distinct servers
        when possible.
        """
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        spool: Optional[BinaryIO] = None
        try:
            if isinstance(data, str):
                spool = open(data, "rb")
                checksum = stream_checksum(spool)
                size = spool.seek(0, io.SEEK_END)
                source: Union[bytes, BinaryIO] = spool
            elif isinstance(data, (bytes, bytearray, memoryview)):
                source = bytes(data)
                checksum = data_checksum(source)
                size = len(source)
            else:
                spool = data
                spool.seek(0)
                checksum = stream_checksum(spool)
                size = spool.seek(0, io.SEEK_END)
                source = spool

            first = self._place_bytes(source, frozenset())
            record = {
                "tss_kind": FILE_KIND,
                "name": name,
                "size": size,
                "checksum": checksum,
                "replicas": [first],
            }
            for key, value in (metadata or {}).items():
                record.setdefault(key, value)
            rid = self.db.insert(record)
            record["id"] = rid
            exclude = {(first["host"], first["port"])}
            for _ in range(replicas - 1):
                try:
                    rep = self._place_bytes(source, frozenset(exclude))
                except LookupError:
                    break  # fewer servers than requested copies
                except ChirpError:
                    # Extra copies are best-effort: the write was acked
                    # the moment one copy was durable, and the keeper
                    # restores the replication factor once servers
                    # return (GEMS: the replicator process works to
                    # replicate).
                    break
                record["replicas"].append(rep)
                exclude.add((rep["host"], rep["port"]))
            if len(record["replicas"]) > 1:
                record = self.db.update(rid, {"replicas": record["replicas"]})
                record["id"] = rid
            return record
        finally:
            if spool is not None and isinstance(data, str):
                spool.close()

    def query(self, query: Query, limit: Optional[int] = None) -> list[dict]:
        return self.db.query(query, limit)

    def find(self, **equalities) -> list[dict]:
        """Shorthand equality query, always scoped to file records."""
        q = Query.where(tss_kind=FILE_KIND, **equalities)
        return self.db.query(q)

    def scan_records(
        self, after: Optional[str] = None, limit: Optional[int] = None
    ) -> list[dict]:
        """File records in id order, resuming past a cursor.

        The incremental-audit primitive: callers remember the last id
        they processed and pass it back as ``after``, so a scan
        interrupted (or rate-limited) mid-way continues where it stopped
        instead of restarting from the first record.  An empty result
        means the cursor reached the end of the keyspace.
        """
        q = Query.where(tss_kind=FILE_KIND)
        if after is not None:
            q = q.and_("id", "gt", after)
        records = sorted(self.db.query(q), key=lambda r: r["id"])
        return records[:limit] if limit is not None else records

    def get(self, rid: str) -> Optional[dict]:
        return self.db.get(rid)

    def fetch(
        self,
        record_or_id: Union[dict, str],
        sink: Optional[BinaryIO] = None,
        verify: bool = False,
    ) -> Union[bytes, int]:
        """Read a file directly from its replicas, failing over in order.

        This is the DSDB's failure coherence: any live replica serves the
        read; only when every replica is gone does the fetch fail.

        With ``verify=True`` the *fetched bytes* are hashed against the
        record's checksum before anything reaches the caller -- the
        corruption-safe read path.  (The ``checksum`` RPC is O(1)
        pointer metadata on content-addressed servers and so blind to
        at-rest bitrot; only hashing what was actually served catches a
        lying replica.)  A digest mismatch marks the replica ``damaged``
        in the record -- the read-repair trigger the keeper acts on --
        and fails over to the next replica.  Corrupt bytes are never
        written to ``sink``.
        """
        record = self._resolve(record_or_id)
        last: Optional[Exception] = None
        for rep in live_replicas(record) or record.get("replicas", []):
            client = self.pool.try_get(rep["host"], rep["port"])
            if client is None:
                last = DisconnectedError(f"{rep['host']}:{rep['port']} down")
                continue
            if not verify:
                try:
                    return client.getfile(rep["path"], sink)
                except ChirpError as exc:
                    last = exc
                    continue
            try:
                data = client.getfile_verified(rep["path"], record["checksum"])
            except IntegrityError as exc:
                record = self.mark_replica(record, rep, "damaged")
                last = exc
                continue
            except ChirpError as exc:
                last = exc
                continue
            if sink is None:
                return data
            sink.write(data)
            return len(data)
        raise DoesNotExistError(
            f"{record.get('name', record.get('id'))}: no replica available"
        ) from last

    def delete(self, record_or_id: Union[dict, str], force: bool = False) -> None:
        """Remove data replicas, then the record (data-first ordering)."""
        record = self._resolve(record_or_id)
        for rep in record.get("replicas", []):
            try:
                client = self.pool.get(rep["host"], rep["port"])
                client.unlink(rep["path"])
            except DoesNotExistError:
                continue
            except ChirpError:
                if not force:
                    raise
        self.db.delete(record["id"])

    def _resolve(self, record_or_id: Union[dict, str]) -> dict:
        if isinstance(record_or_id, dict):
            return record_or_id
        record = self.db.get(record_or_id)
        if record is None:
            raise DoesNotExistError(f"no record {record_or_id}")
        return record

    # ------------------------------------------------------------------
    # replica maintenance (mechanism used by the GEMS policies)
    # ------------------------------------------------------------------

    def verify_replica(self, record: dict, replica: Replica) -> str:
        """Check one replica: ``ok``, ``damaged``, ``missing`` or
        ``unreachable``.

        ``missing`` and ``damaged`` are *authoritative*: the server
        answered and either denied having the file or served the wrong
        digest.  ``unreachable`` is *inconclusive*: the server could not
        be asked (down, draining, stalled, circuit open) -- the replica
        may be perfectly intact, so callers must not treat it as lost.
        Conflating the two is how an auditor turns a rebooting server
        into data loss.
        """
        client = self.pool.try_get(replica["host"], replica["port"])
        if client is None:
            return "unreachable"
        try:
            digest = client.checksum(replica["path"])
        except DoesNotExistError:
            return "missing"
        except ChirpError:
            return "unreachable"
        return "ok" if digest == record["checksum"] else "damaged"

    def copy_replica(
        self,
        record_or_id: Union[dict, str],
        endpoint: tuple[str, int],
        path: Optional[str] = None,
        verify: bool = False,
    ) -> Replica:
        """Stream a live replica onto a *chosen* server; no record update.

        The mechanism half of journaled repair: the caller picks the
        target (and may pre-generate ``path`` so a crash leaves a
        findable orphan), this method moves the bytes, and
        :meth:`attach_replica` commits the result to the record --
        letting a repair journal write its intent entry between the two.

        With ``verify=True`` the freshly written copy is read back via
        the server-side ``checksum`` RPC before being returned; a
        mismatch (torn write, lying server, bit rot in flight) removes
        the copy and raises :class:`TryAgainError`, so a bad copy can
        never be attached as live.

        Raises :class:`ChirpError` when no live source exists or the
        copy itself fails.
        """
        record = self._resolve(record_or_id)
        if not live_replicas(record):
            raise DoesNotExistError(
                f"{record.get('name', record.get('id'))}: no live source replica"
            )
        new_rep = self._link_by_key(record, tuple(endpoint), path)
        if new_rep is None:
            with tempfile.TemporaryFile() as spool:
                self.fetch(record, sink=spool)
                spool.seek(0)
                new_rep = self._store_bytes(tuple(endpoint), spool, path)
        if verify:
            client = self.pool.get(new_rep["host"], new_rep["port"])
            digest = client.checksum(new_rep["path"])
            if digest != record.get("checksum"):
                try:
                    client.unlink(new_rep["path"])
                except ChirpError:
                    pass  # an auditor pass will reap the orphan
                raise TryAgainError(
                    f"{new_rep['path']}: verify-after-write checksum mismatch"
                )
        return new_rep

    def _link_by_key(
        self,
        record: dict,
        endpoint: tuple[str, int],
        path: Optional[str] = None,
    ) -> Optional[Replica]:
        """Copy-by-reference: when the target is content-addressed and
        already holds this record's blob, bind the path to the checksum
        key instead of streaming bytes.  Returns None when the fast path
        does not apply (non-CAS target, key absent, any error) so the
        caller falls back to the byte transfer.
        """
        key = record.get("checksum")
        if not key:
            return None
        client = self.pool.try_get(*endpoint)
        if client is None:
            return None
        try:
            self._ensure_dir(endpoint)
            if path is None:
                path = self.data_dir + "/" + unique_data_name()
            client.putkey(path, key)
        except (InvalidRequestError, DoesNotExistError):
            return None  # old/non-CAS server or blob not present
        except ChirpError:
            return None
        return {"host": endpoint[0], "port": endpoint[1], "path": path, "state": "ok"}

    def attach_replica(
        self, record_or_id: Union[dict, str], replica: Replica
    ) -> dict:
        """Commit a copied replica into its record (the repair 'commit')."""
        record = self._resolve(record_or_id)
        replicas = record.get("replicas", []) + [dict(replica)]
        return self.db.update(record["id"], {"replicas": replicas})

    def add_replica(
        self,
        record_or_id: Union[dict, str],
        target: Optional[tuple[str, int]] = None,
    ) -> Optional[dict]:
        """Copy a live replica onto a server that lacks one.

        Streams through a local spool file, so arbitrarily large files
        replicate in constant memory.  ``target`` pins the destination
        server; when omitted the placement policy chooses among servers
        not already holding a copy.  Returns the updated record, or
        None when no live source or no eligible target exists.
        """
        record = self._resolve(record_or_id)
        occupied = frozenset(
            (r["host"], r["port"]) for r in record.get("replicas", [])
        )
        try:
            if target is None:
                target = tuple(self.placement.choose(self.servers, occupied))
            new_rep = self.copy_replica(record, target)
        except (LookupError, ChirpError):
            return None
        return self.attach_replica(record, new_rep)

    def drop_replica(self, record_or_id: Union[dict, str], replica: Replica) -> dict:
        """Remove one replica's data and forget it in the record."""
        record = self._resolve(record_or_id)
        try:
            client = self.pool.get(replica["host"], replica["port"])
            client.unlink(replica["path"])
        except ChirpError:
            pass  # best effort; the record is authoritative
        replicas = [
            r
            for r in record.get("replicas", [])
            if (r["host"], r["port"], r["path"])
            != (replica["host"], replica["port"], replica["path"])
        ]
        return self.db.update(record["id"], {"replicas": replicas})

    def mark_replica(
        self, record_or_id: Union[dict, str], replica: Replica, state: str
    ) -> dict:
        """Record an auditor verdict about one replica."""
        record = self._resolve(record_or_id)
        replicas = []
        for r in record.get("replicas", []):
            if (r["host"], r["port"], r["path"]) == (
                replica["host"],
                replica["port"],
                replica["path"],
            ):
                r = dict(r)
                r["state"] = state
            replicas.append(r)
        return self.db.update(record["id"], {"replicas": replicas})

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------

    def statfs(self) -> StatFs:
        # One probe per server, concurrently: aggregate capacity of a
        # wide deployment answers in one server's round-trip time.
        def probe(host: str, port: int) -> Optional[StatFs]:
            client = self.pool.try_get(host, port)
            if client is None:
                return None
            try:
                return client.statfs()
            except ChirpError:
                return None

        reports = self.fanout.run([
            (lambda ep=ep: probe(*ep)) for ep in self.servers
        ])
        total = sum(fs.total_bytes for fs in reports if fs is not None)
        free = sum(fs.free_bytes for fs in reports if fs is not None)
        return StatFs(total, free)

    def stored_bytes(self) -> int:
        """Total bytes across all replicas of all records (GEMS budget)."""
        total = 0
        for record in self.db.query(Query.where(tss_kind=FILE_KIND)):
            total += record.get("size", 0) * len(record.get("replicas", []))
        return total
