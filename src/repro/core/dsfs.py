"""DSFS: the distributed shared filesystem.

"The distributed shared filesystem (DSFS) is created by moving the
directory tree onto a file server.  Now, multiple clients may access the
directory tree and follow pointers to file data on multiple servers."

A DSFS volume is addressed as ``host:port`` plus a directory path on that
server (the adapter spells it ``/dsfs/host:port@/volpath/...``).  The
directory server may be dedicated or double as a data server.  Because the
TSS never caches, there is no coherence machinery: clients sharing a DSFS
see each other's updates at the directory server immediately.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cache.manager import CacheManager
from repro.core.dpfs import _ensure_remote_dirs
from repro.core.metastore import ChirpMetadataStore, VOLUME_FILE
from repro.core.placement import PlacementPolicy
from repro.core.pool import ClientPool
from repro.transport.recovery import RetryPolicy
from repro.core.stubfs import StubFilesystem
from repro.util.errors import AlreadyExistsError
from repro.util.paths import normalize_virtual

__all__ = ["DSFS"]


class DSFS(StubFilesystem):
    """A stub filesystem whose directory tree lives on a file server."""

    def __init__(
        self,
        pool: ClientPool,
        dir_host: str,
        dir_port: int,
        dir_root: str,
        servers: Sequence[tuple[str, int]],
        data_dir: str,
        policy: Optional[RetryPolicy] = None,
        **kwargs,
    ):
        self.dir_endpoint = (dir_host, int(dir_port))
        self.dir_root = normalize_virtual(dir_root)
        policy = policy or RetryPolicy()
        meta = ChirpMetadataStore(
            pool.get(dir_host, int(dir_port)), self.dir_root, policy
        )
        super().__init__(meta, pool, servers, data_dir, policy=policy, **kwargs)

    @classmethod
    def create(
        cls,
        pool: ClientPool,
        dir_host: str,
        dir_port: int,
        dir_root: str,
        servers: Sequence[tuple[str, int]],
        name: str = "dsfs",
        placement: Optional[PlacementPolicy] = None,
        policy: Optional[RetryPolicy] = None,
        cache: Optional[CacheManager] = None,
    ) -> "DSFS":
        """Create a new shared volume rooted at ``dir_root`` on the
        directory server, storing data across ``servers``."""
        servers = [(h, int(p)) for h, p in servers]
        data_dir = f"/tssdata/{name}"
        client = pool.get(dir_host, int(dir_port))
        # mkdir -p the volume root on the directory server.
        parts = [p for p in normalize_virtual(dir_root).split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            try:
                client.mkdir(current)
            except AlreadyExistsError:
                continue
        _ensure_remote_dirs(pool, servers, data_dir)
        fs = cls(
            pool,
            dir_host,
            dir_port,
            dir_root,
            servers,
            data_dir,
            placement=placement,
            policy=policy,
            cache=cache,
        )
        fs.meta.write_config({"name": name, "servers": servers, "data_dir": data_dir})
        return fs

    @classmethod
    def open_volume(
        cls,
        pool: ClientPool,
        dir_host: str,
        dir_port: int,
        dir_root: str,
        placement: Optional[PlacementPolicy] = None,
        policy: Optional[RetryPolicy] = None,
        sync_writes: bool = False,
        cache: Optional[CacheManager] = None,
    ) -> "DSFS":
        """Open an existing shared volume by directory-server address."""
        meta = ChirpMetadataStore(
            pool.get(dir_host, int(dir_port)),
            normalize_virtual(dir_root),
            policy or RetryPolicy(),
        )
        doc = meta.read_config()
        return cls(
            pool,
            dir_host,
            dir_port,
            dir_root,
            [(h, int(p)) for h, p in doc["servers"]],
            doc["data_dir"],
            placement=placement,
            policy=policy,
            sync_writes=sync_writes,
            cache=cache,
        )

    def add_server(self, host: str, port: int) -> None:
        """Grow the volume onto a new data server, without downtime."""
        endpoint = (host, int(port))
        if endpoint in self.servers:
            return
        _ensure_remote_dirs(self.pool, [endpoint], self.data_dir)
        self.servers.append(endpoint)
        doc = self.meta.read_config()
        doc["servers"] = self.servers
        self.meta.unlink("/" + VOLUME_FILE)
        self.meta.write_config(doc)
