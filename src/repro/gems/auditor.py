"""The auditor: verify the location and integrity of every replica."""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.core.dsdb import DSDB, FILE_KIND
from repro.db.query import Query

__all__ = ["Auditor", "AuditReport"]

log = logging.getLogger("repro.gems.auditor")


@dataclass
class AuditReport:
    """Outcome of one full audit pass."""

    records: int = 0
    replicas_checked: int = 0
    healthy: int = 0
    missing: int = 0
    damaged: int = 0
    #: replicas whose server could not be asked -- an inconclusive
    #: verdict, not a problem: the state in the record is left alone.
    unreachable: int = 0
    #: record ids with zero live replicas after the audit -- data loss.
    lost_records: list[str] = field(default_factory=list)
    #: endpoints that failed to answer any probe this pass, and endpoints
    #: that gave at least one authoritative verdict.  The keeper's
    #: dead-server hysteresis consumes these: only an endpoint that
    #: stays on the unreachable side for several full passes is declared
    #: dead.
    unreachable_endpoints: set = field(default_factory=set)
    answered_endpoints: set = field(default_factory=set)

    @property
    def problems(self) -> int:
        return self.missing + self.damaged


class Auditor:
    """Scans the database and checks each replica against its checksum.

    The auditor only *observes and notes*: replica states move between
    ``ok``, ``missing`` and ``damaged`` in the database, and repair is
    left entirely to the replicator -- the paper's two-process split.
    A replica that reappears intact (e.g. a server came back from a
    network partition) is marked ``ok`` again.

    A server that cannot be *asked* yields an ``unreachable`` verdict,
    which changes nothing in the database: absence of an answer is not
    evidence of absence.  Marking such replicas ``missing`` would let
    the repair pass drop acknowledged copies during an ordinary reboot
    or drain -- with every replica's server briefly down, that is
    silent data loss.  Unreachable servers are instead handled by the
    keeper's suspect machinery (proactive extra copies on healthy
    ground), and the replica is re-audited once the server answers.

    Three audit modes, cheapest last:

    - ``bytes``: the server re-reads the replica and checksums it (the
      classic audit; catches bitrot but costs a full file read);
    - ``key``: ask a content-addressed server for the key its namespace
      binds the path to and compare it to the record's checksum --
      O(1) metadata on both ends, no payload read.  Non-CAS servers
      refuse the ``keyof`` verb, and the auditor falls back to ``bytes``
      for that replica.  On-disk blob bitrot is out of scope here (the
      binding, not the bytes, is audited); ``tss store scrub`` owns
      that;
    - ``location``: stat only -- catches deletion, not corruption.
    """

    def __init__(
        self,
        dsdb: DSDB,
        verify_checksums: bool = True,
        mode: str | None = None,
    ):
        if mode is None:
            mode = "bytes" if verify_checksums else "location"
        if mode not in ("bytes", "key", "location"):
            raise ValueError(f"unknown audit mode {mode!r}")
        self.mode = mode
        self.dsdb = dsdb
        self.verify_checksums = mode == "bytes"

    def audit_once(self) -> AuditReport:
        report = self.audit_records(self.dsdb.query(Query.where(tss_kind=FILE_KIND)))
        if report.problems:
            log.info(
                "audit: %d replicas checked, %d missing, %d damaged",
                report.replicas_checked,
                report.missing,
                report.damaged,
            )
        return report

    def audit_records(self, records: list[dict]) -> AuditReport:
        """Audit just the given records (one incremental-scan batch).

        The keeper feeds this cursor-bounded slices of the database so a
        long audit spreads across many rate-limited ticks instead of one
        monolithic pass.
        """
        report = AuditReport()
        for record in records:
            report.records += 1
            changed = False
            replicas = []
            for replica in record.get("replicas", []):
                report.replicas_checked += 1
                endpoint = (replica["host"], int(replica["port"]))
                state = self._check(record, replica)
                if state == "unreachable":
                    # Inconclusive: leave the recorded state untouched.
                    report.unreachable += 1
                    report.unreachable_endpoints.add(endpoint)
                    replicas.append(replica)
                    continue
                report.answered_endpoints.add(endpoint)
                if state == "ok":
                    report.healthy += 1
                elif state == "missing":
                    report.missing += 1
                else:
                    report.damaged += 1
                if state != replica.get("state", "ok"):
                    replica = dict(replica)
                    replica["state"] = state
                    changed = True
                replicas.append(replica)
            if changed:
                record = self.dsdb.db.update(record["id"], {"replicas": replicas})
            if not any(r.get("state", "ok") == "ok" for r in replicas):
                report.lost_records.append(record["id"])
        return report

    def _check(self, record: dict, replica: dict) -> str:
        if self.mode == "bytes":
            return self.dsdb.verify_replica(record, replica)
        if self.mode == "key":
            return self._check_key(record, replica)
        # Location-only audit: cheaper, catches deletion but not corruption.
        client = self.dsdb.pool.try_get(replica["host"], replica["port"])
        if client is None:
            return "unreachable"
        from repro.util.errors import ChirpError, DoesNotExistError

        try:
            st = client.stat(replica["path"])
        except DoesNotExistError:
            return "missing"
        except ChirpError:
            return "unreachable"
        return "ok" if st.size == record.get("size", st.size) else "damaged"

    def _check_key(self, record: dict, replica: dict) -> str:
        """Key-comparison audit: compare stored binding to the record's
        checksum without reading the file over the wire."""
        from repro.util.errors import (
            ChirpError,
            DoesNotExistError,
            InvalidRequestError,
            UnknownError,
        )

        client = self.dsdb.pool.try_get(replica["host"], replica["port"])
        if client is None:
            return "unreachable"
        try:
            key = client.keyof(replica["path"])
        except InvalidRequestError:
            # Not a CAS server: the metadata shortcut does not exist
            # there, so pay for the byte-level audit.
            return self.dsdb.verify_replica(record, replica)
        except DoesNotExistError:
            return "missing"
        except UnknownError:
            # The server found the entry but could not resolve its key:
            # a corrupt pointer record, i.e. damage rather than absence.
            return "damaged"
        except ChirpError:
            return "unreachable"
        expected = record.get("checksum")
        return "ok" if expected and key == expected else "damaged"
