"""The preservation control loop and its timeline (Figure 9).

Wires one auditor and one replicator into a periodic loop over an
injectable clock, recording ``(time, stored_bytes, live/total replicas)``
points after every cycle -- the series Figure 9 plots.  The loop can run
synchronously (``step()``/``run_cycles()``, used by tests and the bench)
or in a background thread (``start()``/``stop()``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.dsdb import DSDB, FILE_KIND, live_replicas
from repro.db.query import Query
from repro.gems.auditor import Auditor, AuditReport
from repro.gems.policy import ReplicationPolicy
from repro.gems.replicator import RepairReport, Replicator
from repro.util.clock import Clock, MonotonicClock

__all__ = [
    "PreservationService",
    "TimelinePoint",
    "count_live_replicas",
    "count_total_replicas",
]


def count_live_replicas(dsdb: DSDB) -> int:
    """Live (state ``ok``) replicas across all file records."""
    return sum(
        len(live_replicas(r))
        for r in dsdb.query(Query.where(tss_kind=FILE_KIND))
    )


def count_total_replicas(dsdb: DSDB) -> int:
    """All replicas across all file records, whatever their state."""
    return sum(
        len(r.get("replicas", []))
        for r in dsdb.query(Query.where(tss_kind=FILE_KIND))
    )


@dataclass(frozen=True)
class TimelinePoint:
    """One sample of preservation state, after an audit+repair cycle."""

    time: float
    stored_bytes: int
    live_replicas: int
    total_replicas: int
    missing: int
    damaged: int
    added: int
    dropped: int


class PreservationService:
    """Periodic audit-and-repair, as run for the GEMS deployment."""

    def __init__(
        self,
        dsdb: DSDB,
        policy: ReplicationPolicy,
        clock: Clock | None = None,
        cycle_interval: float = 60.0,
        verify_checksums: bool = True,
        auditor: Auditor | None = None,
        replicator: Replicator | None = None,
    ):
        # Both halves are injectable so a caller can share one
        # replicator's target-failure memory (or a specially configured
        # auditor) between this loop and other machinery, e.g. a keeper.
        self.dsdb = dsdb
        self.auditor = auditor or Auditor(dsdb, verify_checksums=verify_checksums)
        self.replicator = replicator or Replicator(dsdb, policy)
        self.clock = clock or MonotonicClock()
        self.cycle_interval = cycle_interval
        self.timeline: list[TimelinePoint] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._epoch = self.clock.now()

    # -- one cycle ------------------------------------------------------

    def step(self) -> TimelinePoint:
        """Audit everything, repair what is repairable, record the state."""
        audit: AuditReport = self.auditor.audit_once()
        repair: RepairReport = self.replicator.repair_once()
        point = TimelinePoint(
            time=self.clock.now() - self._epoch,
            stored_bytes=repair.stored_bytes,
            live_replicas=self._count_live(),
            total_replicas=self._count_total(),
            missing=audit.missing,
            damaged=audit.damaged,
            added=repair.added,
            dropped=repair.dropped,
        )
        with self._lock:
            self.timeline.append(point)
        return point

    def run_cycles(self, n: int) -> list[TimelinePoint]:
        """Run ``n`` synchronous cycles, advancing the clock between them."""
        points = []
        for _ in range(n):
            points.append(self.step())
            self.clock.sleep(self.cycle_interval)
        return points

    def _count_live(self) -> int:
        return count_live_replicas(self.dsdb)

    def _count_total(self) -> int:
        return count_total_replicas(self.dsdb)

    # -- background mode ----------------------------------------------------

    def start(self) -> "PreservationService":
        if self._thread is not None:
            raise RuntimeError("preservation service already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="gems-preservation", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.step()
            self._stop.wait(self.cycle_interval)
