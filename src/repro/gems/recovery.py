"""Disaster recovery: rebuild the GEMS database from the file servers.

The paper (section 5): if the database is lost, "the remaining portions
of the filesystem are stored in distinguishable directories on each of
the file servers, allowing for either manual recovery or complete
removal.  In the DSDB, the database could even be recovered automatically
by rescanning the existing file data."

This module does that rescan.  Replicas of one logical file are matched
by **checksum** -- the only identity that survives the loss of all
metadata.  Names and user metadata stored only in the database are gone
(that is the honest cost of losing it); recovered records get synthetic
names derived from the checksum, and every replica location is restored,
so the auditor/replicator pick up exactly where they left off.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Optional

from repro.core.dsdb import DSDB, FILE_KIND
from repro.core.pool import ClientPool
from repro.transport.deadline import Deadline
from repro.util.errors import ChirpError, TimedOutError

__all__ = ["rescan_servers", "rebuild_database", "RecoveryReport"]

log = logging.getLogger("repro.gems.recovery")


@dataclass
class RecoveryReport:
    """What a database rebuild found."""

    servers_scanned: int = 0
    servers_unreachable: int = 0
    #: servers abandoned mid-scan because a deadline expired on them
    servers_timed_out: int = 0
    #: True when the overall deadline expired before every server was tried
    deadline_expired: bool = False
    replicas_found: int = 0
    records_rebuilt: int = 0
    #: checksum -> list of (host, port, path, size)
    by_checksum: dict = field(default_factory=dict)


def rescan_servers(
    pool: ClientPool,
    servers: list[tuple[str, int]],
    volume: str,
    deadline: Optional[Deadline] = None,
) -> RecoveryReport:
    """Walk every server's per-volume data directory, checksumming files.

    Uses only resource-layer operations (``getdir``, ``stat``,
    ``checksum``): recovery needs nothing but the Unix interface --
    recursive abstraction paying off at the worst possible moment.

    With a ``deadline``, every RPC runs under the remaining budget, so a
    server that accepts connections but never answers (the worst failure
    mode during a disaster rebuild) costs bounded time instead of
    stalling the whole rescan.  A timed-out server is abandoned and
    counted in ``servers_timed_out``; when the overall budget runs out
    the remaining servers are skipped and ``deadline_expired`` is set --
    partial results are still returned, since a partial rebuild
    (idempotent, see :func:`rebuild_database`) beats none.
    """
    report = RecoveryReport()
    data_dir = f"/tssdata/{volume}"
    for host, port in servers:
        if deadline is not None and deadline.expired:
            report.deadline_expired = True
            break
        client = pool.try_get(host, port)
        if client is None:
            report.servers_unreachable += 1
            continue
        report.servers_scanned += 1
        try:
            names = client.getdir(data_dir, deadline=deadline)
        except TimedOutError:
            report.servers_timed_out += 1
            continue
        except ChirpError:
            continue  # server never held this volume
        for name in names:
            path = f"{data_dir}/{name}"
            try:
                st = client.stat(path, deadline=deadline)
                digest = client.checksum(path, deadline=deadline)
            except TimedOutError:
                # This server went quiet mid-walk; keep what it already
                # yielded and move on before the budget drains further.
                report.servers_timed_out += 1
                break
            except ChirpError:
                continue
            report.replicas_found += 1
            report.by_checksum.setdefault(digest, []).append(
                (host, port, path, st.size)
            )
    return report


def rebuild_database(
    dsdb: DSDB,
    *,
    name_prefix: str = "recovered",
    deadline: Optional[Deadline] = None,
) -> RecoveryReport:
    """Repopulate an (empty or partial) DSDB from its servers' contents.

    Checksums already present in the database are left alone, so the
    rebuild is idempotent and safe to run against a half-surviving DB --
    which is also what makes a deadline-truncated rescan useful: run it
    again with a fresh budget and it only adds what the first run missed.
    """
    report = rescan_servers(dsdb.pool, dsdb.servers, dsdb.volume, deadline=deadline)
    from repro.db.query import Query

    known = {
        rec.get("checksum")
        for rec in dsdb.db.query(Query.where(tss_kind=FILE_KIND))
    }
    for digest, replicas in sorted(report.by_checksum.items()):
        if digest in known:
            continue
        sizes = {size for _, _, _, size in replicas}
        size = max(sizes)  # torn replicas differ; the auditor will sort it
        record = {
            "tss_kind": FILE_KIND,
            "name": f"{name_prefix}/{digest[:16]}",
            "size": size,
            "checksum": digest,
            "recovered": True,
            "replicas": [
                {"host": h, "port": p, "path": path, "state": "ok"}
                for h, p, path, _ in replicas
            ],
        }
        dsdb.db.insert(record)
        report.records_rebuilt += 1
    if report.records_rebuilt:
        log.info(
            "rebuilt %d records from %d replicas on %d servers",
            report.records_rebuilt,
            report.replicas_found,
            report.servers_scanned,
        )
    return report
