"""Disaster recovery: rebuild the GEMS database from the file servers.

The paper (section 5): if the database is lost, "the remaining portions
of the filesystem are stored in distinguishable directories on each of
the file servers, allowing for either manual recovery or complete
removal.  In the DSDB, the database could even be recovered automatically
by rescanning the existing file data."

This module does that rescan.  Replicas of one logical file are matched
by **checksum** -- the only identity that survives the loss of all
metadata.  Names and user metadata stored only in the database are gone
(that is the honest cost of losing it); recovered records get synthetic
names derived from the checksum, and every replica location is restored,
so the auditor/replicator pick up exactly where they left off.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.core.dsdb import DSDB, FILE_KIND
from repro.core.pool import ClientPool
from repro.util.errors import ChirpError

__all__ = ["rescan_servers", "rebuild_database", "RecoveryReport"]

log = logging.getLogger("repro.gems.recovery")


@dataclass
class RecoveryReport:
    """What a database rebuild found."""

    servers_scanned: int = 0
    servers_unreachable: int = 0
    replicas_found: int = 0
    records_rebuilt: int = 0
    #: checksum -> list of (host, port, path, size)
    by_checksum: dict = field(default_factory=dict)


def rescan_servers(
    pool: ClientPool,
    servers: list[tuple[str, int]],
    volume: str,
) -> RecoveryReport:
    """Walk every server's per-volume data directory, checksumming files.

    Uses only resource-layer operations (``getdir``, ``stat``,
    ``checksum``): recovery needs nothing but the Unix interface --
    recursive abstraction paying off at the worst possible moment.
    """
    report = RecoveryReport()
    data_dir = f"/tssdata/{volume}"
    for host, port in servers:
        client = pool.try_get(host, port)
        if client is None:
            report.servers_unreachable += 1
            continue
        report.servers_scanned += 1
        try:
            names = client.getdir(data_dir)
        except ChirpError:
            continue  # server never held this volume
        for name in names:
            path = f"{data_dir}/{name}"
            try:
                st = client.stat(path)
                digest = client.checksum(path)
            except ChirpError:
                continue
            report.replicas_found += 1
            report.by_checksum.setdefault(digest, []).append(
                (host, port, path, st.size)
            )
    return report


def rebuild_database(
    dsdb: DSDB,
    *,
    name_prefix: str = "recovered",
) -> RecoveryReport:
    """Repopulate an (empty or partial) DSDB from its servers' contents.

    Checksums already present in the database are left alone, so the
    rebuild is idempotent and safe to run against a half-surviving DB.
    """
    report = rescan_servers(dsdb.pool, dsdb.servers, dsdb.volume)
    from repro.db.query import Query

    known = {
        rec.get("checksum")
        for rec in dsdb.db.query(Query.where(tss_kind=FILE_KIND))
    }
    for digest, replicas in sorted(report.by_checksum.items()):
        if digest in known:
            continue
        sizes = {size for _, _, _, size in replicas}
        size = max(sizes)  # torn replicas differ; the auditor will sort it
        record = {
            "tss_kind": FILE_KIND,
            "name": f"{name_prefix}/{digest[:16]}",
            "size": size,
            "checksum": digest,
            "recovered": True,
            "replicas": [
                {"host": h, "port": p, "path": path, "state": "ok"}
                for h, p, path, _ in replicas
            ],
        }
        dsdb.db.insert(record)
        report.records_rebuilt += 1
    if report.records_rebuilt:
        log.info(
            "rebuilt %d records from %d replicas on %d servers",
            report.records_rebuilt,
            report.replicas_found,
            report.servers_scanned,
        )
    return report
