"""Replication policies: deciding what to copy next.

Policies are *pure planning functions* over record summaries, so the same
logic drives the real system (over Chirp servers), the unit tests, and
the discrete-event simulation of Figure 9 -- the planning never touches a
socket.

The paper's user interface is a storage budget: "A modest data set of
14 GB is entered into GEMS for safekeeping.  The user specifies that up
to 40 GB of space may be used to store this dataset.  Once a single copy
of the data is accepted, the replicator process then works to replicate
the data until the storage limit has been reached."
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "RecordSummary",
    "ReplicationPolicy",
    "BudgetGreedyPolicy",
    "FixedCountPolicy",
    "plan_drops",
]


@dataclass(frozen=True)
class RecordSummary:
    """What a policy needs to know about one record."""

    record_id: str
    size: int
    live_replicas: int

    @classmethod
    def from_record(cls, record: dict) -> "RecordSummary":
        from repro.core.dsdb import live_replicas

        return cls(
            record_id=record["id"],
            size=int(record.get("size", 0)),
            live_replicas=len(live_replicas(record)),
        )


class ReplicationPolicy(ABC):
    """Plans which records should gain a replica this round."""

    @abstractmethod
    def plan_additions(
        self, summaries: list[RecordSummary], max_servers: int
    ) -> list[str]:
        """Record ids to replicate once more, in priority order.

        ``max_servers`` bounds the useful copy count -- a record cannot
        hold two replicas on one server.
        """


class BudgetGreedyPolicy(ReplicationPolicy):
    """Replicate the least-copied records first, up to a byte budget.

    Prioritizing minimum copy count means a fresh failure (files down to
    one copy) is repaired before any file gains its Nth copy -- which is
    what makes the recovery dips in Figure 9 sharp.
    """

    def __init__(self, budget_bytes: int):
        if budget_bytes <= 0:
            raise ValueError("budget must be positive")
        self.budget_bytes = budget_bytes

    def plan_additions(self, summaries, max_servers):
        stored = sum(s.size * s.live_replicas for s in summaries)
        plan: list[str] = []
        # Sort: fewest live copies first, then biggest first so large files
        # are not starved by a swarm of small ones at the same copy count.
        candidates = sorted(
            (s for s in summaries if 0 < s.live_replicas < max_servers),
            key=lambda s: (s.live_replicas, -s.size),
        )
        planned_copies = {s.record_id: s.live_replicas for s in summaries}
        # Repeatedly sweep, adding one copy per record per sweep, until the
        # budget is exhausted -- yields balanced replication like GEMS.
        progressed = True
        while progressed:
            progressed = False
            for s in candidates:
                if planned_copies[s.record_id] >= max_servers:
                    continue
                if stored + s.size > self.budget_bytes:
                    continue
                stored += s.size
                planned_copies[s.record_id] += 1
                plan.append(s.record_id)
                progressed = True
            candidates.sort(key=lambda s: (planned_copies[s.record_id], -s.size))
        return plan


class FixedCountPolicy(ReplicationPolicy):
    """Target an exact number of copies per record (ablation baseline).

    Ignores any byte budget; risks filling servers when datasets grow,
    which is exactly the failure mode the budget policy avoids.
    """

    def __init__(self, copies: int):
        if copies < 1:
            raise ValueError("copies must be >= 1")
        self.copies = copies

    def plan_additions(self, summaries, max_servers):
        target = min(self.copies, max_servers)
        plan = []
        for s in sorted(summaries, key=lambda s: (s.live_replicas, -s.size)):
            if s.live_replicas == 0:
                continue  # nothing to copy from
            plan.extend([s.record_id] * (target - s.live_replicas))
        return plan


def plan_drops(record: dict) -> list[dict]:
    """Replicas to forget/remove: everything the auditor marked bad."""
    return [r for r in record.get("replicas", []) if r.get("state", "ok") != "ok"]
