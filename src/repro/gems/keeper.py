"""The keeper: a self-healing anti-entropy daemon over a DSDB.

The paper's GEMS deployment promises *long-lived* preservation: "two
active components work in concert to maintain replicas", and the system
as a whole must outlive any single server -- or any single run of its
own maintenance processes.  The one-shot :class:`~repro.gems.auditor.Auditor`
and :class:`~repro.gems.replicator.Replicator` passes provide the
mechanism; this module makes them *continuous* and *crash-safe*:

- **Incremental scanning.**  A persistent cursor
  (``keeper.cursor``) records the last audited record id, so a keeper
  restarted -- or merely rate-limited -- resumes its pass where it
  stopped instead of re-auditing from the top.  Scan and repair work are
  metered by :class:`RateBudget` (records/sec and repair bytes/sec), so
  healing trickles along under foreground traffic instead of starving
  it.

- **Catalog-driven membership.**  The keeper subscribes to catalog
  listings: servers newly reported are admitted as repair targets, and
  servers absent from every listing past the catalog lifetime become
  *suspect* -- the keeper proactively re-replicates records whose copies
  sit on them, and never chooses them as targets, so a decommissioned
  or dying server drains before it takes data with it.

- **Crash-safe repair.**  Every copy is bracketed by an append-only
  repair journal (``keeper.journal``): an ``intent`` entry (with the
  pre-generated destination path) before any byte moves, a ``commit``
  only after the copy is attached to its record, and verify-after-write
  via the server-side ``checksum`` RPC in between.  A keeper that
  crashes mid-copy leaves either a garbage-collectable orphan (intent,
  no commit, checksum bad/absent) or a committed replica (checksum ok
  -- the recovery attaches and commits it); never a half-written copy
  counted as live.

- **Health-integrated targets.**  Target selection goes through the
  :class:`~repro.gems.replicator.Replicator`'s health-aware chooser, so
  endpoints with open circuit breakers are skipped rather than failed
  against on every pass.

The clock is injectable throughout, so the whole control loop runs
deterministically under :class:`~repro.util.clock.ManualClock` in tests.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.core.dsdb import DSDB, FILE_KIND, live_replicas
from repro.core.stubs import unique_data_name
from repro.db.query import Query
from repro.gems.auditor import Auditor
from repro.gems.policy import RecordSummary, ReplicationPolicy, plan_drops
from repro.gems.replicator import Replicator
from repro.util.clock import Clock, MonotonicClock
from repro.util.errors import ChirpError

__all__ = ["Keeper", "KeeperConfig", "KeeperTick", "RateBudget", "RepairJournal"]

log = logging.getLogger("repro.gems.keeper")

JOURNAL_NAME = "keeper.journal"
CURSOR_NAME = "keeper.cursor"

OP_INTENT = "intent"
OP_COMMIT = "commit"
OP_ABORT = "abort"


@dataclass
class KeeperConfig:
    """Tuning knobs for one keeper.

    :ivar state_dir: directory holding the cursor file and repair
        journal; created if missing.  This is the keeper's only local
        state -- everything else is rebuilt from the DSDB.
    :ivar scan_batch: records audited per tick (one cursor advance).
    :ivar records_per_sec: audit rate budget; None = unmetered.
    :ivar repair_bytes_per_sec: copy rate budget; None = unmetered.
    :ivar max_repairs_per_tick: copies attempted per tick, so one tick's
        repair work is bounded no matter how much damage a pass finds.
    :ivar catalog_lifetime: seconds a server may be absent from catalog
        listings before the keeper treats it as suspect (mirrors the
        catalog's own entry lifetime).
    :ivar tick_interval: sleep between ticks in the background loop.
    :ivar verify_checksums: legacy audit switch (see :class:`Auditor`).
    :ivar audit_mode: explicit audit mode ("bytes", "key", "location");
        overrides ``verify_checksums`` when set.  "key" turns each
        replica check into an O(1) metadata comparison on CAS servers.
    :ivar dead_after_passes: full scan passes a server must stay
        unreachable before the keeper declares it dead and starts
        treating its replicas as missing.  The hysteresis that separates
        "rebooting" (no action beyond proactive copies) from "gone"
        (drop and re-replicate); one inconclusive probe never costs a
        replica.
    """

    state_dir: str
    scan_batch: int = 64
    records_per_sec: Optional[float] = None
    repair_bytes_per_sec: Optional[float] = None
    max_repairs_per_tick: int = 8
    catalog_lifetime: float = 900.0
    tick_interval: float = 1.0
    verify_checksums: bool = True
    audit_mode: Optional[str] = None
    dead_after_passes: int = 2

    def __post_init__(self):
        if self.scan_batch < 1:
            raise ValueError("scan_batch must be >= 1")
        if self.max_repairs_per_tick < 1:
            raise ValueError("max_repairs_per_tick must be >= 1")
        if self.dead_after_passes < 1:
            raise ValueError("dead_after_passes must be >= 1")


class RateBudget:
    """A smooth rate limiter: each unit of work books time at ``rate``.

    Deficit scheduling rather than token buckets: ``charge(n)`` books
    ``n / rate`` seconds of exclusive budget and sleeps until the booked
    window opens.  Work is never refused, only delayed, which is the
    right shape for anti-entropy (healing must always make progress,
    just never faster than the operator allowed).  A ``rate`` of None
    disables metering.
    """

    def __init__(self, rate: Optional[float], clock: Optional[Clock] = None):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        self.rate = rate
        self.clock = clock or MonotonicClock()
        self._ready_at = self.clock.now()
        self.throttled_seconds = 0.0

    def charge(self, units: float) -> float:
        """Meter ``units`` of work; returns the seconds actually slept."""
        if self.rate is None or units <= 0:
            return 0.0
        now = self.clock.now()
        wait = max(0.0, self._ready_at - now)
        self._ready_at = max(now, self._ready_at) + units / self.rate
        if wait > 0:
            self.clock.sleep(wait)
            self.throttled_seconds += wait
        return wait


class RepairJournal:
    """Append-only intent/commit journal for in-flight repair copies.

    One JSON object per line: ``{"seq", "op", "record_id", "replica",
    "note"}``.  Every append is flushed and fsynced before the copy it
    brackets proceeds, so the journal is always at least as current as
    the data servers.  ``in_flight()`` replays the file and returns
    intents with no matching commit/abort -- exactly the copies a crash
    may have left half-done.
    """

    def __init__(self, path: str):
        self.path = path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._lock = threading.Lock()
        self._seq = self._last_seq() + 1
        self._log = open(path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            self._log.close()

    def _last_seq(self) -> int:
        last = 0
        for entry in self._entries():
            last = max(last, entry.get("seq", 0))
        return last

    def _entries(self) -> list[dict]:
        try:
            f = open(self.path, "r", encoding="utf-8")
        except FileNotFoundError:
            return []
        out = []
        with f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn final write after a crash
                if isinstance(entry, dict):
                    out.append(entry)
        return out

    def _append(self, entry: dict) -> None:
        self._log.write(json.dumps(entry, sort_keys=True) + "\n")
        self._log.flush()
        os.fsync(self._log.fileno())

    def intent(self, record_id: str, replica: dict) -> int:
        """Journal a copy about to start; returns its sequence number."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            self._append(
                {
                    "seq": seq,
                    "op": OP_INTENT,
                    "record_id": record_id,
                    "replica": dict(replica),
                }
            )
            return seq

    def commit(self, seq: int, note: str = "") -> None:
        with self._lock:
            self._append({"seq": seq, "op": OP_COMMIT, "note": note})

    def abort(self, seq: int, note: str = "") -> None:
        with self._lock:
            self._append({"seq": seq, "op": OP_ABORT, "note": note})

    def in_flight(self) -> list[dict]:
        """Intent entries with no commit/abort, oldest first."""
        intents: dict[int, dict] = {}
        for entry in self._entries():
            seq = entry.get("seq")
            if entry.get("op") == OP_INTENT:
                intents[seq] = entry
            elif entry.get("op") in (OP_COMMIT, OP_ABORT):
                intents.pop(seq, None)
        return [intents[seq] for seq in sorted(intents)]


@dataclass
class KeeperTick:
    """What one keeper tick did."""

    scanned: int = 0
    missing: int = 0
    damaged: int = 0
    unreachable: int = 0
    dropped: int = 0
    committed: int = 0
    aborted: int = 0
    proactive: int = 0
    wrapped: bool = False
    suspects: list = field(default_factory=list)
    draining: list = field(default_factory=list)
    admitted: list = field(default_factory=list)


class Keeper:
    """The long-running self-healing daemon (see module docstring).

    :param dsdb: the database under preservation.
    :param policy: replication policy driving repair planning.
    :param catalog: optional :class:`~repro.catalog.client.CatalogClient`
        for membership; without one the server set is static.
    :param config: see :class:`KeeperConfig`.
    :param clock: injectable time source for rates, membership aging and
        the background loop.
    :param metrics: a :class:`~repro.transport.metrics.MetricsRegistry`
        to surface keeper counters under a ``"keeper"`` snapshot
        section; defaults to the DSDB pool's registry.
    """

    def __init__(
        self,
        dsdb: DSDB,
        policy: ReplicationPolicy,
        config: KeeperConfig,
        catalog=None,
        clock: Optional[Clock] = None,
        metrics=None,
    ):
        self.dsdb = dsdb
        self.config = config
        self.catalog = catalog
        self.clock = clock or MonotonicClock()
        self.auditor = Auditor(
            dsdb,
            verify_checksums=config.verify_checksums,
            mode=config.audit_mode,
        )
        self.replicator = Replicator(dsdb, policy)
        os.makedirs(config.state_dir, exist_ok=True)
        self.journal = RepairJournal(os.path.join(config.state_dir, JOURNAL_NAME))
        self._cursor_path = os.path.join(config.state_dir, CURSOR_NAME)
        self._cursor: Optional[str] = None
        self._load_cursor()
        self.scan_budget = RateBudget(config.records_per_sec, self.clock)
        self.repair_budget = RateBudget(config.repair_bytes_per_sec, self.clock)
        # endpoint -> last time it appeared in a catalog listing (this
        # clock); servers known before any listing get a grace stamp.
        self._last_seen: dict[tuple, float] = {}
        self.suspects: set[tuple] = set()
        # Servers advertising graceful drain in their catalog report:
        # alive (they refresh _last_seen) but about to go -- never a
        # repair target, and replicas on them get proactive copies.
        self.draining: set[tuple] = set()
        # Dead-server hysteresis: endpoints that answered no audit probe
        # accumulate one strike per *completed pass*; at
        # config.dead_after_passes strikes the server is declared dead
        # and its replicas become authoritatively missing.  One answered
        # probe clears the strikes (and the declaration).
        self._unreachable_streaks: dict[tuple, int] = {}
        self._pass_unreachable: set[tuple] = set()
        self._pass_answered: set[tuple] = set()
        self.dead: set[tuple] = set()
        self._counters = {
            "ticks": 0,
            "passes_completed": 0,
            "records_scanned": 0,
            "replicas_checked": 0,
            "missing": 0,
            "damaged": 0,
            "unreachable": 0,
            "dropped": 0,
            "journal_deferred": 0,
            "repairs_committed": 0,
            "repairs_aborted": 0,
            "proactive_copies": 0,
            "journal_recovered": 0,
            "journal_garbage_collected": 0,
            "servers_admitted": 0,
            "scrub_reports_ingested": 0,
            "scrub_replicas_marked": 0,
        }
        self._counters["passes_completed"] = self._restored_passes
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        registry = metrics if metrics is not None else getattr(
            dsdb.pool, "metrics", None
        )
        if registry is not None:
            registry.attach_section("keeper", self)
        self.recover()

    # -- state files ----------------------------------------------------

    def _load_cursor(self) -> None:
        try:
            with open(self._cursor_path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (FileNotFoundError, ValueError):
            self._restored_passes = 0
            return
        self._cursor = doc.get("cursor")
        self._restored_passes = int(doc.get("passes", 0))

    def _save_cursor(self) -> None:
        tmp = self._cursor_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(
                {
                    "cursor": self._cursor,
                    "passes": self._counters["passes_completed"],
                },
                f,
            )
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self._cursor_path)

    @property
    def cursor(self) -> Optional[str]:
        return self._cursor

    # -- crash recovery -------------------------------------------------

    def recover(self) -> int:
        """Resolve every in-flight journaled copy; returns how many.

        For each intent without a commit: if the destination copy
        verifies against the record checksum it is attached (if not
        already) and committed -- the crash lost only the bookkeeping;
        otherwise the copy (whole, torn, or absent) is unlinked
        best-effort, detached if attached, and the intent aborted.  The
        invariant either way: no half-written copy is ever counted live.

        A destination that cannot be *asked* resolves nothing: the
        intent stays in flight for a later pass, because dropping an
        attached replica on an unreachable-but-healthy server would
        manufacture data loss out of a network blip.
        """
        resolved = 0
        for entry in self.journal.in_flight():
            seq = entry["seq"]
            replica = entry["replica"]
            record = self.dsdb.get(entry["record_id"])
            state = (
                self.dsdb.verify_replica(record, replica)
                if record is not None
                else "missing"
            )
            if state == "unreachable":
                self._counters["journal_deferred"] += 1
                continue
            attached = record is not None and any(
                (r["host"], r["port"], r["path"])
                == (replica["host"], replica["port"], replica["path"])
                for r in record.get("replicas", [])
            )
            if state == "ok":
                if not attached:
                    self.dsdb.attach_replica(record, replica)
                self.journal.commit(seq, "recovered")
                self._counters["journal_recovered"] += 1
            else:
                if attached:
                    self.dsdb.drop_replica(record, replica)
                else:
                    client = self.dsdb.pool.try_get(
                        replica["host"], replica["port"]
                    )
                    if client is not None:
                        try:
                            client.unlink(replica["path"])
                        except ChirpError:
                            pass  # absent, or the server will be audited later
                self.journal.abort(seq, "crash-recovery gc")
                self._counters["journal_garbage_collected"] += 1
            resolved += 1
        if resolved:
            log.info(
                "journal recovery: %d in-flight copies resolved "
                "(%d recovered, %d garbage-collected)",
                resolved,
                self._counters["journal_recovered"],
                self._counters["journal_garbage_collected"],
            )
        return resolved

    # -- membership -----------------------------------------------------

    def refresh_membership(self, tick: Optional[KeeperTick] = None) -> set:
        """Update the server view from catalog listings.

        Newly listed file servers join the DSDB placement set; known
        servers missing from every listing for longer than
        ``catalog_lifetime`` become suspect.  With no catalog (or none
        reachable) the previous view stands -- membership decisions are
        never made on a communication failure alone.
        """
        now = self.clock.now()
        known = {tuple(ep) for ep in self.dsdb.servers}
        for ep in known:
            self._last_seen.setdefault(ep, now)
        if self.catalog is not None:
            reports = self.catalog.try_discover()
            if reports is not None:
                draining = set()
                for report in reports:
                    if report.type != "chirp":
                        continue
                    ep = (report.host, int(report.port))
                    self._last_seen[ep] = now
                    # A fresh catalog report is proof of life: clear any
                    # dead-server declaration.  Without this, a server
                    # whose replicas were all dropped is never audited
                    # again and would stay "dead" (and excluded as a
                    # repair target) forever after it comes back.
                    self._unreachable_streaks.pop(ep, None)
                    self.dead.discard(ep)
                    if getattr(report, "draining", False):
                        draining.add(ep)
                    if ep not in known:
                        self.dsdb.add_server(*ep)
                        known.add(ep)
                        self._counters["servers_admitted"] += 1
                        if tick is not None:
                            tick.admitted.append(ep)
                        log.info("admitted new server %s:%d", *ep)
                # Only a fresh listing updates the drain view; like the
                # suspect set, it is never changed on a communication
                # failure alone.
                self.draining = draining
        lifetime = self.config.catalog_lifetime
        self.suspects = {
            ep for ep in known if now - self._last_seen[ep] > lifetime
        }
        if tick is not None:
            tick.suspects = sorted(self.suspects)
            tick.draining = sorted(self.draining)
        return self.suspects

    # -- scrub ingestion ------------------------------------------------

    def ingest_scrub_report(self, endpoint: tuple, report: dict) -> int:
        """Turn one server's store scrub report into repair work items.

        A content-addressed store's ``scrub()`` walks objects at rest
        and reports keys whose bytes no longer hash to their name (the
        only audit that catches bitrot the O(1) ``checksum`` RPC is
        blind to).  This method closes the loop: every replica on
        ``endpoint`` whose record checksum is a corrupt or quarantined
        key is marked ``damaged``, so the next repair pass drops it
        (:func:`~repro.gems.policy.plan_drops`) and re-replicates from
        an intact copy.  Returns how many replicas were marked.
        """
        host, port = endpoint[0], int(endpoint[1])
        bad_keys = list(report.get("corrupt", ())) + list(
            report.get("quarantined", ())
        )
        marked = 0
        for key in dict.fromkeys(bad_keys):
            for record in self.dsdb.find(checksum=key):
                for rep in record.get("replicas", []):
                    if (rep["host"], int(rep["port"])) != (host, port):
                        continue
                    if rep.get("state") == "damaged":
                        continue
                    self.dsdb.mark_replica(record, rep, "damaged")
                    marked += 1
        self._counters["scrub_reports_ingested"] += 1
        self._counters["scrub_replicas_marked"] += marked
        if marked:
            log.info(
                "scrub report from %s:%d: %d replicas marked damaged",
                host, port, marked,
            )
        return marked

    # -- the tick -------------------------------------------------------

    def tick(self) -> KeeperTick:
        """One bounded slice of anti-entropy work."""
        tick = KeeperTick()
        self._counters["ticks"] += 1
        self.refresh_membership(tick)
        batch = self.dsdb.scan_records(
            after=self._cursor, limit=self.config.scan_batch
        )
        if not batch:
            # End of the keyspace: the pass is complete; the next tick
            # starts over from the top.
            tick.wrapped = True
            self._cursor = None
            self._counters["passes_completed"] += 1
            self._fold_unreachable_pass()
            self._save_cursor()
            return tick
        self.scan_budget.charge(len(batch))
        report = self.auditor.audit_records(batch)
        self._pass_unreachable |= report.unreachable_endpoints
        self._pass_answered |= report.answered_endpoints
        tick.scanned = report.records
        tick.missing = report.missing
        tick.damaged = report.damaged
        tick.unreachable = report.unreachable
        self._counters["records_scanned"] += report.records
        self._counters["replicas_checked"] += report.replicas_checked
        self._counters["missing"] += report.missing
        self._counters["damaged"] += report.damaged
        self._counters["unreachable"] += report.unreachable
        self._cursor = batch[-1]["id"]
        self._save_cursor()
        self._repair(batch, tick)
        return tick

    def _fold_unreachable_pass(self) -> None:
        """End-of-pass bookkeeping for the dead-server hysteresis."""
        for endpoint in self._pass_answered:
            self._unreachable_streaks.pop(endpoint, None)
        for endpoint in self._pass_unreachable - self._pass_answered:
            self._unreachable_streaks[endpoint] = (
                self._unreachable_streaks.get(endpoint, 0) + 1
            )
        dead = {
            endpoint
            for endpoint, strikes in self._unreachable_streaks.items()
            if strikes >= self.config.dead_after_passes
        }
        for endpoint in sorted(dead - self.dead):
            log.warning(
                "server %s:%d unreachable for %d passes: declared dead",
                endpoint[0], endpoint[1], self.config.dead_after_passes,
            )
        self.dead = dead
        self._pass_unreachable = set()
        self._pass_answered = set()

    def _repair(self, batch: list[dict], tick: KeeperTick) -> None:
        budget_left = self.config.max_repairs_per_tick
        # Drop what the audit just noted (refetch: states changed above).
        for stale in batch:
            record = self.dsdb.get(stale["id"])
            if record is None:
                continue
            # Replicas on declared-dead servers become authoritatively
            # missing -- the hysteresis already separated "gone" from
            # "rebooting".
            if self.dead:
                for rep in list(record.get("replicas", [])):
                    endpoint = (rep["host"], int(rep["port"]))
                    if endpoint in self.dead and rep.get("state", "ok") == "ok":
                        record = self.dsdb.mark_replica(record, rep, "missing")
            for bad in plan_drops(record):
                # Last-copy guard: never forget the final pointer to the
                # data.  A record with zero replicas is unrepairable, so
                # a bad last copy stays in the record (and keeps being
                # re-audited) until a repair restores redundancy or the
                # server comes back intact.
                if len(record.get("replicas", [])) <= 1:
                    break
                record = self.dsdb.drop_replica(record, bad)
                tick.dropped += 1
                self._counters["dropped"] += 1
        # Proactive drain: records in this batch with live copies on
        # suspect or draining servers get one extra copy on healthy
        # ground now, before those servers finish dying.
        if self.suspects or self.draining:
            for stale in batch:
                if budget_left <= 0:
                    break
                record = self.dsdb.get(stale["id"])
                if record is not None and self._proactive_copy(record, tick):
                    budget_left -= 1
        # Policy-planned repairs, highest priority first.
        records = self.dsdb.query(Query.where(tss_kind=FILE_KIND))
        summaries = [RecordSummary.from_record(r) for r in records]
        plan = self.replicator.policy.plan_additions(
            summaries, len(self.dsdb.servers)
        )
        if plan:
            log.info(
                "repair plan: %d under-replicated records (avoid=%s)",
                len(plan), sorted("%s:%d" % ep for ep in self._avoid()),
            )
        for record_id in plan:
            if budget_left <= 0:
                break
            record = self.dsdb.get(record_id)
            if record is None or not live_replicas(record):
                continue
            target = self.replicator.choose_target(
                record, avoid=self._avoid()
            )
            if target is None:
                log.info("no repair target for record %s", record_id)
                continue
            self._journaled_copy(record, target, tick)
            budget_left -= 1

    def _avoid(self) -> frozenset:
        """Endpoints repair must not target: suspect, draining or dead."""
        return frozenset(self.suspects | self.draining | self.dead)

    def _proactive_copy(self, record: dict, tick: KeeperTick) -> bool:
        """One extra copy off suspect/draining ground; True when an attempt
        was made (success or failure -- either way it consumed repair
        budget)."""
        doomed = self.suspects | self.draining | self.dead
        live = live_replicas(record)
        if not any((r["host"], r["port"]) in doomed for r in live):
            return False
        target = self.replicator.choose_target(record, avoid=self._avoid())
        if target is None:
            return False
        if self._journaled_copy(record, target, tick):
            tick.proactive += 1
            self._counters["proactive_copies"] += 1
        return True

    def _journaled_copy(
        self, record: dict, target: tuple, tick: KeeperTick
    ) -> bool:
        """One intent → copy → verify → attach → commit cycle."""
        path = self.dsdb.data_dir + "/" + unique_data_name()
        pending = {
            "host": target[0],
            "port": int(target[1]),
            "path": path,
            "state": "ok",
        }
        seq = self.journal.intent(record["id"], pending)
        self.repair_budget.charge(record.get("size", 0))
        try:
            replica = self.dsdb.copy_replica(
                record, target, path=path, verify=True
            )
            self.dsdb.attach_replica(record, replica)
        except (ChirpError, LookupError) as exc:
            client = self.dsdb.pool.try_get(*target)
            if client is not None:
                try:
                    client.unlink(path)
                except ChirpError:
                    pass
            self.journal.abort(seq, str(exc))
            self.replicator.note_target_failure(target)
            tick.aborted += 1
            self._counters["repairs_aborted"] += 1
            log.info(
                "repair of %s -> %s:%d aborted: %s",
                record["id"], target[0], int(target[1]), exc,
            )
            return False
        self.journal.commit(seq)
        log.info(
            "repair: record %s copied to %s:%d",
            record["id"], target[0], int(target[1]),
        )
        self.replicator.note_target_success(target)
        tick.committed += 1
        self._counters["repairs_committed"] += 1
        return True

    # -- observability --------------------------------------------------

    def snapshot(self) -> dict:
        """Keeper counters for the metrics snapshot's ``keeper`` section."""
        with self._lock:
            snap = dict(self._counters)
        snap["cursor"] = self._cursor
        snap["suspect_servers"] = sorted(
            "%s:%d" % ep for ep in self.suspects
        )
        snap["draining_servers"] = sorted(
            "%s:%d" % ep for ep in self.draining
        )
        snap["dead_servers"] = sorted("%s:%d" % ep for ep in self.dead)
        snap["scan_throttled_seconds"] = self.scan_budget.throttled_seconds
        snap["repair_throttled_seconds"] = self.repair_budget.throttled_seconds
        return snap

    # -- background mode ------------------------------------------------

    def run_passes(self, passes: int, max_ticks: int = 10000) -> list[KeeperTick]:
        """Run synchronously until ``passes`` full scans complete."""
        done = self._counters["passes_completed"] + passes
        ticks = []
        while self._counters["passes_completed"] < done and len(ticks) < max_ticks:
            ticks.append(self.tick())
        return ticks

    def start(self) -> "Keeper":
        if self._thread is not None:
            raise RuntimeError("keeper already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="gems-keeper", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        self.journal.close()

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.tick()
            except Exception:  # pragma: no cover - keeper must not die
                log.exception("keeper tick failed; continuing")
            self._stop.wait(self.config.tick_interval)
