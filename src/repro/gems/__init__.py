"""GEMS: Grid Enabled Molecular Simulations -- preservation on a DSDB.

The paper's bioinformatics deployment: files are stored on file servers
and indexed in a database, and "two active components work in concert to
maintain replicas":

- the :class:`~repro.gems.auditor.Auditor` "periodically scans the
  database and then verifies the location and integrity of data on file
  servers", noting damage and loss;
- the :class:`~repro.gems.replicator.Replicator` "examines the notations
  and then repairs them by re-replicating the remaining copies", up to a
  user-specified storage budget.

:class:`~repro.gems.preservation.PreservationService` wires the two into
a periodic control loop and records the timeline that Figure 9 plots.
"""

from repro.gems.policy import (
    ReplicationPolicy,
    BudgetGreedyPolicy,
    FixedCountPolicy,
    plan_drops,
)
from repro.gems.auditor import Auditor, AuditReport
from repro.gems.replicator import Replicator, RepairReport
from repro.gems.preservation import (
    PreservationService,
    TimelinePoint,
    count_live_replicas,
    count_total_replicas,
)
from repro.gems.keeper import (
    Keeper,
    KeeperConfig,
    KeeperTick,
    RateBudget,
    RepairJournal,
)
from repro.gems.recovery import RecoveryReport, rebuild_database, rescan_servers

__all__ = [
    "RecoveryReport",
    "rebuild_database",
    "rescan_servers",
    "ReplicationPolicy",
    "BudgetGreedyPolicy",
    "FixedCountPolicy",
    "plan_drops",
    "Auditor",
    "AuditReport",
    "Replicator",
    "RepairReport",
    "PreservationService",
    "TimelinePoint",
    "count_live_replicas",
    "count_total_replicas",
    "Keeper",
    "KeeperConfig",
    "KeeperTick",
    "RateBudget",
    "RepairJournal",
]
