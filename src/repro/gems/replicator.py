"""The replicator: repair what the auditor noted, within the budget."""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.core.dsdb import DSDB, FILE_KIND, live_replicas
from repro.db.query import Query
from repro.gems.policy import RecordSummary, ReplicationPolicy, plan_drops

__all__ = ["Replicator", "RepairReport"]

log = logging.getLogger("repro.gems.replicator")


@dataclass
class RepairReport:
    """Outcome of one repair pass."""

    dropped: int = 0
    added: int = 0
    failed_additions: int = 0
    stored_bytes: int = 0


class Replicator:
    """Examines auditor notations and re-replicates remaining copies.

    One pass:

    1. forget replicas marked ``missing`` and remove+forget those marked
       ``damaged`` (their bytes are reclaimed);
    2. ask the policy which records deserve another copy, given the
       per-record live-copy counts and the server count;
    3. perform the copies, streaming from a surviving replica.
    """

    def __init__(self, dsdb: DSDB, policy: ReplicationPolicy):
        self.dsdb = dsdb
        self.policy = policy

    def repair_once(self, max_additions: int | None = None) -> RepairReport:
        report = RepairReport()
        records = self.dsdb.query(Query.where(tss_kind=FILE_KIND))
        # Phase 1: drop bad replicas.
        fresh = []
        for record in records:
            bad = plan_drops(record)
            for replica in bad:
                record = self.dsdb.drop_replica(record, replica)
                report.dropped += 1
            fresh.append(record)
        # Phase 2: plan.
        summaries = [RecordSummary.from_record(r) for r in fresh]
        plan = self.policy.plan_additions(summaries, len(self.dsdb.servers))
        if max_additions is not None:
            plan = plan[:max_additions]
        # Phase 3: copy.
        for record_id in plan:
            updated = self.dsdb.add_replica(record_id)
            if updated is None:
                report.failed_additions += 1
            else:
                report.added += 1
        report.stored_bytes = self._stored_live_bytes()
        if report.dropped or report.added:
            log.info(
                "repair: dropped %d, added %d (stored now %d bytes)",
                report.dropped,
                report.added,
                report.stored_bytes,
            )
        return report

    def _stored_live_bytes(self) -> int:
        total = 0
        for record in self.dsdb.query(Query.where(tss_kind=FILE_KIND)):
            total += record.get("size", 0) * len(live_replicas(record))
        return total
