"""The replicator: repair what the auditor noted, within the budget."""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Optional

from repro.core.dsdb import DSDB, FILE_KIND, live_replicas
from repro.db.query import Query
from repro.gems.policy import RecordSummary, ReplicationPolicy, plan_drops
from repro.transport.health import HealthRegistry

__all__ = ["Replicator", "RepairReport"]

log = logging.getLogger("repro.gems.replicator")

Endpoint = tuple  # (host, port)


@dataclass
class RepairReport:
    """Outcome of one repair pass."""

    dropped: int = 0
    added: int = 0
    failed_additions: int = 0
    skipped_unhealthy_targets: int = 0
    stored_bytes: int = 0
    #: endpoints that failed as copy targets this pass
    failed_targets: list = field(default_factory=list)


class Replicator:
    """Examines auditor notations and re-replicates remaining copies.

    One pass:

    1. forget replicas marked ``missing`` and remove+forget those marked
       ``damaged`` (their bytes are reclaimed);
    2. ask the policy which records deserve another copy, given the
       per-record live-copy counts and the server count;
    3. perform the copies, streaming from a surviving replica onto a
       target the replicator chooses itself.

    Target selection is *health-integrated*: endpoints whose circuit
    breaker is open (see :class:`~repro.transport.health.HealthRegistry`)
    are skipped outright rather than failing every pass, and endpoints
    that failed as copy targets accumulate a consecutive-failure count
    that pushes them to the back of the candidate ordering -- a server
    that is down but whose breaker has not tripped (e.g. the pool never
    dials it outside repair) stops being the first pick on every pass.
    """

    def __init__(
        self,
        dsdb: DSDB,
        policy: ReplicationPolicy,
        health: Optional[HealthRegistry] = None,
    ):
        self.dsdb = dsdb
        self.policy = policy
        self.health = health if health is not None else getattr(
            dsdb.pool, "health", None
        )
        #: endpoint -> consecutive failures as a *copy target*
        self.target_failures: dict[Endpoint, int] = {}

    # -- target selection ----------------------------------------------

    def choose_target(
        self, record: dict, avoid: frozenset = frozenset()
    ) -> Optional[Endpoint]:
        """Best server for this record's next copy, or None.

        Candidates are servers not already holding a replica and not in
        ``avoid`` (e.g. catalog-suspect endpoints).  Open-breaker
        endpoints are dropped; survivors with the fewest consecutive
        target failures form the front tier (repeat offenders only get
        picked when nothing better exists), and the DSDB's placement
        policy spreads copies across that tier.
        """
        occupied = {(r["host"], r["port"]) for r in record.get("replicas", [])}
        candidates = [
            tuple(ep)
            for ep in self.dsdb.servers
            if tuple(ep) not in occupied and tuple(ep) not in avoid
        ]
        if self.health is not None:
            candidates = [
                ep for ep in candidates if not self.health.is_open(*ep)
            ]
        if not candidates:
            return None
        best = min(self.target_failures.get(ep, 0) for ep in candidates)
        tier = [ep for ep in candidates if self.target_failures.get(ep, 0) == best]
        try:
            return tuple(self.dsdb.placement.choose(tier))
        except LookupError:
            return None

    def note_target_failure(self, endpoint: Endpoint) -> None:
        endpoint = tuple(endpoint)
        self.target_failures[endpoint] = self.target_failures.get(endpoint, 0) + 1

    def note_target_success(self, endpoint: Endpoint) -> None:
        self.target_failures.pop(tuple(endpoint), None)

    # -- repair pass ----------------------------------------------------

    def repair_once(self, max_additions: int | None = None) -> RepairReport:
        report = RepairReport()
        records = self.dsdb.query(Query.where(tss_kind=FILE_KIND))
        # Phase 1: drop bad replicas.
        fresh = []
        for record in records:
            bad = plan_drops(record)
            for replica in bad:
                record = self.dsdb.drop_replica(record, replica)
                report.dropped += 1
            fresh.append(record)
        # Phase 2: plan.
        summaries = [RecordSummary.from_record(r) for r in fresh]
        plan = self.policy.plan_additions(summaries, len(self.dsdb.servers))
        if max_additions is not None:
            plan = plan[:max_additions]
        # Phase 3: copy, onto explicitly chosen targets.
        for record_id in plan:
            self._repair_one(record_id, report)
        report.stored_bytes = self._stored_live_bytes()
        if report.dropped or report.added:
            log.info(
                "repair: dropped %d, added %d (stored now %d bytes)",
                report.dropped,
                report.added,
                report.stored_bytes,
            )
        return report

    def _repair_one(self, record_id: str, report: RepairReport) -> None:
        record = self.dsdb.get(record_id)
        if record is None or not live_replicas(record):
            # Nothing to copy from: the failure is the record's, so no
            # target endpoint gets blamed for it.
            report.failed_additions += 1
            return
        target = self.choose_target(record)
        if target is None:
            report.skipped_unhealthy_targets += 1
            report.failed_additions += 1
            return
        updated = self.dsdb.add_replica(record, target=target)
        if updated is None:
            self.note_target_failure(target)
            report.failed_additions += 1
            report.failed_targets.append(target)
        else:
            self.note_target_success(target)
            report.added += 1

    def _stored_live_bytes(self) -> int:
        total = 0
        for record in self.dsdb.query(Query.where(tss_kind=FILE_KIND)):
            total += record.get("size", 0) * len(live_replicas(record))
        return total
