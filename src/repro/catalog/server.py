"""The catalog server: collect UDP reports, publish listings over TCP.

A deployment may run several catalogs, each collecting reports from a
different (possibly overlapping) subset of file servers -- for redundancy,
load sharing, or policy (e.g. a private rendezvous catalog for transient
servers glided into a batch system).  Nothing here coordinates catalogs;
overlap is handled by clients de-duplicating on the server endpoint.

Query protocol (TCP): the client sends one line, ``query <format>`` where
format is ``json`` or ``text``; the catalog replies with the document and
closes the connection.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
import time
from typing import Callable, Optional

from repro.catalog.report import ServerReport
from repro.util.wire import LineStream

__all__ = ["CatalogServer"]

log = logging.getLogger("repro.catalog.server")

DEFAULT_LIFETIME = 900.0  # seconds before an unrefreshed entry is dropped


class CatalogServer:
    """A running catalog; context-manager friendly.

    :param lifetime: seconds after which a server that has not re-reported
        is removed from listings.
    :param now: clock injection for deterministic tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lifetime: float = DEFAULT_LIFETIME,
        now: Callable[[], float] = time.time,
    ):
        self.host = host
        self.port = port
        self.lifetime = lifetime
        self.now = now
        self._entries: dict[tuple[str, int], ServerReport] = {}
        self._lock = threading.Lock()
        self._udp: Optional[socket.socket] = None
        self._tcp: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self.address: tuple[str, int] = (host, port)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "CatalogServer":
        udp = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        udp.bind((self.host, self.port))
        # Short poll timeouts make stop() prompt: a blocked recvfrom() is
        # not reliably woken by closing the socket from another thread.
        udp.settimeout(0.2)
        self.address = udp.getsockname()[:2]
        tcp = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        tcp.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        tcp.bind(self.address)  # same port number, TCP side
        tcp.listen(64)
        tcp.settimeout(0.2)
        self._udp, self._tcp = udp, tcp
        for target, name in (
            (self._udp_loop, "catalog-udp"),
            (self._tcp_loop, "catalog-tcp"),
        ):
            t = threading.Thread(target=target, name=name, daemon=True)
            t.start()
            self._threads.append(t)
        log.info("catalog listening on %s", self.address)
        return self

    def stop(self) -> None:
        self._stop.set()
        for sock in (self._udp, self._tcp):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._udp = self._tcp = None
        for t in self._threads:
            t.join(timeout=5)
        self._threads.clear()

    def __enter__(self) -> "CatalogServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- report intake ----------------------------------------------------

    def _udp_loop(self) -> None:
        assert self._udp is not None
        while not self._stop.is_set():
            try:
                data, _addr = self._udp.recvfrom(65536)
            except socket.timeout:
                continue
            except OSError:
                return
            self.accept_report(data)

    def accept_report(self, raw: bytes) -> bool:
        """Ingest one report datagram (also callable directly in tests)."""
        try:
            report = ServerReport.from_json(raw)
        except (ValueError, json.JSONDecodeError) as exc:
            log.debug("dropping malformed report: %s", exc)
            return False
        report.received_at = self.now()
        with self._lock:
            self._entries[report.key] = report
        return True

    # -- listings -----------------------------------------------------------

    def entries(self) -> list[ServerReport]:
        """Live entries, freshest first; expired entries are purged."""
        cutoff = self.now() - self.lifetime
        with self._lock:
            dead = [k for k, r in self._entries.items() if r.received_at < cutoff]
            for k in dead:
                del self._entries[k]
            live = sorted(
                self._entries.values(), key=lambda r: r.received_at, reverse=True
            )
        return live

    def render(self, fmt: str) -> str:
        reports = self.entries()
        if fmt == "json":
            return json.dumps([r.to_dict() for r in reports], sort_keys=True) + "\n"
        if fmt == "text":
            return "\n".join(r.to_text_block() for r in reports)
        raise ValueError(f"unknown catalog format {fmt!r}")

    # -- query service --------------------------------------------------------

    def _tcp_loop(self) -> None:
        assert self._tcp is not None
        while not self._stop.is_set():
            try:
                conn, _addr = self._tcp.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(10.0)
            t = threading.Thread(
                target=self._serve_query, args=(conn,), daemon=True
            )
            t.start()

    def _serve_query(self, conn: socket.socket) -> None:
        stream = LineStream(conn)
        try:
            tokens = stream.read_tokens()
            fmt = tokens[1] if len(tokens) > 1 and tokens[0] == "query" else "json"
            try:
                body = self.render(fmt)
            except ValueError as exc:
                body = json.dumps({"error": str(exc)}) + "\n"
            stream.write(body.encode("utf-8"))
        except Exception:
            pass
        finally:
            stream.close()
