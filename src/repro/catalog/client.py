"""Client-side catalog discovery.

Abstractions use this to find storage at runtime.  Remember the staleness
contract: anything learned here (free space, ACLs, liveness) may have
changed by the time a file server is actually contacted.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.catalog.report import ServerReport
from repro.transport.dial import oneshot_exchange
from repro.util.errors import DisconnectedError, TimedOutError

__all__ = ["query_catalog", "CatalogClient"]


def query_catalog(
    host: str, port: int, fmt: str = "json", timeout: float = 10.0
) -> str:
    """Fetch a raw catalog listing in the requested format."""
    body = oneshot_exchange(
        host,
        port,
        f"query {fmt}\n".encode("ascii"),
        timeout=timeout,
        metric="catalog.query",
    )
    return body.decode("utf-8")


class CatalogClient:
    """Typed discovery over one or more catalogs.

    Multiple catalogs may report overlapping server sets; results are
    de-duplicated by server endpoint, keeping the freshest report.
    """

    def __init__(self, addrs: list[tuple[str, int]], timeout: float = 10.0):
        if not addrs:
            raise ValueError("need at least one catalog address")
        self.addrs = list(addrs)
        self.timeout = timeout

    def discover(self) -> list[ServerReport]:
        """All live servers known to any reachable catalog."""
        merged: dict[tuple[str, int], ServerReport] = {}
        reachable = 0
        for host, port in self.addrs:
            try:
                body = query_catalog(host, port, "json", self.timeout)
            except (DisconnectedError, TimedOutError):
                continue
            reachable += 1
            for doc in json.loads(body):
                report = ServerReport.from_json(json.dumps(doc))
                prev = merged.get(report.key)
                if prev is None or report.received_at > prev.received_at:
                    merged[report.key] = report
        if reachable == 0:
            raise DisconnectedError("no catalog was reachable")
        return sorted(merged.values(), key=lambda r: r.name)

    def try_discover(self) -> Optional[list[ServerReport]]:
        """Like :meth:`discover`, but None when no catalog is reachable.

        The membership-refresh form: a long-running keeper polling the
        catalog must distinguish "the catalog says nothing about server
        X" (evidence of absence -- age the server toward suspicion) from
        "I could not reach any catalog" (no evidence at all -- keep the
        previous view).  Collapsing the two into an exception or an
        empty list would let a catalog outage condemn every server.
        """
        try:
            return self.discover()
        except (DisconnectedError, TimedOutError):
            return None

    def find_space(self, min_free_bytes: int) -> list[ServerReport]:
        """Servers advertising at least ``min_free_bytes`` free.

        Advertised space is stale by definition; callers must be prepared
        for the actual write to fail and to fall back to another server.
        """
        return [r for r in self.discover() if r.free_bytes >= min_free_bytes]
