"""The report document a file server periodically sends to catalogs."""

from __future__ import annotations

import json
from dataclasses import dataclass, field, asdict

__all__ = ["ServerReport"]

_REQUIRED = ("type", "name", "owner", "host", "port")


@dataclass
class ServerReport:
    """One file server's self-description, as stored by a catalog.

    ``received_at`` is stamped by the catalog (its own clock), and all
    staleness decisions use it; the reporter's clock is never trusted.
    """

    type: str
    name: str
    owner: str
    host: str
    port: int
    version: int = 0
    total_bytes: int = 0
    free_bytes: int = 0
    root_acl: str = ""
    #: Server is in graceful drain: finishing in-flight work, refusing
    #: new work with BUSY.  Placement and repair must skip it.
    draining: bool = False
    uptime: float = 0.0
    report_time: float = 0.0
    received_at: float = 0.0
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_json(cls, raw: bytes | str) -> "ServerReport":
        """Parse a report datagram; raises ValueError on garbage."""
        doc = json.loads(raw)
        if not isinstance(doc, dict):
            raise ValueError("report is not a JSON object")
        for key in _REQUIRED:
            if key not in doc:
                raise ValueError(f"report missing required field {key!r}")
        known = {f for f in cls.__dataclass_fields__ if f != "extra"}
        kwargs = {k: doc[k] for k in known if k in doc}
        kwargs["port"] = int(kwargs["port"])
        extra = {k: v for k, v in doc.items() if k not in known}
        return cls(extra=extra, **kwargs)

    def to_dict(self) -> dict:
        doc = asdict(self)
        extra = doc.pop("extra")
        doc.update(extra)
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @property
    def key(self) -> tuple[str, int]:
        """Catalog de-duplication key: one entry per server endpoint."""
        return (self.host, self.port)

    def to_text_block(self) -> str:
        """Human-readable format, in the spirit of classad listings."""
        lines = [
            f"name     = {self.name}",
            f"type     = {self.type}",
            f"owner    = {self.owner}",
            f"address  = {self.host}:{self.port}",
            f"total    = {self.total_bytes}",
            f"free     = {self.free_bytes}",
            f"uptime   = {self.uptime:.0f}",
        ]
        if self.draining:
            lines.append("draining = true")
        return "\n".join(lines) + "\n"
