"""Command-line entry point for a catalog server: ``tss-catalog``."""

from __future__ import annotations

import argparse
import logging

from repro.catalog.server import CatalogServer, DEFAULT_LIFETIME
from repro.util.signals import GracefulSignals

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tss-catalog", description="Run a TSS catalog server."
    )
    parser.add_argument("--host", default="0.0.0.0")
    parser.add_argument("--port", type=int, default=9097)
    parser.add_argument("--lifetime", type=float, default=DEFAULT_LIFETIME)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    catalog = CatalogServer(args.host, args.port, lifetime=args.lifetime)
    catalog.start()
    print(
        f"tss-catalog: listening on {catalog.address[0]}:{catalog.address[1]}",
        flush=True,
    )
    signals = GracefulSignals().install()
    signals.wait()
    catalog.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
