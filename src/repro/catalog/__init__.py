"""Catalog servers: discovery of storage resources.

Each file server periodically reports itself (owner, address, capacity,
top-level ACL, ...) to one or more catalogs over UDP.  A catalog publishes
the aggregate list over TCP in several formats and silently drops servers
that have not reported within the timeout.

All catalog data is *necessarily stale* (paper, section 4): abstractions
that discover resources here must be prepared to revisit any assumption
when they actually contact the file server.
"""

from repro.catalog.report import ServerReport
from repro.catalog.server import CatalogServer
from repro.catalog.client import query_catalog, CatalogClient

__all__ = ["ServerReport", "CatalogServer", "query_catalog", "CatalogClient"]
