"""Byte-budgeted, sharded LRU cache of aligned file blocks.

Entries are keyed ``(file_key, block_index)`` where ``file_key`` names
one remote file (``host:port:/server/path`` by convention -- the same
string the metadata cache uses, so one invalidation string covers both).
Only *full* blocks are cached: a short read marks end-of-file at fetch
time, and caching it would turn a later extension of the file into a
false EOF.  The tail block therefore always goes to the server, which
costs one RPC per file and buys a much simpler coherence story.

Concurrency: the map is sharded -- each shard owns an ``OrderedDict``
and its own lock, so readers on different files (or different blocks of
one file) rarely contend.  Invalidation races with in-flight fetches are
closed by per-file *epochs*: a reader samples ``epoch(key)`` before
issuing its RPC and passes it to :meth:`put`; any invalidation bumps the
epoch, so data fetched before a write can never be installed after the
write invalidated the range.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

__all__ = ["BlockCache"]

# Per-key epoch entries above this count collapse into the base value
# (see ``epoch``); bounds the map in long-running clients that touch
# many distinct files, without ever letting a key's epoch go backwards.
_EPOCH_LIMIT = 4096


class _Shard:
    __slots__ = ("lock", "entries", "bytes", "budget", "hits", "misses", "inserts", "evictions")

    def __init__(self, budget: int):
        self.lock = threading.Lock()
        self.entries: OrderedDict[tuple[str, int], bytes] = OrderedDict()
        self.bytes = 0
        self.budget = budget
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0


class BlockCache:
    """Thread-safe LRU block store with hit/miss/eviction counters."""

    def __init__(self, capacity_bytes: int, block_size: int, shards: int = 8):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.block_size = int(block_size)
        self.capacity_bytes = int(capacity_bytes)
        # Ceil-divide the budget so the shard sum never undercuts the cap
        # by more than rounding; a single hot shard still evicts locally.
        per_shard = max(self.block_size, (self.capacity_bytes + shards - 1) // shards)
        self._shards = [_Shard(per_shard) for _ in range(shards)]
        self._epoch_lock = threading.Lock()
        # Keys not in the map implicitly sit at ``_epoch_base``.  When the
        # map outgrows _EPOCH_LIMIT it collapses: the base rises to the
        # map's maximum and the map empties.  That only ever *advances* a
        # key's observed epoch, so a stale fetch is still refused (at
        # worst a fresh fetch is refused too -- a harmless re-fetch).
        self._epoch_base = 0
        self._epochs: dict[str, int] = {}
        self._stat_lock = threading.Lock()
        self._stale_puts = 0
        self._invalidated = 0

    # -- epochs ----------------------------------------------------------

    def epoch(self, key: str) -> int:
        """Sample the invalidation epoch for ``key`` (before fetching)."""
        with self._epoch_lock:
            return self._epochs.get(key, self._epoch_base)

    def _bump_epoch(self, key: str) -> None:
        with self._epoch_lock:
            self._epochs[key] = self._epochs.get(key, self._epoch_base) + 1
            if len(self._epochs) > _EPOCH_LIMIT:
                self._epoch_base = max(self._epochs.values())
                self._epochs.clear()

    # -- data path -------------------------------------------------------

    def _shard(self, key: str, index: int) -> _Shard:
        return self._shards[hash((key, index)) % len(self._shards)]

    def get(self, key: str, index: int) -> Optional[bytes]:
        shard = self._shard(key, index)
        with shard.lock:
            data = shard.entries.get((key, index))
            if data is None:
                shard.misses += 1
                return None
            shard.entries.move_to_end((key, index))
            shard.hits += 1
            return data

    def peek(self, key: str, index: int) -> bool:
        """Presence probe that touches neither LRU order nor counters."""
        shard = self._shard(key, index)
        with shard.lock:
            return (key, index) in shard.entries

    def put(self, key: str, index: int, data: bytes, epoch: Optional[int] = None) -> bool:
        """Install one full block; returns False if dropped.

        Short blocks are refused (EOF must never be cached -- see the
        module docstring).  With ``epoch``, the block is dropped -- or
        removed again -- if any invalidation for ``key`` has happened
        since the caller sampled :meth:`epoch`.
        """
        if len(data) != self.block_size:
            return False
        if epoch is not None and self.epoch(key) != epoch:
            with self._stat_lock:
                self._stale_puts += 1
            return False
        shard = self._shard(key, index)
        with shard.lock:
            old = shard.entries.pop((key, index), None)
            if old is not None:
                shard.bytes -= len(old)
            shard.entries[(key, index)] = data
            shard.bytes += len(data)
            shard.inserts += 1
            while shard.bytes > shard.budget and len(shard.entries) > 1:
                _, victim = shard.entries.popitem(last=False)
                shard.bytes -= len(victim)
                shard.evictions += 1
        # Close the sample->fetch->install race: if an invalidation slid
        # in between the epoch check above and the insert, take the
        # entry straight back out.
        if epoch is not None and self.epoch(key) != epoch:
            with shard.lock:
                stale = shard.entries.pop((key, index), None)
                if stale is not None:
                    shard.bytes -= len(stale)
            with self._stat_lock:
                self._stale_puts += 1
            return False
        return True

    # -- invalidation ----------------------------------------------------

    def invalidate_range(self, key: str, offset: int, length: int) -> int:
        """Drop every block overlapping ``[offset, offset+length)``."""
        if length <= 0:
            return 0
        self._bump_epoch(key)
        first = offset // self.block_size
        last = (offset + length - 1) // self.block_size
        dropped = 0
        for index in range(first, last + 1):
            shard = self._shard(key, index)
            with shard.lock:
                data = shard.entries.pop((key, index), None)
                if data is not None:
                    shard.bytes -= len(data)
                    dropped += 1
        if dropped:
            with self._stat_lock:
                self._invalidated += dropped
        return dropped

    def invalidate_file(self, key: str) -> int:
        """Drop every cached block of ``key`` (unlink/truncate/putfile)."""
        self._bump_epoch(key)
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                victims = [k for k in shard.entries if k[0] == key]
                for k in victims:
                    shard.bytes -= len(shard.entries.pop(k))
                dropped += len(victims)
        if dropped:
            with self._stat_lock:
                self._invalidated += dropped
        return dropped

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop every block of ``prefix`` itself and of keys under
        ``prefix + "/"`` (directory rename: descendants moved with it).

        Epochs for the affected keys are bumped *before* the sweep so an
        in-flight fetch sampled pre-rename fails :meth:`put`'s re-check
        rather than re-installing a swept block.
        """
        child = prefix + "/"
        keys = {prefix}
        for shard in self._shards:
            with shard.lock:
                keys.update(
                    k[0]
                    for k in shard.entries
                    if k[0] == prefix or k[0].startswith(child)
                )
        for key in keys:
            self._bump_epoch(key)
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                victims = [
                    k
                    for k in shard.entries
                    if k[0] == prefix or k[0].startswith(child)
                ]
                for k in victims:
                    shard.bytes -= len(shard.entries.pop(k))
                dropped += len(victims)
        if dropped:
            with self._stat_lock:
                self._invalidated += dropped
        return dropped

    def clear(self) -> None:
        # Everything is gone, so any in-flight fetch's sampled epoch must
        # read as stale: raise the base past every recorded epoch.
        with self._epoch_lock:
            self._epoch_base = max(self._epochs.values(), default=self._epoch_base) + 1
            self._epochs.clear()
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()
                shard.bytes = 0

    # -- accounting ------------------------------------------------------

    @property
    def cached_bytes(self) -> int:
        return sum(s.bytes for s in self._shards)

    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._shards)

    def snapshot(self) -> dict:
        hits = misses = inserts = evictions = cached = count = 0
        for shard in self._shards:
            with shard.lock:
                hits += shard.hits
                misses += shard.misses
                inserts += shard.inserts
                evictions += shard.evictions
                cached += shard.bytes
                count += len(shard.entries)
        with self._stat_lock:
            return {
                "hits": hits,
                "misses": misses,
                "inserts": inserts,
                "evictions": evictions,
                "invalidated_blocks": self._invalidated,
                "stale_puts": self._stale_puts,
                "cached_bytes": cached,
                "cached_blocks": count,
                "capacity_bytes": self.capacity_bytes,
                "block_size": self.block_size,
            }
