"""TTL metadata cache: stat/lstat/dirent results, including absences.

One entry caches the result of one metadata RPC under ``(kind, key)``
where ``kind`` is ``"stat"``, ``"lstat"`` or ``"dirent"`` and ``key`` is
the same file-key string the block cache uses.  A *negative* entry
records that the path did not exist -- the ``exists()`` probes that
dominate metadata traffic (the paper's Fig. 3 syscall table) hit those
just as hard as positive stats.

Entries carry an absolute expiry (``None`` = live until invalidated, the
``private`` mode) measured on an injectable clock, so TTL tests step a
:class:`~repro.util.clock.ManualClock` instead of sleeping.  The map is
LRU-bounded by entry count; metadata results are small, so a count bound
is an adequate byte bound.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.util.clock import Clock, MonotonicClock

__all__ = ["MetaCache"]

KINDS = ("stat", "lstat", "dirent")


class MetaCache:
    """Thread-safe TTL+LRU cache of metadata results.

    :meth:`get` returns :data:`MetaCache.MISS`, :data:`MetaCache.NEGATIVE`,
    or the cached value.  The sentinels are class attributes so callers
    compare by identity.
    """

    MISS = object()
    NEGATIVE = object()

    def __init__(self, max_entries: int = 4096, clock: Optional[Clock] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.clock = clock or MonotonicClock()
        self._lock = threading.Lock()
        # (kind, key) -> (value | NEGATIVE, expires_at | None)
        self._entries: OrderedDict[tuple[str, str], tuple[object, Optional[float]]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.negative_hits = 0
        self.expired = 0
        self.inserts = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, kind: str, key: str):
        now = self.clock.now()
        with self._lock:
            entry = self._entries.get((kind, key))
            if entry is None:
                self.misses += 1
                return MetaCache.MISS
            value, expires = entry
            if expires is not None and now >= expires:
                del self._entries[(kind, key)]
                self.expired += 1
                self.misses += 1
                return MetaCache.MISS
            self._entries.move_to_end((kind, key))
            if value is MetaCache.NEGATIVE:
                self.negative_hits += 1
            else:
                self.hits += 1
            return value

    def put(self, kind: str, key: str, value, ttl: Optional[float]) -> None:
        expires = None if ttl is None else self.clock.now() + ttl
        with self._lock:
            self._entries.pop((kind, key), None)
            self._entries[(kind, key)] = (value, expires)
            self.inserts += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def put_negative(self, kind: str, key: str, ttl: Optional[float]) -> None:
        self.put(kind, key, MetaCache.NEGATIVE, ttl)

    def invalidate(self, key: str) -> None:
        """Drop every kind of entry for ``key``."""
        with self._lock:
            for kind in KINDS:
                if self._entries.pop((kind, key), None) is not None:
                    self.invalidations += 1

    def invalidate_kind(self, kind: str, key: str) -> None:
        with self._lock:
            if self._entries.pop((kind, key), None) is not None:
                self.invalidations += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "negative_hits": self.negative_hits,
                "expired": self.expired,
                "inserts": self.inserts,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }
