"""TTL metadata cache: stat/lstat/dirent results, including absences.

One entry caches the result of one metadata RPC under ``(kind, key)``
where ``kind`` is ``"stat"``, ``"lstat"`` or ``"dirent"`` and ``key`` is
the same file-key string the block cache uses.  A *negative* entry
records that the path did not exist -- the ``exists()`` probes that
dominate metadata traffic (the paper's Fig. 3 syscall table) hit those
just as hard as positive stats.

Entries carry an absolute expiry (``None`` = live until invalidated, the
``private`` mode) measured on an injectable clock, so TTL tests step a
:class:`~repro.util.clock.ManualClock` instead of sleeping.  The map is
LRU-bounded by entry count; metadata results are small, so a count bound
is an adequate byte bound.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.util.clock import Clock, MonotonicClock

__all__ = ["MetaCache"]

KINDS = ("stat", "lstat", "dirent")

# Per-key generation entries above this count collapse into the base
# value (see ``generation``); bounds the map without ever letting a
# key's generation go backwards.
_GEN_LIMIT = 4096


class MetaCache:
    """Thread-safe TTL+LRU cache of metadata results.

    :meth:`get` returns :data:`MetaCache.MISS`, :data:`MetaCache.NEGATIVE`,
    or the cached value.  The sentinels are class attributes so callers
    compare by identity.
    """

    MISS = object()
    NEGATIVE = object()

    def __init__(self, max_entries: int = 4096, clock: Optional[Clock] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.clock = clock or MonotonicClock()
        self._lock = threading.Lock()
        # (kind, key) -> (value | NEGATIVE, expires_at | None)
        self._entries: OrderedDict[tuple[str, str], tuple[object, Optional[float]]] = (
            OrderedDict()
        )
        # Invalidation generations close the fetch/invalidate race the
        # same way BlockCache epochs do: a reader samples generation(key)
        # before its RPC and passes it to put(); any invalidation of the
        # key bumps the generation, so a pre-mutation result can never be
        # installed after the mutation invalidated the entry.  Keys not
        # in the map implicitly sit at ``_gen_base``; pruning raises the
        # base to the map's maximum, which only ever *advances* a key's
        # generation (false-positive staleness, never a stale install).
        self._gen_base = 0
        self._gens: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.negative_hits = 0
        self.expired = 0
        self.inserts = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_puts = 0

    def generation(self, key: str) -> int:
        """Sample the invalidation generation for ``key`` (before fetching)."""
        with self._lock:
            return self._gens.get(key, self._gen_base)

    def _bump_generation_locked(self, key: str) -> None:
        self._gens[key] = self._gens.get(key, self._gen_base) + 1
        if len(self._gens) > _GEN_LIMIT:
            self._gen_base = max(self._gens.values())
            self._gens.clear()

    def get(self, kind: str, key: str):
        now = self.clock.now()
        with self._lock:
            entry = self._entries.get((kind, key))
            if entry is None:
                self.misses += 1
                return MetaCache.MISS
            value, expires = entry
            if expires is not None and now >= expires:
                del self._entries[(kind, key)]
                self.expired += 1
                self.misses += 1
                return MetaCache.MISS
            self._entries.move_to_end((kind, key))
            if value is MetaCache.NEGATIVE:
                self.negative_hits += 1
            else:
                self.hits += 1
            return value

    def put(
        self,
        kind: str,
        key: str,
        value,
        ttl: Optional[float],
        generation: Optional[int] = None,
    ) -> None:
        """Install one result.  With ``generation``, the entry is dropped
        when any invalidation of ``key`` has happened since the caller
        sampled :meth:`generation` -- the fetch raced a mutation and its
        result predates the server's current state."""
        expires = None if ttl is None else self.clock.now() + ttl
        with self._lock:
            if (
                generation is not None
                and self._gens.get(key, self._gen_base) != generation
            ):
                self.stale_puts += 1
                return
            self._entries.pop((kind, key), None)
            self._entries[(kind, key)] = (value, expires)
            self.inserts += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def put_negative(
        self,
        kind: str,
        key: str,
        ttl: Optional[float],
        generation: Optional[int] = None,
    ) -> None:
        self.put(kind, key, MetaCache.NEGATIVE, ttl, generation=generation)

    def invalidate(self, key: str) -> None:
        """Drop every kind of entry for ``key``."""
        with self._lock:
            self._bump_generation_locked(key)
            for kind in KINDS:
                if self._entries.pop((kind, key), None) is not None:
                    self.invalidations += 1

    def invalidate_kind(self, kind: str, key: str) -> None:
        with self._lock:
            self._bump_generation_locked(key)
            if self._entries.pop((kind, key), None) is not None:
                self.invalidations += 1

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop ``prefix`` itself and every key under ``prefix + "/"``.

        Directory renames strand descendant entries under the old name;
        this sweeps them (both sides of the rename call it) so a later
        reuse of the path can never serve a pre-rename result.
        """
        child = prefix + "/"
        with self._lock:
            victims = [
                k for k in self._entries if k[1] == prefix or k[1].startswith(child)
            ]
            for k in victims:
                del self._entries[k]
            self.invalidations += len(victims)
            for key in {prefix, *(k[1] for k in victims)}:
                self._bump_generation_locked(key)
        return len(victims)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._gen_base = max(self._gens.values(), default=self._gen_base) + 1
            self._gens.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "negative_hits": self.negative_hits,
                "expired": self.expired,
                "inserts": self.inserts,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "stale_puts": self.stale_puts,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }
