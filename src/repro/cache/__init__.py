"""Client-side cache subsystem: block cache, metadata TTL cache, readahead.

The paper's TSS deliberately caches nothing; this package is the
opt-in consultative layer above it.  See
:mod:`repro.cache.policy` for the coherence contract of each mode.
"""

from repro.cache.block import BlockCache
from repro.cache.manager import CacheManager, file_key
from repro.cache.meta import MetaCache
from repro.cache.policy import CACHE_MODES, CachePolicy

__all__ = [
    "BlockCache",
    "CachedFileHandle",
    "CacheManager",
    "CachePolicy",
    "CACHE_MODES",
    "MetaCache",
    "file_key",
]


def __getattr__(name):
    # CachedFileHandle subclasses the core FileHandle interface, and the
    # Chirp client imports this package -- loading the handle lazily
    # keeps chirp -> cache -> core -> chirp from becoming an import cycle.
    if name == "CachedFileHandle":
        from repro.cache.handle import CachedFileHandle

        return CachedFileHandle
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
