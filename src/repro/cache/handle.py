"""A consultative caching wrapper around any abstraction handle.

:class:`CachedFileHandle` interposes between the application-facing
layers (:class:`~repro.adapter.fileobj.AdapterFile`, ``read_file`` loops)
and a real handle (normally a
:class:`~repro.core.cfs.ChirpFileHandle`).  Reads are served from the
shared :class:`~repro.cache.block.BlockCache` in aligned blocks; misses
are fetched as one contiguous ranged ``pread`` spanning every missing
block, so a cold multi-block read still costs one RPC.  Writes go
straight through to the server -- the handle adds *no* write buffering,
keeping the paper's ordering guarantee -- and then invalidate the
overlapped blocks plus the file's cached metadata.

Sequential readahead: the handle watches its own read offsets; once
``readahead_min_run`` consecutive sequential reads are seen, it keeps a
prefetch frontier ``readahead_blocks`` ahead of the reader, fetching each
window as a single ranged ``pread`` on the fan-out pool.  A foreground
miss that lands inside an in-flight window waits for that window rather
than duplicating the RPC.  Prefetch is advisory: any failure is counted
and swallowed, and per-file epochs (see the block cache) guarantee a
window fetched before a write can never be installed after it.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.cache.manager import CacheManager
from repro.chirp.protocol import ChirpStat
from repro.core.interface import FileHandle

__all__ = ["CachedFileHandle"]

#: Largest contiguous miss fetched as one RPC (bounds per-read memory).
_MAX_SPAN_BLOCKS = 32

#: How long a foreground read will wait on an in-flight prefetch window
#: before giving up and fetching for itself.
_INFLIGHT_WAIT = 60.0


class CachedFileHandle(FileHandle):
    """Block-cached, readahead-capable view of an inner handle.

    :param inner: the real handle; owns recovery and ordering.
    :param cache: the stack's shared :class:`CacheManager`.
    :param key: this file's cache key (``host:port:/server/path``).
    :param on_mutate: called after any write-path operation so the owning
        filesystem can invalidate *its* metadata entries (e.g. the stub
        filesystem's merged stat) that the shared key does not cover.
    """

    def __init__(
        self,
        inner: FileHandle,
        cache: CacheManager,
        key: str,
        on_mutate: Optional[Callable[[], None]] = None,
    ):
        self.inner = inner
        self.cache = cache
        self.key = key
        self._on_mutate = on_mutate
        self._bs = cache.policy.block_size
        self._det_lock = threading.Lock()
        self._expected: Optional[int] = None  # next sequential offset
        self._run = 0  # consecutive sequential reads
        self._ra_next: Optional[int] = None  # prefetch frontier (block index)
        self._ra_eof = False  # a prefetch already hit EOF; stop scheduling
        self._inflight: dict[int, tuple[int, object]] = {}  # start -> (count, future)

    # -- plumbing --------------------------------------------------------

    def _inner_pread(self, length: int, offset: int, deadline=None) -> bytes:
        if deadline is None:
            return self.inner.pread(length, offset)
        return self.inner.pread(length, offset, deadline=deadline)

    def _mutated(self) -> None:
        with self._det_lock:
            self._ra_eof = False
        if self._on_mutate is not None:
            self._on_mutate()

    # -- read path -------------------------------------------------------

    def pread(self, length: int, offset: int, deadline=None) -> bytes:
        if length <= 0 or offset < 0:
            return self._inner_pread(length, offset, deadline)
        bs = self._bs
        blocks = self.cache.blocks
        last_wanted = (offset + length - 1) // bs
        parts: list[bytes] = []
        got = 0
        while got < length:
            pos = offset + got
            index = pos // bs
            data = blocks.get(self.key, index)
            if data is None:
                data = self._wait_inflight(index)
            if data is None:
                data = self._fetch_span(index, last_wanted, deadline)
            start = pos - index * bs
            take = data[start : start + (length - got)]
            parts.append(take)
            got += len(take)
            if len(data) < bs:
                break  # EOF falls inside this block
            if not take:
                break  # defensive: no forward progress
        result = parts[0] if len(parts) == 1 else b"".join(parts)
        self._note_read(offset, len(result))
        return result

    def _fetch_span(self, first: int, last_wanted: int, deadline=None) -> bytes:
        """Fetch the contiguous run of missing blocks starting at ``first``
        with one ranged read; install the full blocks; return the first
        block's data (short at EOF)."""
        blocks = self.cache.blocks
        count = 1
        while (
            first + count <= last_wanted
            and count < _MAX_SPAN_BLOCKS
            and not blocks.peek(self.key, first + count)
            and self._find_inflight(first + count) is None
        ):
            count += 1
        epoch = blocks.epoch(self.key)
        data = self._inner_pread(count * self._bs, first * self._bs, deadline)
        for i in range(len(data) // self._bs):
            blocks.put(
                self.key, first + i, data[i * self._bs : (i + 1) * self._bs], epoch=epoch
            )
        return data[: self._bs]

    # -- readahead -------------------------------------------------------

    def _find_inflight(self, index: int):
        with self._det_lock:
            for start, (count, future) in self._inflight.items():
                if start <= index < start + count:
                    return future
        return None

    def _wait_inflight(self, index: int) -> Optional[bytes]:
        future = self._find_inflight(index)
        if future is None:
            return None
        self.cache.note_readahead_wait()
        try:
            future.result(timeout=_INFLIGHT_WAIT)
        except Exception:
            return None
        return self.cache.blocks.get(self.key, index)

    def _note_read(self, offset: int, nbytes: int) -> None:
        if not self.cache.readahead_enabled:
            return
        policy = self.cache.policy
        schedule: Optional[tuple[int, int]] = None
        with self._det_lock:
            if self._expected is not None and offset == self._expected:
                self._run += 1
            else:
                self._run = 1
                self._ra_next = None
                self._ra_eof = False
            self._expected = offset + nbytes
            if self._run < policy.readahead_min_run or self._ra_eof:
                return
            cursor = self._expected // self._bs  # block the next read needs
            if self._ra_next is None or self._ra_next < cursor:
                self._ra_next = cursor
            # Keep the frontier at most one window ahead of the reader;
            # beyond that the reader is being out-run, not helped.
            if self._ra_next - cursor < policy.readahead_blocks:
                schedule = (self._ra_next, policy.readahead_blocks)
                self._ra_next += policy.readahead_blocks
        if schedule is None:
            return
        start, count = schedule
        epoch = self.cache.blocks.epoch(self.key)
        future = self.cache.submit_readahead(
            lambda: self._prefetch(start, count, epoch)
        )
        if future is not None:
            with self._det_lock:
                self._inflight[start] = (count, future)
            future.add_done_callback(lambda _f: self._drop_inflight(start))

    def _drop_inflight(self, start: int) -> None:
        with self._det_lock:
            self._inflight.pop(start, None)

    def _prefetch(self, start: int, count: int, epoch: int) -> int:
        data = self._inner_pread(count * self._bs, start * self._bs)
        installed = 0
        for i in range(len(data) // self._bs):
            if self.cache.blocks.put(
                self.key, start + i, data[i * self._bs : (i + 1) * self._bs], epoch=epoch
            ):
                installed += 1
        if len(data) < count * self._bs:
            with self._det_lock:
                self._ra_eof = True
        return installed

    # -- write path (write-through + invalidate) -------------------------

    def pwrite(self, data: bytes, offset: int) -> int:
        n = self.inner.pwrite(data, offset)
        if n:
            self.cache.on_data_write(self.key, offset, n)
        self._mutated()
        return n

    def ftruncate(self, size: int) -> None:
        self.inner.ftruncate(size)
        self.cache.invalidate_data(self.key)
        self._mutated()

    # -- passthrough -----------------------------------------------------

    def fsync(self) -> None:
        self.inner.fsync()

    def fstat(self) -> ChirpStat:
        return self.inner.fstat()

    def close(self) -> None:
        # In-flight prefetch against a closed handle fails harmlessly
        # (counted as dropped); nothing to cancel explicitly.
        self.inner.close()
