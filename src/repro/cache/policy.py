"""Cache policy: how much consultative state a client may keep.

The paper's TSS "performs no buffering or caching": every ``stat`` and
``pread`` is a fresh RPC, which is what gives the shared DSFS its
Unix-like coherence.  That discipline is the *default* here too.  But the
paper's larger argument -- abstractions composed by unprivileged users on
top of raw servers -- invites exactly this kind of layered policy: a
cache at the abstraction layer that the user opts into when the workload
allows it (*A Generic Storage API* makes the same case for layering
caching and prefetch above a minimal storage interface).

Three modes:

``off``
    No caching anywhere.  Byte-for-byte the paper's semantics; the
    default everywhere.

``private``
    Full data + metadata caching with same-client write-through
    invalidation.  Correct for single-writer stacks -- a CFS scratch
    space or a DPFS, whose metadata is private by construction.  Another
    client's writes are NOT seen until this client's entries are
    invalidated or dropped; do not use on a shared DSFS.

``ttl``
    Bounded-staleness *metadata only* (stat/lstat/dirent, including
    negative entries).  Data reads stay uncached, so file contents keep
    the no-cache coherence guarantee; directory listings and attributes
    may be up to ``meta_ttl`` seconds old.  Safe for a shared DSFS where
    that staleness is acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CachePolicy", "CACHE_MODES"]

CACHE_MODES = ("off", "private", "ttl")


@dataclass(frozen=True)
class CachePolicy:
    """Tunables for one :class:`~repro.cache.manager.CacheManager`.

    :param mode: ``off`` | ``private`` | ``ttl`` (see module docstring).
    :param block_size: data cache granularity; reads are served and
        fetched in aligned blocks of this size.
    :param capacity_bytes: byte budget for the block cache (LRU beyond).
    :param meta_ttl: lifetime of positive metadata entries in ``ttl``
        mode; ``private`` entries live until invalidated.
    :param negative_ttl: lifetime of negative (ENOENT) entries in ``ttl``
        mode.
    :param meta_entries: entry-count bound on the metadata cache.
    :param readahead_blocks: prefetch window, in blocks, fetched ahead of
        a detected sequential reader (0 disables readahead).
    :param readahead_min_run: consecutive sequential reads required
        before prefetch starts.
    :param readahead_workers: threads in the prefetch fan-out pool.
    :param shards: lock shards in the block cache.
    """

    mode: str = "off"
    block_size: int = 64 * 1024
    capacity_bytes: int = 64 * 1024 * 1024
    meta_ttl: float = 2.0
    negative_ttl: float = 1.0
    meta_entries: int = 4096
    readahead_blocks: int = 8
    readahead_min_run: int = 2
    readahead_workers: int = 2
    shards: int = 8

    def __post_init__(self):
        if self.mode not in CACHE_MODES:
            raise ValueError(f"cache mode must be one of {CACHE_MODES}, got {self.mode!r}")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.capacity_bytes < self.block_size:
            raise ValueError("capacity_bytes must hold at least one block")
        if self.meta_ttl <= 0 or self.negative_ttl <= 0:
            raise ValueError("TTLs must be positive")
        if self.meta_entries < 1:
            raise ValueError("meta_entries must be >= 1")
        if self.readahead_blocks < 0:
            raise ValueError("readahead_blocks must be >= 0")
        if self.readahead_min_run < 1:
            raise ValueError("readahead_min_run must be >= 1")
        if self.readahead_workers < 1:
            raise ValueError("readahead_workers must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    # -- what the mode permits -----------------------------------------

    @property
    def data_enabled(self) -> bool:
        """May file *contents* be cached?"""
        return self.mode == "private"

    @property
    def meta_enabled(self) -> bool:
        """May stat/lstat/dirent results be cached?"""
        return self.mode in ("private", "ttl")

    @property
    def readahead_enabled(self) -> bool:
        return self.data_enabled and self.readahead_blocks > 0

    def meta_expiry(self) -> float | None:
        """TTL for positive metadata entries (None = until invalidated)."""
        return None if self.mode == "private" else self.meta_ttl

    def negative_expiry(self) -> float | None:
        """TTL for negative entries.

        Negative entries expire even in ``private`` mode: another client
        may create the file, and a bounded window beats indefinite ENOENT
        on a path this client never wrote (its *own* creates invalidate
        promptly).
        """
        return self.negative_ttl
