"""The cache subsystem's front door: one object per client stack.

A :class:`CacheManager` bundles the block cache, the metadata cache and
the readahead fan-out under one :class:`~repro.cache.policy.CachePolicy`,
and exposes a ``snapshot()`` so the whole subsystem appears as the
``cache`` section of ``MetricsRegistry.snapshot()`` (attach with
``metrics.attach_section("cache", manager)`` -- the registry holds it
weakly, so whoever wires the cache must keep a reference, as the adapter
does).

Invalidation helpers take the shared file-key convention
(``host:port:/server/path``) so the client, the abstractions and the
handles all hit the same entries.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.cache.block import BlockCache
from repro.cache.meta import MetaCache
from repro.cache.policy import CachePolicy
from repro.transport.fanout import FanoutPool
from repro.util.clock import Clock

__all__ = ["CacheManager", "file_key"]


def file_key(host: str, port: int, path: str) -> str:
    """The one key string naming a server file in every cache."""
    return f"{host}:{int(port)}:{path}"


class CacheManager:
    """Shared cache state for one adapter / pool / client stack.

    :param synchronous_readahead: run prefetch tasks inline instead of on
        the fan-out pool -- deterministic mode for tests.
    """

    def __init__(
        self,
        policy: Optional[CachePolicy] = None,
        clock: Optional[Clock] = None,
        synchronous_readahead: bool = False,
    ):
        self.policy = policy or CachePolicy()
        self.blocks = BlockCache(
            self.policy.capacity_bytes, self.policy.block_size, self.policy.shards
        )
        self.meta = MetaCache(self.policy.meta_entries, clock=clock)
        self.synchronous_readahead = synchronous_readahead
        self._fanout: Optional[FanoutPool] = None
        self._lock = threading.Lock()
        self._ra_windows = 0
        self._ra_blocks = 0
        self._ra_dropped = 0
        self._ra_waits = 0

    # -- mode shortcuts --------------------------------------------------

    @property
    def data_enabled(self) -> bool:
        return self.policy.data_enabled

    @property
    def meta_enabled(self) -> bool:
        return self.policy.meta_enabled

    @property
    def readahead_enabled(self) -> bool:
        return self.policy.readahead_enabled

    # -- invalidation helpers (shared key convention) --------------------

    def invalidate_data(self, key: str) -> None:
        """All blocks + metadata for one file (unlink/truncate/putfile)."""
        self.blocks.invalidate_file(key)
        self.meta.invalidate(key)

    def invalidate_meta(self, key: str) -> None:
        self.meta.invalidate(key)

    def invalidate_subtree(self, key: str) -> None:
        """A rename moved ``key``, which may be a directory: entries for
        descendants are keyed under the old prefix and would otherwise
        survive to poison a later reuse of the path.  Sweeps blocks and
        metadata for ``key`` and everything under ``key + "/"``."""
        self.blocks.invalidate_prefix(key)
        self.meta.invalidate_prefix(key)

    def invalidate_dirent(self, dir_key: str) -> None:
        """A directory changed membership: drop its listing *and* stat
        (its mtime/nlink moved too)."""
        self.meta.invalidate(dir_key)

    def on_data_write(self, key: str, offset: int, length: int) -> None:
        """Write-through bookkeeping: a write landed on the server; the
        overlapped blocks and the file's size/times are now stale."""
        self.blocks.invalidate_range(key, offset, length)
        self.meta.invalidate(key)

    # -- readahead plumbing ----------------------------------------------

    def submit_readahead(self, task: Callable[[], int]):
        """Run a prefetch task; returns its Future (None when inline).

        ``task`` returns the number of blocks it installed.  Failures are
        swallowed and counted -- prefetch is advisory, never load-bearing.
        """

        def guarded() -> int:
            try:
                installed = task()
            except Exception:
                with self._lock:
                    self._ra_dropped += 1
                return 0
            with self._lock:
                self._ra_windows += 1
                self._ra_blocks += installed
            return installed

        if self.synchronous_readahead:
            guarded()
            return None
        with self._lock:
            if self._fanout is None:
                self._fanout = FanoutPool(self.policy.readahead_workers)
            fanout = self._fanout
        return fanout.submit(guarded)

    def note_readahead_wait(self) -> None:
        """A foreground read blocked on an in-flight prefetch window."""
        with self._lock:
            self._ra_waits += 1

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            fanout, self._fanout = self._fanout, None
        if fanout is not None:
            fanout.shutdown()

    def __enter__(self) -> "CacheManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the operator read -----------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            readahead = {
                "windows": self._ra_windows,
                "blocks_prefetched": self._ra_blocks,
                "dropped": self._ra_dropped,
                "foreground_waits": self._ra_waits,
            }
        return {
            "mode": self.policy.mode,
            "block": self.blocks.snapshot(),
            "meta": self.meta.snapshot(),
            "readahead": readahead,
        }
