"""Typed query language for the metadata database.

A :class:`Query` is a conjunction of :class:`Condition` terms; each term
compares one record field against a literal.  Supported operators cover
what GEMS and the DSDB examples need: equality, ordering, substring, and
shell-glob matching.  Queries serialize to plain JSON lists so they travel
over the wire unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Iterable

__all__ = ["Condition", "Query", "OPERATORS"]


def _cmp_guard(fn):
    """Ordered comparisons on mismatched types are False, not an error."""

    def inner(a, b):
        try:
            return fn(a, b)
        except TypeError:
            return False

    return inner


OPERATORS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": _cmp_guard(lambda a, b: a < b),
    "le": _cmp_guard(lambda a, b: a <= b),
    "gt": _cmp_guard(lambda a, b: a > b),
    "ge": _cmp_guard(lambda a, b: a >= b),
    "contains": lambda a, b: isinstance(a, (str, list, tuple, dict)) and b in a,
    "glob": lambda a, b: isinstance(a, str) and fnmatchcase(a, str(b)),
    "exists": lambda a, b: a is not None,
}


@dataclass(frozen=True)
class Condition:
    """One comparison: ``field <op> value``."""

    field: str
    op: str
    value: Any = None

    def __post_init__(self):
        if self.op not in OPERATORS:
            raise ValueError(f"unknown operator {self.op!r}")

    def matches(self, record: dict) -> bool:
        present = self.field in record
        if self.op == "exists":
            return present if self.value in (None, True) else not present
        if not present:
            return False
        return OPERATORS[self.op](record[self.field], self.value)

    def to_list(self) -> list:
        return [self.field, self.op, self.value]

    @classmethod
    def from_list(cls, items: Iterable) -> "Condition":
        field, op, value = list(items)
        return cls(field, op, value)


@dataclass(frozen=True)
class Query:
    """A conjunction of conditions; an empty query matches everything."""

    conditions: tuple[Condition, ...] = ()

    @classmethod
    def where(cls, **equalities: Any) -> "Query":
        """Shorthand for pure-equality queries: ``Query.where(kind='traj')``."""
        return cls(tuple(Condition(k, "eq", v) for k, v in equalities.items()))

    def and_(self, field: str, op: str, value: Any = None) -> "Query":
        return Query(self.conditions + (Condition(field, op, value),))

    def matches(self, record: dict) -> bool:
        return all(c.matches(record) for c in self.conditions)

    def to_json_obj(self) -> list:
        return [c.to_list() for c in self.conditions]

    @classmethod
    def from_json_obj(cls, obj: Iterable) -> "Query":
        return cls(tuple(Condition.from_list(item) for item in obj))

    def equality_terms(self) -> dict[str, Any]:
        """Fields compared by equality (used for index selection)."""
        return {c.field: c.value for c in self.conditions if c.op == "eq"}
