"""TCP front-end for the metadata database.

Reuses the Chirp authentication handshake, then serves one JSON command
per line::

    C: dbcmd <json>
    S: 0 <json-result>      |  <negative status> <message>

Commands are JSON objects: ``{"op": "insert", "record": {...}}`` etc.
Write access can be restricted to a subject allow-list, matching the
paper's GEMS deployments where "one research group may establish a file
server allowing all of its members to read and write data, while allowing
external users only to read."
"""

from __future__ import annotations

import json
import logging
import socket
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.auth.methods import AuthContext, AuthFailed, authenticate_server
from repro.auth.subjects import subject_matches
from repro.db.engine import MetadataDB
from repro.db.query import Query
from repro.util.errors import DisconnectedError, StatusCode
from repro.util.wire import LineStream

__all__ = ["DatabaseServer", "DatabaseConfig"]

log = logging.getLogger("repro.db.server")

_WRITE_OPS = {"insert", "update", "delete"}


@dataclass
class DatabaseConfig:
    host: str = "127.0.0.1"
    port: int = 0
    auth: AuthContext = field(default_factory=AuthContext)
    #: subject patterns allowed to write; empty means "anyone authenticated".
    writers: tuple[str, ...] = ()
    #: subject patterns allowed to read; empty means "anyone authenticated".
    readers: tuple[str, ...] = ()


class DatabaseServer:
    """A running metadata-database server."""

    def __init__(self, db: MetadataDB, config: DatabaseConfig | None = None):
        self.db = db
        self.config = config or DatabaseConfig()
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._conn_socks: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._stop = threading.Event()
        self.address: tuple[str, int] = (self.config.host, self.config.port)

    def start(self) -> "DatabaseServer":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(64)
        sock.settimeout(0.2)  # prompt stop(): see chirp server
        self._listener = sock
        self.address = sock.getsockname()[:2]
        t = threading.Thread(target=self._accept_loop, name="db-accept", daemon=True)
        t.start()
        self._threads.append(t)
        log.info("database server listening on %s", self.address)
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._conn_lock:
            socks = list(self._conn_socks)
        for s in socks:
            try:
                s.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                s.close()
            except OSError:
                pass
        for t in self._threads:
            t.join(timeout=5)
        self._threads.clear()

    def __enter__(self) -> "DatabaseServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(None)
            with self._conn_lock:
                self._conn_socks.add(conn)
            t = threading.Thread(
                target=self._serve, args=(conn, addr), daemon=True
            )
            t.start()

    def _allowed(self, subject: str, op: str) -> bool:
        patterns = self.config.writers if op in _WRITE_OPS else self.config.readers
        if not patterns:
            return True
        return any(subject_matches(p, subject) for p in patterns)

    def _serve(self, sock: socket.socket, addr) -> None:
        stream = LineStream(sock)
        try:
            subject = authenticate_server(stream, self.config.auth, addr[0])
            while not self._stop.is_set():
                tokens = stream.read_tokens()
                if not tokens or tokens[0] != "dbcmd" or len(tokens) != 2:
                    stream.write_line(int(StatusCode.INVALID_REQUEST), "expected dbcmd")
                    continue
                self._execute(stream, subject, tokens[1])
        except (DisconnectedError, AuthFailed):
            pass
        except Exception:  # pragma: no cover - diagnostic guard
            log.exception("db connection handler crashed")
        finally:
            stream.close()
            with self._conn_lock:
                self._conn_socks.discard(sock)

    def _execute(self, stream: LineStream, subject: str, raw: str) -> None:
        try:
            cmd = json.loads(raw)
            op = cmd["op"]
        except (ValueError, KeyError, TypeError):
            stream.write_line(int(StatusCode.INVALID_REQUEST), "malformed command")
            return
        if not self._allowed(subject, op):
            stream.write_line(
                int(StatusCode.NOT_AUTHORIZED), f"{subject} may not {op}"
            )
            return
        try:
            result = self._apply(op, cmd)
        except KeyError as exc:
            stream.write_line(int(StatusCode.DOESNT_EXIST), str(exc))
            return
        except (ValueError, TypeError) as exc:
            stream.write_line(int(StatusCode.INVALID_REQUEST), str(exc))
            return
        stream.write_line(0, json.dumps(result))

    def _apply(self, op: str, cmd: dict):
        if op == "insert":
            return {"id": self.db.insert(cmd["record"])}
        if op == "get":
            return {"record": self.db.get(cmd["id"])}
        if op == "update":
            return {"record": self.db.update(cmd["id"], cmd["fields"])}
        if op == "delete":
            return {"deleted": self.db.delete(cmd["id"])}
        if op == "query":
            q = Query.from_json_obj(cmd.get("query", []))
            return {"records": self.db.query(q, cmd.get("limit"))}
        if op == "count":
            q = Query.from_json_obj(cmd.get("query", []))
            return {"count": self.db.count(q)}
        raise ValueError(f"unknown op {op!r}")


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.db.server``: run a standalone database server.

    Used by the process-chaos harness (and anyone wanting the metadata
    database as its own daemon): the log under ``--path`` makes state
    survive SIGKILL, so a restarted process resumes where the dead one
    stopped.
    """
    import argparse

    from repro.util.signals import GracefulSignals

    parser = argparse.ArgumentParser(
        prog="tss-db", description="Run a TSS metadata database server."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--path", default=None,
        help="directory for the durable log (default: in-memory only)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    db = MetadataDB(args.path)
    server = DatabaseServer(db, DatabaseConfig(host=args.host, port=args.port))
    server.start()
    print(f"tss-db: listening on {server.address[0]}:{server.address[1]}", flush=True)
    signals = GracefulSignals().install()
    signals.wait()
    server.stop()
    db.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
