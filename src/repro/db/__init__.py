"""A small indexed metadata database: the substrate for DSDB and GEMS.

The paper's distributed shared database needs "a database server ... to
store file metadata as well as pointers to files", queried by attribute to
yield the names of matching files.  This package provides exactly that and
no more: a durable record store with secondary indexes
(:mod:`repro.db.engine`), a simple typed query language
(:mod:`repro.db.query`), and a TCP server/client pair reusing the Chirp
authentication handshake (:mod:`repro.db.server`, :mod:`repro.db.client`).
"""

from repro.db.engine import MetadataDB, Record
from repro.db.query import Condition, Query
from repro.db.server import DatabaseServer
from repro.db.client import DatabaseClient

__all__ = [
    "MetadataDB",
    "Record",
    "Condition",
    "Query",
    "DatabaseServer",
    "DatabaseClient",
]
