"""Client for the metadata-database server."""

from __future__ import annotations

import json
import socket
import threading
from typing import Optional

from repro.auth.methods import ClientCredentials, authenticate_client
from repro.db.query import Query
from repro.util.errors import DisconnectedError, error_from_status
from repro.util.wire import LineStream

__all__ = ["DatabaseClient"]


class DatabaseClient:
    """A connection to one :class:`~repro.db.server.DatabaseServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        credentials: Optional[ClientCredentials] = None,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.credentials = credentials or ClientCredentials()
        self.timeout = timeout
        self._lock = threading.RLock()
        self._stream: Optional[LineStream] = None
        self.subject: Optional[str] = None
        self.connect()

    def connect(self) -> None:
        with self._lock:
            self.close()
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                raise DisconnectedError(
                    f"connect to db {self.host}:{self.port} failed: {exc}"
                ) from exc
            stream = LineStream(sock)
            try:
                self.subject = authenticate_client(stream, self.credentials)
            except Exception:
                stream.close()
                raise
            self._stream = stream

    def close(self) -> None:
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None

    def __enter__(self) -> "DatabaseClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, cmd: dict) -> dict:
        with self._lock:
            if self._stream is None:
                raise DisconnectedError("db client is not connected")
            try:
                self._stream.write_line("dbcmd", json.dumps(cmd))
                reply = self._stream.read_tokens()
            except DisconnectedError:
                self.close()
                raise
            status = int(reply[0])
            if status < 0:
                raise error_from_status(status, reply[1] if len(reply) > 1 else "")
            return json.loads(reply[1])

    # -- typed operations -------------------------------------------------

    def insert(self, record: dict) -> str:
        return self._call({"op": "insert", "record": record})["id"]

    def get(self, rid: str) -> Optional[dict]:
        return self._call({"op": "get", "id": rid})["record"]

    def update(self, rid: str, fields: dict) -> dict:
        return self._call({"op": "update", "id": rid, "fields": fields})["record"]

    def delete(self, rid: str) -> bool:
        return self._call({"op": "delete", "id": rid})["deleted"]

    def query(self, query: Query, limit: Optional[int] = None) -> list[dict]:
        cmd = {"op": "query", "query": query.to_json_obj()}
        if limit is not None:
            cmd["limit"] = limit
        return self._call(cmd)["records"]

    def count(self, query: Query) -> int:
        return self._call({"op": "count", "query": query.to_json_obj()})["count"]
