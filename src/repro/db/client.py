"""Client for the metadata-database server.

Rides the same transport layer as the file-server client: a
:class:`~repro.transport.endpoint.Endpoint` owns the sockets,
reconnect bookkeeping and per-verb metrics (``db.insert``,
``db.query``, ...), and this class supplies the command vocabulary.
Database exchanges are stateless (no fds), so every call checks a
connection out for exactly one round trip and concurrent callers
overlap up to the endpoint's connection cap.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.auth.methods import ClientCredentials
from repro.db.query import Query
from repro.transport.endpoint import Endpoint
from repro.transport.metrics import MetricsRegistry

__all__ = ["DatabaseClient"]


class DatabaseClient:
    """A session with one :class:`~repro.db.server.DatabaseServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        credentials: Optional[ClientCredentials] = None,
        timeout: float = 30.0,
        endpoint: Optional[Endpoint] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if endpoint is None:
            kwargs = {}
            if metrics is not None:
                kwargs["metrics"] = metrics
            endpoint = Endpoint(
                host, int(port), credentials=credentials, timeout=timeout, **kwargs
            )
        self.endpoint = endpoint
        self.host = endpoint.host
        self.port = endpoint.port
        self.credentials = endpoint.credentials
        self.timeout = endpoint.timeout
        self.connect()

    @property
    def subject(self) -> Optional[str]:
        return self.endpoint.subject

    @property
    def is_connected(self) -> bool:
        return self.endpoint.is_connected

    @property
    def _stream(self):
        """One live connection's raw stream (protocol tests poke the wire)."""
        return self.endpoint.raw_stream()

    def connect(self) -> None:
        self.endpoint.connect()

    def close(self) -> None:
        self.endpoint.close()

    def __enter__(self) -> "DatabaseClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, cmd: dict) -> dict:
        conn = self.endpoint.checkout()
        try:
            reply = conn.rpc(
                "dbcmd", json.dumps(cmd), metric=f"db.{cmd.get('op', 'cmd')}"
            )
        finally:
            self.endpoint.checkin(conn)
        return json.loads(reply[1])

    # -- typed operations -------------------------------------------------

    def insert(self, record: dict) -> str:
        return self._call({"op": "insert", "record": record})["id"]

    def get(self, rid: str) -> Optional[dict]:
        return self._call({"op": "get", "id": rid})["record"]

    def update(self, rid: str, fields: dict) -> dict:
        return self._call({"op": "update", "id": rid, "fields": fields})["record"]

    def delete(self, rid: str) -> bool:
        return self._call({"op": "delete", "id": rid})["deleted"]

    def query(self, query: Query, limit: Optional[int] = None) -> list[dict]:
        cmd = {"op": "query", "query": query.to_json_obj()}
        if limit is not None:
            cmd["limit"] = limit
        return self._call(cmd)["records"]

    def count(self, query: Query) -> int:
        return self._call({"op": "count", "query": query.to_json_obj()})["count"]
