"""Durable record store with secondary indexes.

Storage layout: one append-only JSONL log (``db.log``) replayed at open.
Each log line is ``["put", record]`` or ``["del", record_id]``.  When the
log accumulates enough dead weight it is compacted by rewriting the live
set to a fresh log and atomically renaming it into place -- the same
plain-file durability discipline the rest of the TSS uses.

Records are dicts with a string ``id`` (assigned at insert when absent).
Secondary hash indexes are maintained for declared fields; equality terms
in a query use the best available index, remaining terms filter.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from typing import Any, Iterator, Optional

from repro.db.query import Query

__all__ = ["Record", "MetadataDB"]

Record = dict  # alias documenting intent: records are plain JSON objects

_COMPACT_MIN_OPS = 1024  # do not bother compacting tiny logs


class MetadataDB:
    """An embedded metadata database.

    Thread-safe; every mutation is logged and flushed before it is
    acknowledged, so a crash loses at most the in-flight operation.

    :param path: directory for the log (created if missing); ``None``
        keeps the database purely in memory (handy in simulations).
    :param indexes: record fields to maintain secondary indexes on.
    """

    def __init__(self, path: Optional[str], indexes: tuple[str, ...] = ()):
        self.path = path
        self.index_fields = tuple(indexes)
        self._records: dict[str, Record] = {}
        self._indexes: dict[str, dict[Any, set[str]]] = {
            f: {} for f in self.index_fields
        }
        self._lock = threading.RLock()
        self._log = None
        self._ops_since_compact = 0
        if path is not None:
            os.makedirs(path, exist_ok=True)
            self._log_path = os.path.join(path, "db.log")
            self._replay()
            self._log = open(self._log_path, "a", encoding="utf-8")

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._log is not None:
                self._log.close()
                self._log = None

    def __enter__(self) -> "MetadataDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- durability -------------------------------------------------------

    def _replay(self) -> None:
        try:
            f = open(self._log_path, "r", encoding="utf-8")
        except FileNotFoundError:
            return
        with f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    op, payload = json.loads(line)
                except (ValueError, TypeError):
                    continue  # torn final write after a crash: ignore
                if op == "put":
                    self._install(payload)
                elif op == "del":
                    self._evict(payload)

    def _append(self, op: str, payload) -> None:
        if self._log is None:
            return
        self._log.write(json.dumps([op, payload], sort_keys=True) + "\n")
        self._log.flush()
        os.fsync(self._log.fileno())
        self._ops_since_compact += 1
        if (
            self._ops_since_compact >= _COMPACT_MIN_OPS
            and self._ops_since_compact > 4 * len(self._records)
        ):
            self._compact()

    def _compact(self) -> None:
        assert self._log is not None
        tmp = self._log_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            for record in self._records.values():
                f.write(json.dumps(["put", record], sort_keys=True) + "\n")
            f.flush()
            os.fsync(f.fileno())
        self._log.close()
        os.replace(tmp, self._log_path)
        self._log = open(self._log_path, "a", encoding="utf-8")
        self._ops_since_compact = 0

    # -- index maintenance ----------------------------------------------

    def _install(self, record: Record) -> None:
        rid = record["id"]
        self._evict(rid)
        self._records[rid] = record
        for field in self.index_fields:
            value = record.get(field)
            if isinstance(value, (str, int, float, bool)) or value is None:
                self._indexes[field].setdefault(value, set()).add(rid)

    def _evict(self, rid: str) -> None:
        old = self._records.pop(rid, None)
        if old is None:
            return
        for field in self.index_fields:
            value = old.get(field)
            bucket = self._indexes[field].get(value)
            if bucket is not None:
                bucket.discard(rid)
                if not bucket:
                    del self._indexes[field][value]

    # -- public operations -------------------------------------------------

    def insert(self, record: Record) -> str:
        """Insert (or overwrite) a record; returns its id."""
        with self._lock:
            record = dict(record)
            rid = record.setdefault("id", uuid.uuid4().hex)
            if not isinstance(rid, str) or not rid:
                raise ValueError("record id must be a non-empty string")
            self._install(record)
            self._append("put", record)
            return rid

    def get(self, rid: str) -> Optional[Record]:
        with self._lock:
            rec = self._records.get(rid)
            return dict(rec) if rec is not None else None

    def update(self, rid: str, fields: dict) -> Record:
        """Merge fields into an existing record; raises KeyError if absent."""
        with self._lock:
            rec = self._records.get(rid)
            if rec is None:
                raise KeyError(rid)
            merged = dict(rec)
            merged.update(fields)
            merged["id"] = rid
            self._install(merged)
            self._append("put", merged)
            return dict(merged)

    def delete(self, rid: str) -> bool:
        with self._lock:
            if rid not in self._records:
                return False
            self._evict(rid)
            self._append("del", rid)
            return True

    def query(self, query: Query, limit: Optional[int] = None) -> list[Record]:
        """All records matching the query (copy-safe)."""
        with self._lock:
            out = []
            for rec in self._candidates(query):
                if query.matches(rec):
                    out.append(dict(rec))
                    if limit is not None and len(out) >= limit:
                        break
            return out

    def count(self, query: Query) -> int:
        with self._lock:
            return sum(1 for rec in self._candidates(query) if query.matches(rec))

    def all_records(self) -> list[Record]:
        with self._lock:
            return [dict(r) for r in self._records.values()]

    def _candidates(self, query: Query) -> Iterator[Record]:
        """Pick the most selective available index for equality terms."""
        eq = query.equality_terms()
        best: Optional[set[str]] = None
        for field, value in eq.items():
            if field == "id":
                rec = self._records.get(value)
                yield from ([rec] if rec is not None else [])
                return
            if field in self._indexes:
                bucket = self._indexes[field].get(value, set())
                if best is None or len(bucket) < len(best):
                    best = bucket
        if best is not None:
            for rid in list(best):
                rec = self._records.get(rid)
                if rec is not None:
                    yield rec
            return
        yield from list(self._records.values())
