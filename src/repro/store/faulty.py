"""FaultyStore: seeded, scriptable disk-fault injection under any store.

PR 2's :class:`~repro.transport.faults.FaultyListener` gave the test
suite a reproducible model of *network* failure; this module is its
twin for the disk.  A :class:`FaultyStore` decorates any
:class:`~repro.store.interface.BlobStore` and injects faults on the
data-path handle operations per a :class:`DiskFaultPlan`:

- **eio** -- the operation raises an I/O error (surfaced as
  :class:`~repro.util.errors.UnknownError`, the same status a kernel
  ``EIO`` maps to on the wire);
- **enospc** -- a write lands *partially* and then raises
  :class:`~repro.util.errors.NoSpaceError`, modelling a disk filling up
  mid-operation;
- **fsync_fail** -- the flush raises after the writes "succeeded", the
  classic lying-disk failure mode;
- **short_write** -- only a prefix is written and the honest short
  count is returned (POSIX permits this; almost nobody handles it);
- **torn_write** -- only a prefix is written but the *full* length is
  reported: silent data loss;
- **bitrot** -- a read returns the stored bytes with one byte flipped
  and no error at all: silent corruption in flight;
- **latency** -- a per-operation delay from an injectable clock.

Faults are drawn from one ``random.Random(seed)`` owned by the plan and
every injection is appended to an event log, so a rerun against the
same seed and the same (sequential) workload replays the identical
fault sequence -- the same reproducibility contract as the transport
proxy.  :meth:`FaultyStore.rot_at_rest` additionally corrupts bytes
*at rest* inside the inner store (local file, memory node, or sealed
CAS object), which is the corruption class ``tss store scrub`` and the
checksum-verified read path exist to catch.

With an empty plan the decorator is semantically transparent: the
store-conformance battery runs over ``FaultyStore(plan=empty)`` around
all three stores.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass
from typing import Optional

from repro.chirp.protocol import ChirpStat, OpenFlags
from repro.store.interface import BlobHandle, BlobStore
from repro.util.clock import Clock, MonotonicClock
from repro.util.errors import InvalidRequestError, NoSpaceError, UnknownError

__all__ = [
    "DiskFaultScript",
    "DiskFaultPlan",
    "FaultyStore",
    "EIO",
    "ENOSPC",
    "FSYNC_FAIL",
    "SHORT_WRITE",
    "TORN_WRITE",
    "BITROT",
]

EIO = "eio"
ENOSPC = "enospc"
FSYNC_FAIL = "fsync_fail"
SHORT_WRITE = "short_write"
TORN_WRITE = "torn_write"
BITROT = "bitrot"
#: latency-only injection (the action slot when only a delay is wanted)
DELAY = "delay"

_ACTIONS = (EIO, ENOSPC, FSYNC_FAIL, SHORT_WRITE, TORN_WRITE, BITROT, DELAY)

#: the handle operations a script's ``op`` may target ("*" = any)
FAULT_OPS = ("pread", "pwrite", "fsync", "ftruncate")

#: which actions make sense on which operation
_OP_ACTIONS = {
    "pread": (EIO, BITROT, DELAY),
    "pwrite": (EIO, ENOSPC, SHORT_WRITE, TORN_WRITE, DELAY),
    "fsync": (EIO, FSYNC_FAIL, DELAY),
    "ftruncate": (EIO, DELAY),
}


@dataclass
class DiskFaultScript:
    """One injected disk fault.

    :ivar op: the handle operation to fire on (``pread``, ``pwrite``,
        ``fsync``, ``ftruncate``, or ``*`` for the next eligible op).
    :ivar action: what to inject (module constants above).
    :ivar latency: seconds to sleep before the operation proceeds (or
        fails); composes with any action, including ``delay`` alone.
    :ivar path: substring the virtual path must contain for the script
        to match ("" matches every path).
    :ivar note: free-form tag copied into the event log.
    """

    op: str = "*"
    action: str = EIO
    latency: float = 0.0
    path: str = ""
    note: str = ""

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown disk fault action {self.action!r}")
        if self.op != "*" and self.op not in FAULT_OPS:
            raise ValueError(f"unknown fault op {self.op!r}")

    def matches(self, op: str, vpath: str) -> bool:
        if self.op != "*" and self.op != op:
            return False
        if self.action != DELAY and self.action not in _OP_ACTIONS[op]:
            return False
        return self.path in (vpath or "")

    def describe(self) -> str:
        parts = [f"{self.op}:{self.action}"]
        if self.latency:
            parts.append(f"latency={self.latency:g}")
        if self.path:
            parts.append(f"path~{self.path}")
        if self.note:
            parts.append(self.note)
        return ",".join(parts)


@dataclass
class DiskFaultPlan:
    """The fault schedule for one :class:`FaultyStore`.

    Explicit mode: queue :class:`DiskFaultScript`\\ s with
    :meth:`script`; each eligible operation consumes the first queued
    script that matches it.  Probabilistic mode (:meth:`chaos`): every
    eligible operation rolls the seeded RNG against per-action rates.
    All randomness -- chaos rolls *and* bit-flip positions -- comes from
    the one ``random.Random(seed)``, and every injection is recorded in
    the event log, so the same seed over the same sequential workload
    replays byte-identically.

    ``log_paths`` controls whether virtual paths appear in event-log
    entries.  Soak tests that place files at generated (run-unique)
    paths turn it off so logs stay comparable across reruns; at-rest rot
    is always logged by content digest for the same reason.
    """

    seed: Optional[int] = None
    rng: random.Random = None  # type: ignore[assignment]
    log_paths: bool = True

    def __post_init__(self):
        if self.rng is None:
            self.rng = random.Random(self.seed)
        self._scripts: list[DiskFaultScript] = []
        self._chaos: Optional[dict] = None
        self._lock = threading.Lock()
        self._events: list[str] = []
        self.injected = 0

    def script(self, fault: DiskFaultScript) -> "DiskFaultPlan":
        """Queue a script; eligible ops consume matching scripts in order."""
        with self._lock:
            self._scripts.append(fault)
        return self

    @classmethod
    def chaos(
        cls,
        seed: int,
        *,
        eio_rate: float = 0.0,
        enospc_rate: float = 0.0,
        fsync_fail_rate: float = 0.0,
        short_write_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        bitrot_rate: float = 0.0,
        latency: tuple[float, float] = (0.0, 0.0),
        log_paths: bool = True,
    ) -> "DiskFaultPlan":
        """A seeded probabilistic mix; rates are per eligible operation."""
        plan = cls(seed=seed, log_paths=log_paths)
        plan._chaos = {
            EIO: eio_rate,
            ENOSPC: enospc_rate,
            FSYNC_FAIL: fsync_fail_rate,
            SHORT_WRITE: short_write_rate,
            TORN_WRITE: torn_write_rate,
            BITROT: bitrot_rate,
            "latency": latency,
        }
        return plan

    # -- the draw (called by _FaultyHandle on every eligible op) --------

    def next_action(self, op: str, vpath: str) -> Optional[DiskFaultScript]:
        """The fault (if any) for this operation; consumes scripts/RNG."""
        with self._lock:
            for i, fault in enumerate(self._scripts):
                if fault.matches(op, vpath):
                    del self._scripts[i]
                    self._record_locked(op, vpath, fault)
                    return fault
            if self._chaos is None:
                return None
            fault = self._draw_locked(op)
            if fault is not None:
                self._record_locked(op, vpath, fault)
            return fault

    def _draw_locked(self, op: str) -> Optional[DiskFaultScript]:
        cfg = self._chaos
        lat_lo, lat_hi = cfg["latency"]
        latency = self.rng.uniform(lat_lo, lat_hi) if lat_hi > 0 else 0.0
        roll = self.rng.random()
        threshold = 0.0
        for action in (EIO, ENOSPC, FSYNC_FAIL, SHORT_WRITE, TORN_WRITE, BITROT):
            if action not in _OP_ACTIONS[op]:
                continue
            threshold += cfg[action]
            if roll < threshold:
                return DiskFaultScript(
                    op=op, action=action, latency=latency, note="chaos"
                )
        if latency > 0:
            return DiskFaultScript(op=op, action=DELAY, latency=latency, note="chaos")
        return None

    def flip_index(self, size: int) -> int:
        """A seeded byte position for a bit flip (consumes the RNG)."""
        with self._lock:
            return self.rng.randrange(size) if size > 0 else 0

    # -- the reproducibility witness ------------------------------------

    def _record_locked(self, op: str, vpath: str, fault: DiskFaultScript) -> None:
        self.injected += 1
        where = f" {vpath}" if self.log_paths and vpath else ""
        self._events.append(f"{op}{where}: {fault.describe()}")

    def record(self, event: str) -> None:
        """Append a free-form entry (used by at-rest rot injection)."""
        with self._lock:
            self.injected += 1
            self._events.append(event)

    def event_log(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._events)


class _FaultyHandle(BlobHandle):
    """Wraps an inner handle, consulting the plan on every data-path op."""

    def __init__(self, store: "FaultyStore", inner: BlobHandle, vpath: str):
        self._store = store
        self._inner = inner
        self._vpath = vpath

    def _consult(self, op: str) -> Optional[DiskFaultScript]:
        fault = self._store.plan.next_action(op, self._vpath)
        if fault is not None and fault.latency > 0:
            self._store.clock.sleep(fault.latency)
        return fault

    def pread(self, length: int, offset: int) -> bytes:
        fault = self._consult("pread")
        if fault is not None and fault.action == EIO:
            raise UnknownError(f"{self._vpath}: injected read I/O error")
        data = self._inner.pread(length, offset)
        if fault is not None and fault.action == BITROT and data:
            idx = self._store.plan.flip_index(len(data))
            rotted = bytearray(data)
            rotted[idx] ^= 0xFF
            return bytes(rotted)
        return data

    def pwrite(self, data: bytes, offset: int) -> int:
        fault = self._consult("pwrite")
        if fault is None or not data:
            return self._inner.pwrite(data, offset)
        if fault.action == EIO:
            raise UnknownError(f"{self._vpath}: injected write I/O error")
        if fault.action == ENOSPC:
            # The disk fills mid-write: a prefix lands, then the error.
            self._inner.pwrite(data[: len(data) // 2], offset)
            raise NoSpaceError(f"{self._vpath}: injected disk full")
        if fault.action in (SHORT_WRITE, TORN_WRITE):
            prefix = max(1, len(data) // 2)
            written = self._inner.pwrite(data[:prefix], offset)
            # short_write is honest about the count; torn_write lies.
            return written if fault.action == SHORT_WRITE else len(data)
        return self._inner.pwrite(data, offset)

    def fsync(self) -> None:
        fault = self._consult("fsync")
        if fault is not None and fault.action in (EIO, FSYNC_FAIL):
            raise UnknownError(f"{self._vpath}: injected fsync failure")
        self._inner.fsync()

    def fstat(self) -> ChirpStat:
        return self._inner.fstat()

    def ftruncate(self, size: int) -> None:
        fault = self._consult("ftruncate")
        if fault is not None and fault.action == EIO:
            raise UnknownError(f"{self._vpath}: injected truncate I/O error")
        self._inner.ftruncate(size)

    def close(self) -> None:
        self._inner.close()


class FaultyStore(BlobStore):
    """A fault-injecting decorator over any :class:`BlobStore`.

    Namespace and capacity operations delegate untouched; handles come
    back wrapped in :class:`_FaultyHandle` so the plan sees every
    data-path operation.  ``kind`` and ``supports_cas`` mirror the inner
    store: the decorator is invisible to catalogs, metrics, and clients.
    """

    def __init__(
        self,
        inner: BlobStore,
        plan: Optional[DiskFaultPlan] = None,
        clock: Optional[Clock] = None,
    ):
        super().__init__()
        self.inner = inner
        self.plan = plan or DiskFaultPlan()
        self.clock = clock or MonotonicClock()
        # Instance attributes shadow the class defaults: report the
        # inner store's identity, not "faulty".
        self.kind = inner.kind
        self.supports_cas = inner.supports_cas

    @property
    def root(self) -> str:
        return getattr(self.inner, "root", "")

    def __getattr__(self, name: str):
        # Store-specific extras (scrub, refcount, tracking_usage, ...)
        # fall through to the inner store.
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    # -- file I/O -------------------------------------------------------

    def open(self, vpath: str, flags: OpenFlags, mode: int) -> BlobHandle:
        return _FaultyHandle(self, self.inner.open(vpath, flags, mode), vpath)

    # -- namespace (transparent) ----------------------------------------

    def stat(self, vpath: str) -> ChirpStat:
        return self.inner.stat(vpath)

    def lstat(self, vpath: str) -> ChirpStat:
        return self.inner.lstat(vpath)

    def exists(self, vpath: str) -> bool:
        return self.inner.exists(vpath)

    def isdir(self, vpath: str) -> bool:
        return self.inner.isdir(vpath)

    def listdir(self, vpath: str) -> list[str]:
        return self.inner.listdir(vpath)

    def unlink(self, vpath: str) -> None:
        self.inner.unlink(vpath)

    def rename(self, vold: str, vnew: str) -> None:
        self.inner.rename(vold, vnew)

    def mkdir(self, vpath: str, mode: int) -> None:
        self.inner.mkdir(vpath, mode)

    def rmdir(self, vpath: str) -> None:
        self.inner.rmdir(vpath)

    def truncate(self, vpath: str, size: int) -> None:
        self.inner.truncate(vpath, size)

    def utime(self, vpath: str, atime: int, mtime: int) -> None:
        self.inner.utime(vpath, atime, mtime)

    def checksum(self, vpath: str) -> str:
        return self.inner.checksum(vpath)

    # -- capacity / CAS surface / lifecycle -----------------------------

    def used_bytes(self) -> int:
        return self.inner.used_bytes()

    def capacity(self) -> tuple[int, int]:
        return self.inner.capacity()

    def reconcile_usage(self) -> int:
        return self.inner.reconcile_usage()

    def janitor(self) -> int:
        # Explicit: the BlobStore default (0) would otherwise shadow the
        # wrapped store's sweep, since __getattr__ only fires for
        # attributes the class does not define.
        return self.inner.janitor()

    def lookup_key(self, key: str) -> bool:
        return self.inner.lookup_key(key)

    def link_key(self, vpath: str, key: str, mode: int = 0o644) -> int:
        return self.inner.link_key(vpath, key, mode)

    def key_of(self, vpath: str) -> str:
        return self.inner.key_of(vpath)

    def snapshot(self) -> dict:
        snap = self.inner.snapshot()
        snap["faults_injected"] = self.plan.injected
        return snap

    def close(self) -> None:
        self.inner.close()

    # -- at-rest corruption ---------------------------------------------

    def rot_at_rest(self, vpath: str) -> str:
        """Flip one stored byte beneath ``vpath`` without any error.

        This is bit-rot the inner store cannot see happen: the flip goes
        straight to the backing bytes (local file, memory node, or
        sealed CAS object), bypassing every handle.  Returns the content
        digest the path held *before* the rot, and logs the injection by
        that digest (not the path), so seeded soaks over generated paths
        still produce comparable event logs.
        """
        digest = self.inner.checksum(vpath)
        inner = self.inner
        if inner.supports_cas and hasattr(inner, "_object_path"):
            obj = inner._object_path(inner.key_of(vpath))
            idx = self._flip_file(obj, sealed=True)
        elif hasattr(inner, "_real"):
            idx = self._flip_file(inner._real(vpath))
        elif hasattr(inner, "_node"):
            with inner._lock:
                node = inner._node(vpath)
                data = getattr(node, "data", None)
                if not data:
                    raise InvalidRequestError(f"{vpath}: nothing to rot")
                idx = self.plan.flip_index(len(data))
                data[idx] ^= 0xFF
        else:
            raise InvalidRequestError(
                f"cannot rot at rest in a {inner.kind!r} store"
            )
        self.plan.record(f"rot {digest} byte {idx}")
        return digest

    def _flip_file(self, real: str, sealed: bool = False) -> int:
        size = os.lstat(real).st_size
        if size == 0:
            raise InvalidRequestError(f"{real}: nothing to rot")
        idx = self.plan.flip_index(size)
        if sealed:
            os.chmod(real, 0o644)  # sealed objects are read-only on disk
        try:
            with open(real, "r+b") as fh:
                fh.seek(idx)
                byte = fh.read(1)
                fh.seek(idx)
                fh.write(bytes([byte[0] ^ 0xFF]))
        finally:
            if sealed:
                os.chmod(real, 0o444)
        return idx
