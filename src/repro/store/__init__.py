"""Pluggable storage resources behind the Chirp server.

See :mod:`repro.store.interface` for the contract.  ``make_store`` is
the one factory everything configures through (``ServerConfig.store``,
``tss-server --store``, tests).
"""

from __future__ import annotations

from repro.store.cas import CasStore
from repro.store.faulty import DiskFaultPlan, DiskFaultScript, FaultyStore
from repro.store.interface import (
    BlobHandle,
    BlobStore,
    HandleReader,
    HandleWriter,
    read_all,
    write_all,
)
from repro.store.localdir import LocalDirStore
from repro.store.memory import MemoryStore

__all__ = [
    "BlobHandle",
    "BlobStore",
    "CasStore",
    "DiskFaultPlan",
    "DiskFaultScript",
    "FaultyStore",
    "HandleReader",
    "HandleWriter",
    "LocalDirStore",
    "MemoryStore",
    "STORE_KINDS",
    "make_store",
    "read_all",
    "write_all",
]

STORE_KINDS = ("local", "memory", "cas")


def make_store(kind: str, root: str, *, sync_meta: bool = True) -> BlobStore:
    """Build a store of the given kind rooted at ``root``.

    ``memory`` ignores the root (kept as a label only), so simulations
    can name stores without touching the disk.  A ``faulty+<kind>``
    prefix wraps the store in a :class:`FaultyStore` with an empty
    (pass-through) fault plan; chaos harnesses reach the plan through
    ``server.store.plan``.
    """
    if kind.startswith("faulty+"):
        return FaultyStore(make_store(kind[len("faulty+"):], root, sync_meta=sync_meta))
    if kind == "local":
        return LocalDirStore(root, sync_meta=sync_meta)
    if kind == "memory":
        return MemoryStore(root, sync_meta=sync_meta)
    if kind == "cas":
        return CasStore(root, sync_meta=sync_meta)
    raise ValueError(f"unknown store kind {kind!r} (expected one of {STORE_KINDS})")
