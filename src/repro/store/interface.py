"""The ``BlobStore`` interface: storage resources behind the Chirp RPCs.

The paper's thesis is that storage *abstractions* should be separable
from the *resources* that serve them.  Before this package existed the
Chirp server was hard-wired to one POSIX directory, so "resources" meant
exactly one thing.  A :class:`BlobStore` is the minimal storage surface
the server's abstraction layer (ACLs, quotas, fd bookkeeping in
:mod:`repro.chirp.backend`) needs underneath it:

- a POSIX-ish namespace of files and directories addressed by *virtual*
  absolute paths (``/a/b/c``), normalized and confined by the store;
- random-access file handles (:class:`BlobHandle`) with explicit-offset
  reads and writes, mirroring the wire protocol's ``pread``/``pwrite``;
- whole-blob helpers used by the layer above for its own bookkeeping
  (ACL files travel through the store like any other blob, so every
  store persists them without knowing what they are);
- an incrementally maintained usage counter so quota checks are O(1)
  instead of an O(files) tree walk;
- an optional content-addressed surface (``lookup_key``/``link_key``/
  ``key_of``) that non-CAS stores refuse with
  :class:`~repro.util.errors.InvalidRequestError` -- the same error an
  old server returns for an unknown verb, so clients probe and fall
  back uniformly.

Implementations: :class:`~repro.store.localdir.LocalDirStore` (the
original confined-directory semantics, byte-identical on disk),
:class:`~repro.store.memory.MemoryStore` (tests and simulations), and
:class:`~repro.store.cas.CasStore` (content-addressed, deduplicated,
refcounted blobs behind a path namespace).
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Optional

from repro.chirp.protocol import ChirpStat, OpenFlags
from repro.util.errors import InvalidRequestError

__all__ = [
    "BlobStore",
    "BlobHandle",
    "HandleReader",
    "HandleWriter",
    "read_all",
    "write_all",
]


class BlobHandle(ABC):
    """An open file within a store.

    Handles own no seek position: ``pread``/``pwrite`` carry explicit
    offsets, exactly like the wire protocol, so one handle may serve
    concurrent requests.  Streaming callers wrap a handle in
    :class:`HandleReader`/:class:`HandleWriter` for a cursor.
    """

    @abstractmethod
    def pread(self, length: int, offset: int) -> bytes: ...

    @abstractmethod
    def pwrite(self, data: bytes, offset: int) -> int: ...

    @abstractmethod
    def fsync(self) -> None: ...

    @abstractmethod
    def fstat(self) -> ChirpStat: ...

    @abstractmethod
    def ftruncate(self, size: int) -> None: ...

    @abstractmethod
    def close(self) -> None: ...

    def __enter__(self) -> "BlobHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class HandleReader:
    """A read-cursor over a handle (file-object ``read`` protocol).

    Lets the server stream ``getfile`` replies from any store through
    :meth:`~repro.util.wire.LineStream.write_from_file` without knowing
    whether an OS fd backs the handle.
    """

    def __init__(self, handle: BlobHandle, offset: int = 0):
        self._handle = handle
        self._offset = offset

    def read(self, length: int) -> bytes:
        chunk = self._handle.pread(length, self._offset)
        self._offset += len(chunk)
        return chunk


class HandleWriter:
    """A write-cursor over a handle (file-object ``write`` protocol)."""

    def __init__(self, handle: BlobHandle, offset: int = 0):
        self._handle = handle
        self._offset = offset

    def write(self, data: bytes) -> int:
        n = self._handle.pwrite(data, self._offset)
        self._offset += n
        return n


def read_all(handle: BlobHandle, chunk_size: int = 1 << 20) -> bytes:
    """Drain a handle from offset 0 (helper for whole-blob reads)."""
    chunks = []
    offset = 0
    while True:
        chunk = handle.pread(chunk_size, offset)
        if not chunk:
            return b"".join(chunks)
        chunks.append(chunk)
        offset += len(chunk)


def write_all(handle: BlobHandle, data: bytes, chunk_size: int = 1 << 20) -> int:
    """Write a whole byte string from offset 0."""
    view = memoryview(data)
    offset = 0
    while offset < len(data):
        offset += handle.pwrite(bytes(view[offset : offset + chunk_size]), offset)
    return offset


class BlobStore(ABC):
    """Abstract storage resource behind one Chirp server (see module doc).

    All paths are *virtual* absolute paths; the store normalizes and
    confines them itself.  Errors surface as
    :class:`~repro.util.errors.ChirpError` subclasses so the protocol
    layer maps them without translation.

    Thread-safety contract: namespace mutations and usage accounting are
    serialized by ``self._lock``; data-path I/O on distinct handles may
    proceed concurrently.
    """

    #: short identifier reported to catalogs and metrics ("local", ...)
    kind: str = "abstract"
    #: True when the content-addressed surface is real (CasStore only)
    supports_cas: bool = False

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: dict[str, int] = {}

    # -- file I/O -------------------------------------------------------

    @abstractmethod
    def open(self, vpath: str, flags: OpenFlags, mode: int) -> BlobHandle: ...

    # -- namespace ------------------------------------------------------

    @abstractmethod
    def stat(self, vpath: str) -> ChirpStat: ...

    @abstractmethod
    def lstat(self, vpath: str) -> ChirpStat: ...

    @abstractmethod
    def exists(self, vpath: str) -> bool: ...

    @abstractmethod
    def isdir(self, vpath: str) -> bool: ...

    @abstractmethod
    def listdir(self, vpath: str) -> list[str]: ...

    @abstractmethod
    def unlink(self, vpath: str) -> None: ...

    @abstractmethod
    def rename(self, vold: str, vnew: str) -> None: ...

    @abstractmethod
    def mkdir(self, vpath: str, mode: int) -> None: ...

    @abstractmethod
    def rmdir(self, vpath: str) -> None: ...

    @abstractmethod
    def truncate(self, vpath: str, size: int) -> None: ...

    @abstractmethod
    def utime(self, vpath: str, atime: int, mtime: int) -> None: ...

    @abstractmethod
    def checksum(self, vpath: str) -> str: ...

    # -- whole blobs (backend bookkeeping, e.g. ACL files) --------------

    def read_blob(self, vpath: str) -> bytes:
        """Read a whole blob (raises DoesNotExistError when absent)."""
        with self.open(vpath, OpenFlags(read=True), 0) as handle:
            return read_all(handle)

    def try_read_blob(self, vpath: str) -> Optional[bytes]:
        """Read a whole blob, or None when it does not exist."""
        from repro.util.errors import DoesNotExistError

        try:
            return self.read_blob(vpath)
        except DoesNotExistError:
            return None

    def write_blob(self, vpath: str, data: bytes) -> None:
        """Replace a blob's contents whole (atomically where possible)."""
        flags = OpenFlags(write=True, create=True, truncate=True)
        with self.open(vpath, flags, 0o644) as handle:
            write_all(handle, data)

    # -- capacity -------------------------------------------------------

    @abstractmethod
    def used_bytes(self) -> int:
        """Bytes currently stored, maintained incrementally (O(1))."""

    @abstractmethod
    def capacity(self) -> tuple[int, int]:
        """(total_bytes, free_bytes) of the underlying resource, used
        when the server has no quota configured."""

    def reconcile_usage(self) -> int:
        """Recompute ``used_bytes`` from ground truth and return it.

        The incremental counter can drift when an operation fails
        partway (a ``pwrite`` that hit ENOSPC mid-call wrote *some*
        bytes); stores that track usage incrementally override this to
        re-derive the counter from the backing resource.  The default
        covers stores whose counter cannot drift.
        """
        return self.used_bytes()

    def janitor(self) -> int:
        """Sweep staging files a crashed predecessor left behind.

        Stores that stage writes through private temporary files (CAS
        spool/ingest temps, LocalDirStore rename staging) override this;
        a SIGKILL mid-write orphans those files forever otherwise.  Only
        wholly store-owned staging locations may be swept -- never
        client-visible namespace entries.  Returns the number of files
        removed.  Called by the server once at boot, before the
        listener opens.
        """
        return 0

    # -- content-addressed surface (CAS stores only) --------------------

    def lookup_key(self, key: str) -> bool:
        """Whether a sealed blob with this content key is present."""
        raise InvalidRequestError(f"{self.kind} store is not content-addressed")

    def link_key(self, vpath: str, key: str, mode: int = 0o644) -> int:
        """Bind ``vpath`` to an already-present blob; returns its size.

        The copy-by-reference primitive: no payload bytes move.  Raises
        :class:`~repro.util.errors.DoesNotExistError` when the key is
        absent (the caller falls back to a byte transfer).
        """
        raise InvalidRequestError(f"{self.kind} store is not content-addressed")

    def key_of(self, vpath: str) -> str:
        """The content key a path is bound to, from metadata (O(1))."""
        raise InvalidRequestError(f"{self.kind} store is not content-addressed")

    # -- observability --------------------------------------------------

    def _count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def snapshot(self) -> dict:
        """Per-store counters for ``MetricsRegistry.attach_section``."""
        with self._lock:
            snap = dict(self._counters)
        snap["kind"] = self.kind
        snap["used_bytes"] = self.used_bytes()
        return snap

    def close(self) -> None:
        """Release store resources (default: nothing to release)."""
