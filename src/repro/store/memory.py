"""MemoryStore: a RAM-resident store for tests and simulations.

The whole namespace is a tree of dict nodes behind one lock.  Semantics
track POSIX closely enough to pass the backend-conformance battery --
create/exclusive/truncate open flags, EISDIR/ENOTDIR/ENOTEMPTY error
mapping, directory renames -- but nothing touches the disk, so chaos
and placement simulations can spin up hundreds of "servers" cheaply.
"""

from __future__ import annotations

import itertools
import os
import stat as stat_mod
import time

from repro.chirp.protocol import ChirpStat, OpenFlags
from repro.store.interface import BlobHandle, BlobStore
from repro.util.checksum import data_checksum
from repro.util.errors import (
    AlreadyExistsError,
    BadFileDescriptorError,
    DoesNotExistError,
    InvalidRequestError,
    IsADirectoryError_,
    NotADirectoryError_,
    NotEmptyError,
)
from repro.util.paths import normalize_virtual, split_virtual

__all__ = ["MemoryStore"]

_inodes = itertools.count(2)


class _File:
    __slots__ = ("data", "mode", "atime", "mtime", "ctime", "inode")

    def __init__(self, mode: int):
        self.data = bytearray()
        self.mode = mode & 0o777
        now = time.time()
        self.atime = self.mtime = self.ctime = now
        self.inode = next(_inodes)


class _Dir:
    __slots__ = ("entries", "mode", "atime", "mtime", "ctime", "inode")

    def __init__(self, mode: int = 0o755):
        self.entries: dict[str, object] = {}
        self.mode = mode & 0o777
        now = time.time()
        self.atime = self.mtime = self.ctime = now
        self.inode = next(_inodes)


def _stat_of(node) -> ChirpStat:
    is_dir = isinstance(node, _Dir)
    return ChirpStat(
        device=0,
        inode=node.inode,
        mode=(stat_mod.S_IFDIR if is_dir else stat_mod.S_IFREG) | node.mode,
        nlink=2 if is_dir else 1,
        uid=os.getuid() if hasattr(os, "getuid") else 0,
        gid=os.getgid() if hasattr(os, "getgid") else 0,
        size=0 if is_dir else len(node.data),
        atime=int(node.atime),
        mtime=int(node.mtime),
        ctime=int(node.ctime),
    )


class _MemHandle(BlobHandle):
    def __init__(self, store: "MemoryStore", node: _File, flags: OpenFlags):
        self._store = store
        self._node = node
        self._flags = flags
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise BadFileDescriptorError("handle is closed")

    def pread(self, length: int, offset: int) -> bytes:
        self._check_open()
        if self._flags.write and not self._flags.read:
            # Mirror EBADF on a write-only OS fd.
            raise BadFileDescriptorError("handle not open for reading")
        with self._store._lock:
            return bytes(self._node.data[offset : offset + length])

    def pwrite(self, data: bytes, offset: int) -> int:
        self._check_open()
        if not self._flags.write:
            raise BadFileDescriptorError("handle not open for writing")
        if not data:
            return 0  # POSIX: a zero-length write never extends the file
        with self._store._lock:
            buf = self._node.data
            old_len = len(buf)
            if self._flags.append:
                offset = old_len
            if offset > old_len:
                buf.extend(b"\x00" * (offset - old_len))
            buf[offset : offset + len(data)] = data
            self._store._used += len(buf) - old_len
            self._node.mtime = time.time()
            return len(data)

    def fsync(self) -> None:
        self._check_open()

    def fstat(self) -> ChirpStat:
        self._check_open()
        with self._store._lock:
            return _stat_of(self._node)

    def ftruncate(self, size: int) -> None:
        self._check_open()
        if not self._flags.write:
            raise BadFileDescriptorError("handle not open for writing")
        with self._store._lock:
            buf = self._node.data
            delta = size - len(buf)
            if delta < 0:
                del buf[size:]
            elif delta > 0:
                buf.extend(b"\x00" * delta)
            self._store._used += delta
            self._node.mtime = time.time()

    def close(self) -> None:
        self._closed = True


class MemoryStore(BlobStore):
    """An in-memory store (see module doc).  ``root`` is ignored."""

    kind = "memory"

    #: virtual capacity reported by statfs when no quota is configured
    VIRTUAL_CAPACITY = 1 << 40

    def __init__(self, root: str = "", *, sync_meta: bool = True):
        super().__init__()
        self.root = root
        self._root_dir = _Dir()
        self._used = 0

    # -- tree navigation (caller holds no lock; these take it) ----------

    def _node(self, vpath: str):
        """The node at ``vpath`` or None.  Lock must be held."""
        norm = normalize_virtual(vpath)
        node = self._root_dir
        if norm == "/":
            return node
        for part in norm.strip("/").split("/"):
            if not isinstance(node, _Dir):
                return None
            node = node.entries.get(part)
            if node is None:
                return None
        return node

    def _parent_of(self, vpath: str) -> tuple[_Dir, str]:
        """(parent dir node, basename); raises if the parent is invalid."""
        parent_v, name = split_virtual(vpath)
        parent = self._node(parent_v)
        if parent is None:
            raise DoesNotExistError(parent_v)
        if not isinstance(parent, _Dir):
            raise NotADirectoryError_(parent_v)
        return parent, name

    # -- file I/O -------------------------------------------------------

    def open(self, vpath: str, flags: OpenFlags, mode: int) -> BlobHandle:
        with self._lock:
            parent, name = self._parent_of(vpath)
            if not name:
                raise IsADirectoryError_(vpath)
            node = parent.entries.get(name)
            if isinstance(node, _Dir):
                raise IsADirectoryError_(vpath)
            if node is None:
                if not flags.create:
                    raise DoesNotExistError(vpath)
                node = _File(mode)
                parent.entries[name] = node
                parent.mtime = time.time()
            elif flags.exclusive and flags.create:
                raise AlreadyExistsError(vpath)
            if flags.truncate:
                self._used -= len(node.data)
                node.data = bytearray()
            self._count("open")
            return _MemHandle(self, node, flags)

    # -- namespace ------------------------------------------------------

    def stat(self, vpath: str) -> ChirpStat:
        with self._lock:
            node = self._node(vpath)
            if node is None:
                raise DoesNotExistError(vpath)
            return _stat_of(node)

    def lstat(self, vpath: str) -> ChirpStat:
        return self.stat(vpath)  # no symlinks in the memory tree

    def exists(self, vpath: str) -> bool:
        with self._lock:
            return self._node(vpath) is not None

    def isdir(self, vpath: str) -> bool:
        with self._lock:
            return isinstance(self._node(vpath), _Dir)

    def listdir(self, vpath: str) -> list[str]:
        with self._lock:
            node = self._node(vpath)
            if node is None:
                raise DoesNotExistError(vpath)
            if not isinstance(node, _Dir):
                raise NotADirectoryError_(vpath)
            return list(node.entries)

    def unlink(self, vpath: str) -> None:
        with self._lock:
            parent, name = self._parent_of(vpath)
            node = parent.entries.get(name)
            if node is None or not name:
                raise DoesNotExistError(vpath)
            if isinstance(node, _Dir):
                raise IsADirectoryError_(vpath)
            del parent.entries[name]
            parent.mtime = time.time()
            self._used -= len(node.data)

    def rename(self, vold: str, vnew: str) -> None:
        with self._lock:
            src_parent, src_name = self._parent_of(vold)
            src = src_parent.entries.get(src_name)
            if src is None or not src_name:
                raise DoesNotExistError(vold)
            dst_parent, dst_name = self._parent_of(vnew)
            if not dst_name:
                raise InvalidRequestError("cannot rename onto the root")
            dst = dst_parent.entries.get(dst_name)
            if dst is not None:
                if isinstance(src, _Dir):
                    if not isinstance(dst, _Dir):
                        raise NotADirectoryError_(vnew)
                    if dst.entries:
                        raise NotEmptyError(vnew)
                elif isinstance(dst, _Dir):
                    raise IsADirectoryError_(vnew)
                else:
                    self._used -= len(dst.data)
            del src_parent.entries[src_name]
            dst_parent.entries[dst_name] = src
            now = time.time()
            src_parent.mtime = dst_parent.mtime = now

    def mkdir(self, vpath: str, mode: int) -> None:
        with self._lock:
            parent, name = self._parent_of(vpath)
            if not name:
                raise AlreadyExistsError("/")
            if name in parent.entries:
                raise AlreadyExistsError(vpath)
            parent.entries[name] = _Dir(mode)
            parent.mtime = time.time()

    def rmdir(self, vpath: str) -> None:
        with self._lock:
            parent, name = self._parent_of(vpath)
            node = parent.entries.get(name)
            if node is None or not name:
                raise DoesNotExistError(vpath)
            if not isinstance(node, _Dir):
                raise NotADirectoryError_(vpath)
            if node.entries:
                raise NotEmptyError(vpath)
            del parent.entries[name]
            parent.mtime = time.time()

    def truncate(self, vpath: str, size: int) -> None:
        with self._lock:
            node = self._node(vpath)
            if node is None:
                raise DoesNotExistError(vpath)
            if isinstance(node, _Dir):
                raise IsADirectoryError_(vpath)
            delta = size - len(node.data)
            if delta < 0:
                del node.data[size:]
            elif delta > 0:
                node.data.extend(b"\x00" * delta)
            self._used += delta
            node.mtime = time.time()

    def utime(self, vpath: str, atime: int, mtime: int) -> None:
        with self._lock:
            node = self._node(vpath)
            if node is None:
                raise DoesNotExistError(vpath)
            node.atime = atime
            node.mtime = mtime

    def checksum(self, vpath: str) -> str:
        with self._lock:
            node = self._node(vpath)
            if node is None:
                raise DoesNotExistError(vpath)
            if isinstance(node, _Dir):
                raise IsADirectoryError_(vpath)
            return data_checksum(bytes(node.data))

    # -- capacity -------------------------------------------------------

    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    def reconcile_usage(self) -> int:
        """Recompute usage by walking the tree (drift repair hook)."""
        with self._lock:
            total = 0
            stack = [self._root_dir]
            while stack:
                node = stack.pop()
                for child in node.entries.values():
                    if isinstance(child, _Dir):
                        stack.append(child)
                    else:
                        total += len(child.data)
            self._used = total
            return total

    def capacity(self) -> tuple[int, int]:
        with self._lock:
            return (self.VIRTUAL_CAPACITY, max(0, self.VIRTUAL_CAPACITY - self._used))
