"""LocalDirStore: the original confined-directory resource.

Files and directories are stored *without transformation* in an ordinary
filesystem under an exported root -- the recursive-abstraction property
that lets any existing directory be exported as-is, and lets the owner
inspect what users are doing with ordinary tools.  This store is the
default and must stay byte-identical in semantics to the pre-refactor
``LocalBackend``: same on-disk layout, same error mapping, same
durability (``_fsync_dir`` on namespace changes when ``sync_meta``).

The one behavioral upgrade lives here: ``used_bytes`` is maintained
incrementally.  The first call performs the old full-tree walk; every
write, truncate, unlink, rename-over and blob replacement afterwards
adjusts the counter by the observed size delta, so quota checks are O(1)
instead of O(files).  Servers without a quota never trigger the scan.
"""

from __future__ import annotations

import os
import stat as stat_mod

from repro.chirp.protocol import ChirpStat, OpenFlags
from repro.store.interface import BlobHandle, BlobStore
from repro.util import checksum as checksum_mod
from repro.util.errors import (
    IsADirectoryError_,
    NotAuthorizedError,
    error_from_status,
    status_from_exception,
)
from repro.util.paths import PathEscapeError, confine

__all__ = ["LocalDirStore", "STAGING_PREFIX"]

#: Reserved basename prefix for write_blob staging files.  The prefix
#: must be distinctive: a plain ``<name>.tmp`` convention would make the
#: boot janitor delete legitimate client files that happen to be named
#: ``*.tmp``, whereas nothing legitimate starts with this marker.
STAGING_PREFIX = ".tss-tmp."


def _wrap_os_error(exc: OSError, path: str = "") -> Exception:
    return error_from_status(status_from_exception(exc), f"{path}: {exc.strerror or exc}")


class _OsFdHandle(BlobHandle):
    """A handle backed by an OS file descriptor."""

    def __init__(self, store: "LocalDirStore", fd: int):
        self._store = store
        self._fd = fd

    def pread(self, length: int, offset: int) -> bytes:
        try:
            return os.pread(self._fd, length, offset)
        except OSError as exc:
            raise _wrap_os_error(exc) from exc

    def pwrite(self, data: bytes, offset: int) -> int:
        if not self._store.tracking_usage:
            try:
                return os.pwrite(self._fd, data, offset)
            except OSError as exc:
                raise _wrap_os_error(exc) from exc
        # Account in a finally so a partial failure (ENOSPC/EIO mid-op
        # may still have extended the file) cannot skew the counter.
        before = os.fstat(self._fd).st_size
        try:
            return os.pwrite(self._fd, data, offset)
        except OSError as exc:
            raise _wrap_os_error(exc) from exc
        finally:
            self._account_after(before)

    def fsync(self) -> None:
        try:
            os.fsync(self._fd)
        except OSError as exc:
            raise _wrap_os_error(exc) from exc

    def fstat(self) -> ChirpStat:
        try:
            return ChirpStat.from_os(os.fstat(self._fd))
        except OSError as exc:
            raise _wrap_os_error(exc) from exc

    def ftruncate(self, size: int) -> None:
        if not self._store.tracking_usage:
            try:
                os.ftruncate(self._fd, size)
            except OSError as exc:
                raise _wrap_os_error(exc) from exc
            return
        before = os.fstat(self._fd).st_size
        try:
            os.ftruncate(self._fd, size)
        except OSError as exc:
            raise _wrap_os_error(exc) from exc
        finally:
            self._account_after(before)

    def _account_after(self, before: int) -> None:
        """Charge the *observed* size delta, success or failure.

        When even re-stating the fd fails, the truth is unknowable from
        here: invalidate the counter so the next quota check re-scans
        instead of trusting a number that may be wrong.
        """
        try:
            after = os.fstat(self._fd).st_size
        except OSError:
            self._store._invalidate_usage()
        else:
            self._store._account(after - before)

    def close(self) -> None:
        try:
            os.close(self._fd)
        except OSError as exc:
            raise _wrap_os_error(exc) from exc


class LocalDirStore(BlobStore):
    """A confined view of a local directory tree (see module doc)."""

    kind = "local"

    def __init__(self, root: str, *, sync_meta: bool = True):
        super().__init__()
        self.root = os.path.realpath(root)
        if not os.path.isdir(self.root):
            raise NotADirectoryError(f"export root {root!r} is not a directory")
        self.sync_meta = sync_meta
        # None until the first used_bytes() call triggers the startup
        # scan; incrementally maintained from then on.
        self._used: int | None = None

    # -- path plumbing --------------------------------------------------

    def _real(self, vpath: str) -> str:
        try:
            return confine(self.root, vpath)
        except PathEscapeError as exc:
            raise NotAuthorizedError(str(exc)) from exc

    def _fsync_dir(self, real_path: str) -> None:
        """Flush a directory's entry table to stable storage.

        An unlink/rename/mkdir that only reaches the page cache can be
        undone by a crash, leaving the namespace disagreeing with what a
        client was told succeeded -- fatal for a replica store whose
        database trusts those answers.  POSIX requires fsyncing the
        *parent directory* to make a namespace change durable; syncing
        the file alone is not enough.
        """
        if not self.sync_meta:
            return
        try:
            fd = os.open(real_path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
        except OSError:
            return  # directory vanished or platform refuses; best effort
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # -- usage accounting -----------------------------------------------

    @property
    def tracking_usage(self) -> bool:
        return self._used is not None

    def _account(self, delta: int) -> None:
        with self._lock:
            if self._used is not None:
                self._used = max(0, self._used + delta)

    def _invalidate_usage(self) -> None:
        """Forget the counter; the next ``used_bytes`` re-walks the tree."""
        with self._lock:
            self._used = None

    def reconcile_usage(self) -> int:
        """Recompute usage with a fresh tree walk (drift repair hook)."""
        self._invalidate_usage()
        return self.used_bytes()

    def _size_if_file(self, real: str) -> int:
        """Size of a regular file or symlink at ``real``, else 0."""
        try:
            st = os.lstat(real)
        except OSError:
            return 0
        if stat_mod.S_ISDIR(st.st_mode):
            return 0
        return st.st_size

    def used_bytes(self) -> int:
        with self._lock:
            if self._used is None:
                total = 0
                for dirpath, _dirnames, filenames in os.walk(self.root):
                    for name in filenames:
                        try:
                            total += os.lstat(os.path.join(dirpath, name)).st_size
                        except OSError:
                            continue
                self._used = total
            return self._used

    def capacity(self) -> tuple[int, int]:
        vfs = os.statvfs(self.root)
        return (vfs.f_blocks * vfs.f_frsize, vfs.f_bavail * vfs.f_frsize)

    # -- file I/O -------------------------------------------------------

    def open(self, vpath: str, flags: OpenFlags, mode: int) -> BlobHandle:
        real = self._real(vpath)
        if os.path.isdir(real):
            raise IsADirectoryError_(vpath)
        try:
            fd = os.open(real, flags.to_os_flags(), mode & 0o777)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        self._count("open")
        return _OsFdHandle(self, fd)

    # -- namespace ------------------------------------------------------

    def stat(self, vpath: str) -> ChirpStat:
        try:
            return ChirpStat.from_os(os.stat(self._real(vpath)))
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    def lstat(self, vpath: str) -> ChirpStat:
        try:
            return ChirpStat.from_os(os.lstat(self._real(vpath)))
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    def exists(self, vpath: str) -> bool:
        return os.path.exists(self._real(vpath))

    def isdir(self, vpath: str) -> bool:
        return os.path.isdir(self._real(vpath))

    def listdir(self, vpath: str) -> list[str]:
        try:
            return os.listdir(self._real(vpath))
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    def unlink(self, vpath: str) -> None:
        real = self._real(vpath)
        freed = self._size_if_file(real) if self.tracking_usage else 0
        try:
            os.unlink(real)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        self._account(-freed)
        self._fsync_dir(os.path.dirname(real))

    def rename(self, vold: str, vnew: str) -> None:
        real_old, real_new = self._real(vold), self._real(vnew)
        clobbered = self._size_if_file(real_new) if self.tracking_usage else 0
        try:
            os.rename(real_old, real_new)
        except OSError as exc:
            raise _wrap_os_error(exc, vold) from exc
        self._account(-clobbered)
        # Both directory entries changed; a crash must not resurrect the
        # old name or lose the new one.
        self._fsync_dir(os.path.dirname(real_new))
        if os.path.dirname(real_old) != os.path.dirname(real_new):
            self._fsync_dir(os.path.dirname(real_old))

    def mkdir(self, vpath: str, mode: int) -> None:
        real = self._real(vpath)
        try:
            os.mkdir(real, mode & 0o777)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        self._fsync_dir(os.path.dirname(real))

    def rmdir(self, vpath: str) -> None:
        real = self._real(vpath)
        try:
            os.rmdir(real)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        self._fsync_dir(os.path.dirname(real))

    def truncate(self, vpath: str, size: int) -> None:
        real = self._real(vpath)
        before = self._size_if_file(real) if self.tracking_usage else 0
        try:
            os.truncate(real, size)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        if self.tracking_usage:
            self._account(self._size_if_file(real) - before)

    def utime(self, vpath: str, atime: int, mtime: int) -> None:
        try:
            os.utime(self._real(vpath), (atime, mtime))
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    def checksum(self, vpath: str) -> str:
        try:
            return checksum_mod.file_checksum(self._real(vpath))
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    # -- whole blobs ----------------------------------------------------

    def write_blob(self, vpath: str, data: bytes) -> None:
        """Atomic whole-blob replacement (write-temp, fsync, rename).

        ACL files are persisted through this path; the write-then-rename
        keeps the exact durability the old ``store_acl`` provided.
        """
        real = self._real(vpath)
        before = self._size_if_file(real) if self.tracking_usage else 0
        tmp = os.path.join(
            os.path.dirname(real), STAGING_PREFIX + os.path.basename(real)
        )
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, real)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        if self.tracking_usage:
            self._account(len(data) - before)

    # -- crash recovery -------------------------------------------------

    def janitor(self) -> int:
        """Remove orphaned ``write_blob`` staging files across the tree.

        Only basenames carrying :data:`STAGING_PREFIX` are touched;
        every other name is client data and sacred.  A staging file
        observed here is guaranteed orphaned: live ones exist only
        inside a ``write_blob`` call, and the janitor runs before the
        server accepts connections.
        """
        removed = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not name.startswith(STAGING_PREFIX):
                    continue
                try:
                    os.unlink(os.path.join(dirpath, name))
                except OSError:
                    continue
                removed += 1
        if removed:
            self._invalidate_usage()
        return removed
