"""CasStore: content-addressed storage behind a POSIX-ish namespace.

Blobs are keyed by their checksum (the same hex digest the ``checksum``
RPC reports, so keys and wire checksums are one vocabulary).  The store
splits into two planes:

- ``objects/<k:2>/<key>`` -- sealed, immutable blobs, chmod read-only,
  written once via temp-file + rename and deduplicated by construction:
  ingesting content that already exists is a refcount bump, not a write;
- ``ns/...`` -- an ordinary directory tree whose *files* are one-line
  JSON pointer records ``{key, size, mode, atime, mtime}`` binding a
  virtual path to a blob.  Directories are real directories, so rename
  and rmdir inherit kernel atomicity.

Invariants:

- an object file's name always equals the checksum of its bytes (bitrot
  breaks this; ``scrub`` detects and optionally quarantines it);
- refcount(key) == number of ns pointers naming ``key``, rebuilt by a
  startup walk and maintained under the store lock;
- refcount 0 => the object is deleted immediately (eager GC);
- pointer replacement is atomic (write-temp + rename), so readers see
  either the old or the new binding, never a torn one.

Mutation happens on a write-handle *spool* (seeded from the current blob
when opening an existing file without truncate) and is sealed back --
hash, ingest, repoint -- on ``fsync``/``close``.  Mid-write bytes are
thus invisible to other readers: snapshot isolation at file granularity,
slightly stronger than the local store, identical at whole-op
granularity.

Copy-by-reference falls out of the naming scheme: ``link_key`` binds a
path to an already-present blob without moving payload bytes, and
``key_of`` answers integrity audits from metadata in O(1).
"""

from __future__ import annotations

import io
import json
import os
import stat as stat_mod
import tempfile
import time

from repro.chirp.protocol import ChirpStat, OpenFlags
from repro.store.interface import BlobHandle, BlobStore
from repro.util.checksum import data_checksum, file_checksum, stream_checksum
from repro.util.errors import (
    AlreadyExistsError,
    BadFileDescriptorError,
    DoesNotExistError,
    IsADirectoryError_,
    NotAuthorizedError,
    UnknownError,
    error_from_status,
    status_from_exception,
)
from repro.util.paths import PathEscapeError, confine

__all__ = ["CasStore"]

_PTR_MAGIC = "casptr"
_SPOOL_MAX = 8 << 20  # spill write spools to disk beyond 8 MiB


def _wrap_os_error(exc: OSError, path: str = "") -> Exception:
    return error_from_status(status_from_exception(exc), f"{path}: {exc.strerror or exc}")


class _Pointer:
    """A decoded namespace pointer record."""

    __slots__ = ("key", "size", "mode", "atime", "mtime")

    def __init__(self, key: str, size: int, mode: int, atime: int, mtime: int):
        self.key = key
        self.size = size
        self.mode = mode
        self.atime = atime
        self.mtime = mtime

    def to_bytes(self) -> bytes:
        record = {
            "tss": _PTR_MAGIC,
            "key": self.key,
            "size": self.size,
            "mode": self.mode,
            "atime": self.atime,
            "mtime": self.mtime,
        }
        return (json.dumps(record, separators=(",", ":")) + "\n").encode("ascii")

    @classmethod
    def from_bytes(cls, data: bytes) -> "_Pointer":
        record = json.loads(data.decode("ascii"))
        if record.get("tss") != _PTR_MAGIC:
            raise ValueError("not a CAS pointer record")
        return cls(
            str(record["key"]),
            int(record["size"]),
            int(record["mode"]),
            int(record["atime"]),
            int(record["mtime"]),
        )


class _CasReadHandle(BlobHandle):
    """A read-only handle: an OS fd on the sealed object itself."""

    def __init__(self, fd: int, ptr: _Pointer, ptr_real: str):
        self._fd = fd
        self._ptr = ptr
        self._ptr_real = ptr_real

    def pread(self, length: int, offset: int) -> bytes:
        try:
            return os.pread(self._fd, length, offset)
        except OSError as exc:
            raise _wrap_os_error(exc) from exc

    def pwrite(self, data: bytes, offset: int) -> int:
        raise BadFileDescriptorError("handle not open for writing")

    def fsync(self) -> None:
        pass  # sealed objects are already durable

    def fstat(self) -> ChirpStat:
        return _stat_from_pointer(self._ptr, self._ptr_real)

    def ftruncate(self, size: int) -> None:
        raise BadFileDescriptorError("handle not open for writing")

    def close(self) -> None:
        try:
            os.close(self._fd)
        except OSError as exc:
            raise BadFileDescriptorError(str(exc)) from exc


class _CasWriteHandle(BlobHandle):
    """A writable handle: mutations accumulate on a spool, sealed back
    into the object plane on fsync/close."""

    def __init__(self, store: "CasStore", vpath: str, flags: OpenFlags, mode: int):
        self._store = store
        self._vpath = vpath
        self._flags = flags
        self._mode = mode & 0o777
        self._spool = tempfile.SpooledTemporaryFile(
            max_size=_SPOOL_MAX, dir=store.tmp_root
        )
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise BadFileDescriptorError("handle is closed")

    def _size(self) -> int:
        self._spool.seek(0, os.SEEK_END)
        return self._spool.tell()

    def pread(self, length: int, offset: int) -> bytes:
        self._check_open()
        if not self._flags.read:
            raise BadFileDescriptorError("handle not open for reading")
        with self._store._lock:
            self._spool.seek(offset)
            return self._spool.read(length)

    def pwrite(self, data: bytes, offset: int) -> int:
        self._check_open()
        if not data:
            return 0  # POSIX: a zero-length write never extends the file
        with self._store._lock:
            if self._flags.append:
                offset = self._size()
            end = self._size()
            if offset > end:
                self._spool.seek(0, os.SEEK_END)
                self._spool.write(b"\x00" * (offset - end))
            self._spool.seek(offset)
            self._spool.write(data)
            return len(data)

    def fsync(self) -> None:
        self._check_open()
        self._seal()

    def fstat(self) -> ChirpStat:
        self._check_open()
        with self._store._lock:
            size = self._size()
        ptr_real = self._store._ns(self._vpath)
        try:
            pst = os.stat(ptr_real)
        except OSError as exc:
            raise _wrap_os_error(exc, self._vpath) from exc
        st = ChirpStat.from_os(pst)
        return ChirpStat(
            device=st.device,
            inode=st.inode,
            mode=stat_mod.S_IFREG | self._mode,
            nlink=1,
            uid=st.uid,
            gid=st.gid,
            size=size,
            atime=st.atime,
            mtime=st.mtime,
            ctime=st.ctime,
        )

    def ftruncate(self, size: int) -> None:
        self._check_open()
        with self._store._lock:
            end = self._size()
            if size < end:
                self._spool.seek(size)
                self._spool.truncate(size)
            elif size > end:
                self._spool.seek(0, os.SEEK_END)
                self._spool.write(b"\x00" * (size - end))

    def _seal(self) -> None:
        self._spool.seek(0)
        key = stream_checksum(self._spool)
        size = self._size()
        self._spool.seek(0)
        self._store._ingest(self._spool, key, size)
        self._store._repoint(self._vpath, key, size, self._mode)
        self._store._count("seals")

    def close(self) -> None:
        if self._closed:
            raise BadFileDescriptorError("handle is closed")
        try:
            self._seal()
        finally:
            self._closed = True
            self._spool.close()


def _stat_from_pointer(ptr: _Pointer, ptr_real: str) -> ChirpStat:
    """Synthesize a file stat: identity from the pointer inode, size and
    times from the pointer record, type always regular-file."""
    pst = os.stat(ptr_real)
    st = ChirpStat.from_os(pst)
    return ChirpStat(
        device=st.device,
        inode=st.inode,
        mode=stat_mod.S_IFREG | (ptr.mode & 0o777),
        nlink=1,
        uid=st.uid,
        gid=st.gid,
        size=ptr.size,
        atime=ptr.atime,
        mtime=ptr.mtime,
        ctime=st.ctime,
    )


class CasStore(BlobStore):
    """Content-addressed store (see module doc)."""

    kind = "cas"
    supports_cas = True

    def __init__(self, root: str, *, sync_meta: bool = True):
        super().__init__()
        self.root = os.path.realpath(root)
        if not os.path.isdir(self.root):
            raise NotADirectoryError(f"store root {root!r} is not a directory")
        self.sync_meta = sync_meta
        self.ns_root = os.path.join(self.root, "ns")
        self.obj_root = os.path.join(self.root, "objects")
        self.tmp_root = os.path.join(self.root, "tmp")
        self.quarantine_root = os.path.join(self.root, "quarantine")
        for d in (self.ns_root, self.obj_root, self.tmp_root, self.quarantine_root):
            os.makedirs(d, exist_ok=True)
        self._refs: dict[str, int] = {}
        self._used = 0
        self._rebuild()

    # -- startup --------------------------------------------------------

    def _rebuild(self) -> None:
        """Rebuild refcounts from the namespace and usage from the object
        plane (physical truth; orphaned objects count until GC'd)."""
        for dirpath, _dirnames, filenames in os.walk(self.ns_root):
            for name in filenames:
                try:
                    with open(os.path.join(dirpath, name), "rb") as fh:
                        ptr = _Pointer.from_bytes(fh.read())
                except (OSError, ValueError, KeyError):
                    continue
                self._refs[ptr.key] = self._refs.get(ptr.key, 0) + 1
        for dirpath, _dirnames, filenames in os.walk(self.obj_root):
            for name in filenames:
                try:
                    self._used += os.lstat(os.path.join(dirpath, name)).st_size
                except OSError:
                    continue

    # -- plumbing -------------------------------------------------------

    def _ns(self, vpath: str) -> str:
        try:
            return confine(self.ns_root, vpath)
        except PathEscapeError as exc:
            raise NotAuthorizedError(str(exc)) from exc

    def _object_path(self, key: str) -> str:
        if not key or "/" in key or key.startswith("."):
            raise DoesNotExistError(f"malformed content key {key!r}")
        return os.path.join(self.obj_root, key[:2], key)

    def _fsync_dir(self, real_path: str) -> None:
        if not self.sync_meta:
            return
        try:
            fd = os.open(real_path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _read_pointer(self, real: str, vpath: str) -> _Pointer:
        try:
            with open(real, "rb") as fh:
                data = fh.read()
        except FileNotFoundError as exc:
            raise DoesNotExistError(vpath) from exc
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        try:
            return _Pointer.from_bytes(data)
        except (ValueError, KeyError) as exc:
            raise UnknownError(f"{vpath}: corrupt CAS pointer record") from exc

    def _write_pointer(self, real: str, ptr: _Pointer, *, exclusive: bool = False) -> None:
        data = ptr.to_bytes()
        if exclusive:
            try:
                fd = os.open(real, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except OSError as exc:
                raise _wrap_os_error(exc, real) from exc
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            return
        # Stage through tmp_root, not next to the pointer: a crashed
        # predecessor's staging files must be sweepable by the boot
        # janitor, and only tmp_root is wholly store-owned -- an
        # ns-plane ``<name>.tmp`` could be a legitimate pointer for a
        # client file literally named ``<name>.tmp``.
        fd, tmp = tempfile.mkstemp(dir=self.tmp_root)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, real)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- object plane ---------------------------------------------------

    def _ingest(self, source, key: str, size: int) -> None:
        """Copy a readable stream into the object plane (no-op when the
        key is already present: dedup)."""
        obj = self._object_path(key)
        with self._lock:
            if os.path.exists(obj):
                self._count("dedup_hits")
                return
            os.makedirs(os.path.dirname(obj), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.tmp_root)
            try:
                with os.fdopen(fd, "wb") as out:
                    while True:
                        chunk = source.read(1 << 20)
                        if not chunk:
                            break
                        out.write(chunk)
                    out.flush()
                    os.fsync(out.fileno())
                os.chmod(tmp, 0o444)
                os.replace(tmp, obj)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._fsync_dir(os.path.dirname(obj))
            self._used += size
            self._count("objects_ingested")
            self._count("bytes_ingested", size)

    def _incref(self, key: str) -> None:
        self._refs[key] = self._refs.get(key, 0) + 1

    def _decref(self, key: str) -> None:
        count = self._refs.get(key, 0) - 1
        if count > 0:
            self._refs[key] = count
            return
        self._refs.pop(key, None)
        obj = self._object_path(key)
        try:
            size = os.lstat(obj).st_size
            os.chmod(obj, 0o644)  # objects are chmod'd read-only
            os.unlink(obj)
            self._used -= size
            self._count("objects_gc")
        except OSError:
            pass

    def _repoint(self, vpath: str, key: str, size: int, mode: int,
                 atime: int | None = None, mtime: int | None = None) -> None:
        """Atomically bind ``vpath`` to ``key``, releasing the old blob."""
        real = self._ns(vpath)
        now = int(time.time())
        ptr = _Pointer(key, size, mode, atime if atime is not None else now,
                       mtime if mtime is not None else now)
        with self._lock:
            old_key = None
            if os.path.isfile(real):
                try:
                    old_key = self._read_pointer(real, vpath).key
                except UnknownError:
                    old_key = None
            self._write_pointer(real, ptr)
            self._incref(key)
            if old_key is not None:
                self._decref(old_key)
        self._fsync_dir(os.path.dirname(real))

    # -- file I/O -------------------------------------------------------

    def open(self, vpath: str, flags: OpenFlags, mode: int) -> BlobHandle:
        real = self._ns(vpath)
        if os.path.isdir(real):
            raise IsADirectoryError_(vpath)
        writable = flags.write or flags.create or flags.truncate
        if not writable:
            ptr = self._read_pointer(real, vpath)
            try:
                fd = os.open(self._object_path(ptr.key), os.O_RDONLY)
            except OSError as exc:
                raise _wrap_os_error(exc, vpath) from exc
            self._count("open")
            return _CasReadHandle(fd, ptr, real)

        with self._lock:
            exists = os.path.isfile(real)
            if not exists:
                if not flags.create:
                    raise DoesNotExistError(vpath)
                if not os.path.isdir(os.path.dirname(real)):
                    raise DoesNotExistError(vpath)
            elif flags.exclusive and flags.create:
                raise AlreadyExistsError(vpath)

        handle = _CasWriteHandle(self, vpath, flags, mode)
        if exists and not flags.truncate:
            # r+/w-without-truncate: seed the spool with current content
            # so offset writes edit in place.
            ptr = self._read_pointer(real, vpath)
            handle._mode = ptr.mode
            try:
                with open(self._object_path(ptr.key), "rb") as src:
                    while True:
                        chunk = src.read(1 << 20)
                        if not chunk:
                            break
                        handle._spool.write(chunk)
            except OSError as exc:
                raise _wrap_os_error(exc, vpath) from exc
        else:
            # Materialize immediately (a created or truncated file is
            # visible as empty right away, like the local store).
            handle._seal()
        self._count("open")
        return handle

    # -- namespace ------------------------------------------------------

    def stat(self, vpath: str) -> ChirpStat:
        real = self._ns(vpath)
        if os.path.isdir(real):
            try:
                return ChirpStat.from_os(os.stat(real))
            except OSError as exc:
                raise _wrap_os_error(exc, vpath) from exc
        ptr = self._read_pointer(real, vpath)
        try:
            return _stat_from_pointer(ptr, real)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    def lstat(self, vpath: str) -> ChirpStat:
        return self.stat(vpath)  # pointer files are not symlinks

    def exists(self, vpath: str) -> bool:
        return os.path.exists(self._ns(vpath))

    def isdir(self, vpath: str) -> bool:
        return os.path.isdir(self._ns(vpath))

    def listdir(self, vpath: str) -> list[str]:
        try:
            return os.listdir(self._ns(vpath))
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    def unlink(self, vpath: str) -> None:
        real = self._ns(vpath)
        if os.path.isdir(real):
            raise IsADirectoryError_(vpath)
        with self._lock:
            ptr = self._read_pointer(real, vpath)
            try:
                os.unlink(real)
            except OSError as exc:
                raise _wrap_os_error(exc, vpath) from exc
            self._decref(ptr.key)
        self._fsync_dir(os.path.dirname(real))

    def rename(self, vold: str, vnew: str) -> None:
        real_old, real_new = self._ns(vold), self._ns(vnew)
        with self._lock:
            clobbered = None
            if os.path.isfile(real_new) and not os.path.isdir(real_old):
                try:
                    clobbered = self._read_pointer(real_new, vnew).key
                except (DoesNotExistError, UnknownError):
                    clobbered = None
            try:
                os.rename(real_old, real_new)
            except OSError as exc:
                raise _wrap_os_error(exc, vold) from exc
            if clobbered is not None:
                self._decref(clobbered)
        self._fsync_dir(os.path.dirname(real_new))
        if os.path.dirname(real_old) != os.path.dirname(real_new):
            self._fsync_dir(os.path.dirname(real_old))

    def mkdir(self, vpath: str, mode: int) -> None:
        real = self._ns(vpath)
        try:
            os.mkdir(real, mode & 0o777)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        self._fsync_dir(os.path.dirname(real))

    def rmdir(self, vpath: str) -> None:
        real = self._ns(vpath)
        try:
            os.rmdir(real)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        self._fsync_dir(os.path.dirname(real))

    def truncate(self, vpath: str, size: int) -> None:
        real = self._ns(vpath)
        if os.path.isdir(real):
            raise IsADirectoryError_(vpath)
        ptr = self._read_pointer(real, vpath)
        if size == ptr.size:
            return
        # Immutable blobs: truncation re-seals resized content.
        data = self.read_blob(vpath)
        if size < len(data):
            data = data[:size]
        else:
            data = data + b"\x00" * (size - len(data))
        key = data_checksum(data)
        self._ingest(io.BytesIO(data), key, len(data))
        self._repoint(vpath, key, len(data), ptr.mode, ptr.atime, None)

    def utime(self, vpath: str, atime: int, mtime: int) -> None:
        real = self._ns(vpath)
        if os.path.isdir(real):
            try:
                os.utime(real, (atime, mtime))
            except OSError as exc:
                raise _wrap_os_error(exc, vpath) from exc
            return
        with self._lock:
            ptr = self._read_pointer(real, vpath)
            ptr.atime, ptr.mtime = int(atime), int(mtime)
            self._write_pointer(real, ptr)

    def checksum(self, vpath: str) -> str:
        """O(1): the stored key *is* the checksum (scrub audits bitrot).

        Still O(1), but honest about absence: a pointer whose object was
        quarantined (or otherwise lost) must not keep advertising the
        old digest -- an auditor comparing checksums would count the
        replica intact forever.  The content is gone, so this raises
        DoesNotExist just as reading the file would.
        """
        real = self._ns(vpath)
        if os.path.isdir(real):
            raise IsADirectoryError_(vpath)
        key = self._read_pointer(real, vpath).key
        if not os.path.exists(self._object_path(key)):
            raise DoesNotExistError(f"{vpath}: object {key} is missing")
        return key

    # -- capacity -------------------------------------------------------

    def used_bytes(self) -> int:
        with self._lock:
            return max(0, self._used)

    def reconcile_usage(self) -> int:
        """Recompute usage from the object plane (drift repair hook)."""
        total = 0
        for dirpath, _dirnames, filenames in os.walk(self.obj_root):
            for name in filenames:
                try:
                    total += os.lstat(os.path.join(dirpath, name)).st_size
                except OSError:
                    continue
        with self._lock:
            self._used = total
        return total

    def capacity(self) -> tuple[int, int]:
        vfs = os.statvfs(self.root)
        return (vfs.f_blocks * vfs.f_frsize, vfs.f_bavail * vfs.f_frsize)

    # -- crash recovery -------------------------------------------------

    def janitor(self) -> int:
        """Empty ``tmp/``: ingest temps, spooled uploads, pointer staging.

        Everything under ``tmp_root`` is store-private scratch -- ingest
        stages objects there, write handles spill their payloads there,
        and pointer rewrites stage there -- and all of it is garbage the
        moment no operation is running, which is exactly when the boot
        janitor runs.  Returns the number of files removed.
        """
        removed = 0
        with self._lock:
            for name in os.listdir(self.tmp_root):
                try:
                    os.unlink(os.path.join(self.tmp_root, name))
                except OSError:
                    continue
                removed += 1
        return removed

    # -- content-addressed surface --------------------------------------

    def lookup_key(self, key: str) -> bool:
        self._count("lookups")
        try:
            return os.path.isfile(self._object_path(key))
        except DoesNotExistError:
            return False

    def link_key(self, vpath: str, key: str, mode: int = 0o644) -> int:
        real = self._ns(vpath)
        if os.path.isdir(real):
            raise IsADirectoryError_(vpath)
        if not os.path.isdir(os.path.dirname(real)):
            raise DoesNotExistError(vpath)
        obj = self._object_path(key)
        try:
            size = os.lstat(obj).st_size
        except OSError as exc:
            raise DoesNotExistError(f"content key {key} not present") from exc
        self._repoint(vpath, key, size, mode & 0o777)
        self._count("links")
        return size

    def key_of(self, vpath: str) -> str:
        real = self._ns(vpath)
        if os.path.isdir(real):
            raise IsADirectoryError_(vpath)
        return self._read_pointer(real, vpath).key

    # -- integrity ------------------------------------------------------

    def refcount(self, key: str) -> int:
        with self._lock:
            return self._refs.get(key, 0)

    def object_count(self) -> int:
        total = 0
        for _dirpath, _dirnames, filenames in os.walk(self.obj_root):
            total += len(filenames)
        return total

    def scrub(self, *, quarantine: bool = False) -> dict:
        """Verify every blob hashes to its key.

        Returns a report dict: objects scanned, ok count, corrupt keys,
        quarantined keys (when requested), and orphaned (unreferenced)
        keys.  Corrupt objects are moved aside to ``quarantine/`` rather
        than deleted -- forensics over convenience.
        """
        report = {
            "kind": self.kind,
            "objects": 0,
            "ok": 0,
            "corrupt": [],
            "quarantined": [],
            "orphans": [],
        }
        for dirpath, _dirnames, filenames in os.walk(self.obj_root):
            for name in filenames:
                path = os.path.join(dirpath, name)
                report["objects"] += 1
                try:
                    actual = file_checksum(path)
                except OSError:
                    actual = None
                if actual == name:
                    report["ok"] += 1
                    if self.refcount(name) == 0:
                        report["orphans"].append(name)
                    continue
                report["corrupt"].append(name)
                self._count("scrub_corrupt")
                if quarantine:
                    dest = os.path.join(self.quarantine_root, name)
                    try:
                        os.replace(path, dest)
                        report["quarantined"].append(name)
                        with self._lock:
                            self._used -= os.lstat(dest).st_size
                    except OSError:
                        pass
        self._count("scrubs")
        return report
