"""``tss``: a small command-line tool over the adapter namespace.

The paper's promise is that a deployed server is "instantly and securely
accessible by a variety of tools"; this is the reference tool.  Paths use
the adapter namespace (``/cfs/host:port/...``, ``/dsfs/host:port@vol/...``).

::

    tss ls /cfs/localhost:9094/
    tss put local.dat /cfs/localhost:9094/data/remote.dat
    tss cat /cfs/localhost:9094/data/remote.dat
    tss acl get /cfs/localhost:9094/data
    tss acl set /cfs/localhost:9094/data 'hostname:*.cse.nd.edu' rwl
    tss catalog localhost:9097
"""

from __future__ import annotations

import argparse
import json
import stat as stat_mod
import sys

from repro.adapter.adapter import Adapter
from repro.cache.policy import CACHE_MODES, CachePolicy
from repro.catalog.client import query_catalog

__all__ = ["main"]


def _endpoint_of(path: str) -> tuple[str, int, str]:
    """Split /cfs/host:port/inner into its pieces (for ACL commands)."""
    parts = path.strip("/").split("/")
    if len(parts) < 2 or parts[0] not in ("cfs", "dsfs"):
        raise SystemExit(f"tss: {path}: expected /cfs/<host:port>/...")
    spec = parts[1].split("@")[0]
    host, _, port = spec.rpartition(":")
    inner = "/" + "/".join(parts[2:])
    return host, int(port), inner


def _cmd_ls(adapter: Adapter, args) -> int:
    for name in adapter.listdir(args.path):
        if args.long:
            st = adapter.stat(args.path.rstrip("/") + "/" + name)
            kind = "d" if stat_mod.S_ISDIR(st.st_mode) else "-"
            print(f"{kind} {st.st_size:12d} {name}")
        else:
            print(name)
    return 0


def _cmd_cat(adapter: Adapter, args) -> int:
    sys.stdout.buffer.write(adapter.read_bytes(args.path))
    return 0


def _cmd_put(adapter: Adapter, args) -> int:
    with open(args.local, "rb") as f:
        data = f.read()
    n = adapter.write_bytes(args.remote, data)
    print(f"wrote {n} bytes to {args.remote}")
    return 0


def _cmd_get(adapter: Adapter, args) -> int:
    data = adapter.read_bytes(args.remote)
    with open(args.local, "wb") as f:
        f.write(data)
    print(f"fetched {len(data)} bytes to {args.local}")
    return 0


def _cmd_rm(adapter: Adapter, args) -> int:
    adapter.unlink(args.path)
    return 0


def _cmd_mkdir(adapter: Adapter, args) -> int:
    adapter.makedirs(args.path) if args.parents else adapter.mkdir(args.path)
    return 0


def _cmd_stat(adapter: Adapter, args) -> int:
    st = adapter.stat(args.path)
    print(f"size  {st.st_size}")
    print(f"mode  {oct(st.st_mode)}")
    print(f"inode {st.st_ino}")
    print(f"mtime {st.st_mtime}")
    return 0


def _cmd_statfs(adapter: Adapter, args) -> int:
    fs = adapter.statfs(args.path)
    print(f"total {fs.total_bytes}")
    print(f"free  {fs.free_bytes}")
    return 0


def _cmd_acl(adapter: Adapter, args) -> int:
    host, port, inner = _endpoint_of(args.path)
    client = adapter.pool.get(host, port)
    if args.acl_op == "get":
        sys.stdout.write(client.getacl(inner).to_text())
    else:
        client.setacl(inner, args.subject, args.rights)
    return 0


def _cmd_whoami(adapter: Adapter, args) -> int:
    host, port, _ = _endpoint_of(args.path)
    print(adapter.pool.get(host, port).whoami())
    return 0


def _cmd_catalog(adapter: Adapter, args) -> int:
    host, _, port = args.catalog.rpartition(":")
    sys.stdout.write(query_catalog(host, int(port), args.format))
    return 0


def _cmd_fsck(adapter: Adapter, args) -> int:
    from repro.core.dsfs import DSFS
    from repro.core.fsck import fsck_volume

    parts = args.volume.strip("/").split("/")
    if len(parts) != 2 or parts[0] != "dsfs" or "@" not in parts[1]:
        raise SystemExit("tss fsck expects /dsfs/<host:port>@<volume>")
    endpoint_text, _, volume = parts[1].partition("@")
    host, _, port = endpoint_text.rpartition(":")
    fs = DSFS.open_volume(adapter.pool, host, int(port), "/" + volume)
    report = fsck_volume(
        fs, remove_dangling=args.repair, remove_orphans=args.repair
    )
    print(f"checked   {report.files_checked} files, {report.directories_checked} dirs")
    print(f"healthy   {report.healthy}")
    for path, reason in report.dangling_stubs.items():
        print(f"dangling  {path}  ({reason})")
    for host_, port_, path in report.orphan_data:
        print(f"orphan    {host_}:{port_}{path}")
    if args.repair:
        print(f"removed   {report.removed_stubs} stubs, {report.removed_orphans} orphans")
    print("clean" if report.clean else "NOT CLEAN")
    return 0 if (report.clean or args.repair) else 1


def _cmd_store_scrub(adapter: Adapter, args) -> int:
    from repro.store.cas import CasStore
    from repro.transport.metrics import default_registry

    store = CasStore(args.root)
    default_registry().attach_section("store", store)
    report = store.scrub(quarantine=args.quarantine)
    if args.json:
        # Machine-readable form: what a keeper ingests
        # (Keeper.ingest_scrub_report) and what CI archives as an
        # artifact.  Same exit-code contract as the human form.
        print(json.dumps(report, sort_keys=True))
        return 0 if not report["corrupt"] else 1
    print(f"objects   {report['objects']}")
    print(f"ok        {report['ok']}")
    for key in report["corrupt"]:
        print(f"corrupt   {key}")
    for key in report["quarantined"]:
        print(f"quarantined {key}")
    for key in report["orphans"]:
        print(f"orphan    {key}")
    print("clean" if not report["corrupt"] else "NOT CLEAN")
    return 0 if not report["corrupt"] else 1


def _cmd_keeper(adapter: Adapter, args) -> int:
    import logging

    from repro.catalog.client import CatalogClient
    from repro.core.dsdb import DSDB
    from repro.db.client import DatabaseClient
    from repro.gems.keeper import Keeper, KeeperConfig
    from repro.gems.policy import BudgetGreedyPolicy, FixedCountPolicy

    if args.verbose:
        logging.basicConfig(
            level=logging.INFO,
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )
    db_host, _, db_port = args.db.rpartition(":")
    servers = []
    for spec in args.server:
        host, _, port = spec.rpartition(":")
        servers.append((host, int(port)))
    catalogs = []
    for spec in args.catalog:
        host, _, port = spec.rpartition(":")
        catalogs.append((host, int(port)))
    if not servers and not catalogs:
        print("tss keeper needs --server and/or --catalog", file=sys.stderr)
        return 2
    catalog = CatalogClient(catalogs) if catalogs else None
    if catalog is not None and not servers:
        # Bootstrap the server set from the catalog before building the
        # DSDB (which requires at least one server).
        reports = catalog.try_discover()
        servers = [
            (r.host, r.port) for r in (reports or []) if r.type == "chirp"
        ]
        if not servers:
            print("tss keeper: no servers discovered from catalog", file=sys.stderr)
            return 1
    if args.budget_bytes is not None:
        policy = BudgetGreedyPolicy(args.budget_bytes)
    else:
        policy = FixedCountPolicy(args.copies)
    db = DatabaseClient(db_host, int(db_port))
    try:
        dsdb = DSDB(db, adapter.pool, servers, volume=args.volume)
        keeper = Keeper(
            dsdb,
            policy,
            KeeperConfig(
                state_dir=args.state_dir,
                scan_batch=args.scan_batch,
                records_per_sec=args.records_per_sec,
                repair_bytes_per_sec=args.repair_bytes_per_sec,
                catalog_lifetime=args.catalog_lifetime,
                tick_interval=args.tick_interval,
                audit_mode=args.audit_mode,
            ),
            catalog=catalog,
        )
        if args.passes is not None:
            ticks = keeper.run_passes(args.passes)
            snap = keeper.snapshot()
            print(f"passes    {args.passes} ({len(ticks)} ticks)")
            print(f"scanned   {snap['records_scanned']} records")
            print(f"dropped   {snap['dropped']} bad replicas")
            print(f"repaired  {snap['repairs_committed']} "
                  f"(+{snap['proactive_copies']} proactive, "
                  f"{snap['repairs_aborted']} aborted)")
            keeper.journal.close()
            return 0
        from repro.util.signals import GracefulSignals

        keeper.start()
        print(f"tss keeper: guarding volume {args.volume!r} "
              f"({len(servers)} servers); journal in {args.state_dir}",
              flush=True)
        signals = GracefulSignals().install()
        signals.wait()
        keeper.stop()
        return 0
    finally:
        db.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="tss", description=__doc__)
    parser.add_argument(
        "--cache-mode",
        default="off",
        choices=CACHE_MODES,
        help="client-side caching: off (paper semantics, default), "
        "private (data+meta, single-writer), ttl (bounded-staleness meta)",
    )
    parser.add_argument(
        "--cache-ttl", type=float, default=2.0,
        help="metadata TTL in seconds for --cache-mode=ttl",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=64 * 1024 * 1024,
        help="block cache byte budget for --cache-mode=private",
    )
    parser.add_argument(
        "--cache-block-size", type=int, default=64 * 1024,
        help="block cache granularity in bytes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("ls", help="list a directory")
    p.add_argument("path")
    p.add_argument("-l", "--long", action="store_true")
    p.set_defaults(fn=_cmd_ls)

    p = sub.add_parser("cat", help="print a file")
    p.add_argument("path")
    p.set_defaults(fn=_cmd_cat)

    p = sub.add_parser("put", help="upload a local file")
    p.add_argument("local")
    p.add_argument("remote")
    p.set_defaults(fn=_cmd_put)

    p = sub.add_parser("get", help="download to a local file")
    p.add_argument("remote")
    p.add_argument("local")
    p.set_defaults(fn=_cmd_get)

    p = sub.add_parser("rm", help="delete a file")
    p.add_argument("path")
    p.set_defaults(fn=_cmd_rm)

    p = sub.add_parser("mkdir", help="create a directory")
    p.add_argument("path")
    p.add_argument("-p", "--parents", action="store_true")
    p.set_defaults(fn=_cmd_mkdir)

    p = sub.add_parser("stat", help="show file metadata")
    p.add_argument("path")
    p.set_defaults(fn=_cmd_stat)

    p = sub.add_parser("statfs", help="show capacity")
    p.add_argument("path")
    p.set_defaults(fn=_cmd_statfs)

    p = sub.add_parser("acl", help="get or set directory ACLs")
    p.add_argument("acl_op", choices=("get", "set"))
    p.add_argument("path")
    p.add_argument("subject", nargs="?")
    p.add_argument("rights", nargs="?")
    p.set_defaults(fn=_cmd_acl)

    p = sub.add_parser("whoami", help="show the authenticated subject")
    p.add_argument("path", help="any path on the target server")
    p.set_defaults(fn=_cmd_whoami)

    p = sub.add_parser("catalog", help="query a catalog server")
    p.add_argument("catalog", metavar="HOST:PORT")
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.set_defaults(fn=_cmd_catalog)

    p = sub.add_parser(
        "keeper", help="run the GEMS self-healing daemon over a DSDB"
    )
    p.add_argument("--db", required=True, metavar="HOST:PORT",
                   help="metadata database server")
    p.add_argument("--server", action="append", default=[],
                   metavar="HOST:PORT", help="file server (repeatable)")
    p.add_argument("--catalog", action="append", default=[],
                   metavar="HOST:PORT",
                   help="catalog for dynamic membership (repeatable)")
    p.add_argument("--volume", default="dsdb")
    p.add_argument("--state-dir", default=".tss-keeper",
                   help="where the scan cursor and repair journal live")
    p.add_argument("--budget-bytes", type=int, default=None,
                   help="replicate up to this many stored bytes (GEMS budget)")
    p.add_argument("--copies", type=int, default=2,
                   help="target copies per record when no byte budget is given")
    p.add_argument("--passes", type=int, default=None,
                   help="run this many full scans and exit (default: run forever)")
    p.add_argument("--scan-batch", type=int, default=64)
    p.add_argument("--records-per-sec", type=float, default=None,
                   help="audit rate budget (default: unmetered)")
    p.add_argument("--repair-bytes-per-sec", type=float, default=None,
                   help="repair copy rate budget (default: unmetered)")
    p.add_argument("--catalog-lifetime", type=float, default=900.0,
                   help="seconds absent from the catalog before a server is suspect")
    p.add_argument("--tick-interval", type=float, default=1.0)
    p.add_argument("--audit-mode", choices=("bytes", "key", "location"),
                   default=None,
                   help="replica audit strategy: 'key' compares content-"
                   "address keys in O(1) on CAS servers (falls back to "
                   "bytes elsewhere)")
    p.add_argument("--verbose", action="store_true",
                   help="log keeper activity (audits, repairs, membership)")
    p.set_defaults(fn=_cmd_keeper)

    p = sub.add_parser("store", help="inspect or repair a server's store")
    store_sub = p.add_subparsers(dest="store_op", required=True)
    ps = store_sub.add_parser(
        "scrub", help="verify every CAS blob hashes to its key"
    )
    ps.add_argument("root", help="store root directory (a --store cas server root)")
    ps.add_argument("--quarantine", action="store_true",
                    help="move corrupt blobs aside instead of just reporting")
    ps.add_argument("--json", action="store_true",
                    help="emit the scrub report as one JSON object "
                    "(exit status still 1 when corruption was found)")
    ps.set_defaults(fn=_cmd_store_scrub)

    p = sub.add_parser("fsck", help="audit (and repair) a DSFS volume")
    p.add_argument("volume", metavar="/dsfs/HOST:PORT@VOLUME")
    p.add_argument("--repair", action="store_true",
                   help="remove dangling stubs and orphan data files")
    p.set_defaults(fn=_cmd_fsck)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "acl" and args.acl_op == "set" and not (
        args.subject and args.rights
    ):
        print("tss acl set needs SUBJECT and RIGHTS", file=sys.stderr)
        return 2
    cache_policy = None
    if args.cache_mode != "off":
        cache_policy = CachePolicy(
            mode=args.cache_mode,
            meta_ttl=args.cache_ttl,
            capacity_bytes=args.cache_capacity,
            block_size=args.cache_block_size,
        )
    adapter = Adapter(cache_policy=cache_policy)
    try:
        return args.fn(adapter, args)
    except OSError as exc:
        print(f"tss: {exc}", file=sys.stderr)
        return 1
    finally:
        adapter.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
