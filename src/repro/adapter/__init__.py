"""The adapter: transparently connecting applications to abstractions.

This package plays the role of Parrot in the paper: it re-implements the
Unix I/O surface in user space and routes it to TSS abstractions, without
kernel changes or special privileges.

Where the real Parrot traps system calls via the ptrace debugging
interface, a Python reproduction traps the *Python* syscall surface:
:class:`repro.adapter.adapter.Adapter` exposes ``open/stat/listdir/...``
with POSIX semantics (raising ``OSError`` with correct errno), and
:func:`repro.adapter.interpose.interposed` monkey-patches ``builtins.open``
and the relevant ``os`` functions so *unmodified application code* works
on TSS paths (see DESIGN.md, substitutions table).

Namespace (paper, section 6): abstractions appear as top-level entries --
``/cfs/<host:port>/path`` and ``/dsfs/<host:port>@<volume>/path`` -- and a
*mountlist* maps private logical names onto them, e.g.::

    /usr/local  /cfs/shared.cse.nd.edu:9094/software
    /data       /dsfs/archive.cse.nd.edu:9094@run5/data
"""

from repro.adapter.mountlist import Mountlist
from repro.adapter.adapter import Adapter
from repro.adapter.fileobj import AdapterFile
from repro.adapter.interpose import interposed

__all__ = ["Adapter", "Mountlist", "AdapterFile", "interposed"]
