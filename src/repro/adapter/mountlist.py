"""Mountlists: private namespaces mapping logical names to abstractions.

"An application can be given a 'mountlist' that creates a private
namespace by mapping logical names to external abstractions."  A
mountlist is an ordered set of ``logical-prefix -> target-prefix`` rules;
translation rewrites the longest matching logical prefix (at a path
component boundary) and may chase a bounded number of chained rules, so a
logical name may map onto another logical name.
"""

from __future__ import annotations

from repro.util.paths import normalize_virtual

__all__ = ["Mountlist"]

_MAX_CHAIN = 8


class Mountlist:
    """Ordered prefix-rewriting rules for a private namespace."""

    def __init__(self):
        self._rules: list[tuple[str, str]] = []

    def add(self, logical: str, target: str) -> None:
        logical = normalize_virtual(logical)
        if logical == "/":
            raise ValueError("cannot remap the root")
        self._rules.append((logical, target.rstrip("/") or "/"))
        # Longest prefix first so /a/b shadows /a.
        self._rules.sort(key=lambda r: len(r[0]), reverse=True)

    @classmethod
    def from_text(cls, text: str) -> "Mountlist":
        """Parse the two-column file format shown in the paper."""
        ml = cls()
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed mountlist line {line!r}")
            ml.add(parts[0], parts[1])
        return ml

    def to_text(self) -> str:
        return "".join(f"{logical} {target}\n" for logical, target in self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def translate(self, path: str) -> str:
        """Rewrite ``path`` through the rules (bounded chain)."""
        current = normalize_virtual(path)
        for _ in range(_MAX_CHAIN):
            replaced = self._translate_once(current)
            if replaced is None:
                return current
            current = replaced
        raise ValueError(f"mountlist loop translating {path!r}")

    def _translate_once(self, path: str) -> str | None:
        for logical, target in self._rules:
            if path == logical:
                return target
            if path.startswith(logical + "/"):
                return target + path[len(logical):]
        return None
