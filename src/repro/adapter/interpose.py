"""Interposition: running *unmodified* application code against the TSS.

The real Parrot halts a process at every system call via ptrace and
supplies its own implementation.  The honest Python analog is to replace
the Python-level syscall surface -- ``builtins.open`` and the ``os``
namespace functions -- for the duration of a context::

    with interposed(adapter):
        legacy_main()        # opens /cfs/host:9094/data/input unchanged

Only paths the adapter *claims* (mountlist entries, explicit mounts, and
the built-in ``/cfs``//``/dsfs`` namespaces) are redirected; everything
else falls through to the original functions, so ordinary local I/O is
untouched.  ``os.path.exists``/``isfile``/``isdir`` work automatically
because they call ``os.stat`` by attribute lookup at call time.

The patch is process-global (like ptrace) and not safe to nest with a
*different* adapter concurrently; re-entrant use of the same adapter is
fine.
"""

from __future__ import annotations

import builtins
import contextlib
import os
import threading
from typing import Iterator

from repro.adapter.adapter import Adapter

__all__ = ["interposed"]

_lock = threading.Lock()


def _is_tss_path(adapter: Adapter, path) -> bool:
    if not isinstance(path, str):
        path = os.fspath(path) if isinstance(path, os.PathLike) else path
        if not isinstance(path, str):
            return False
    if not path.startswith("/"):
        return False
    return adapter.claims(path)


@contextlib.contextmanager
def interposed(adapter: Adapter) -> Iterator[Adapter]:
    """Patch the Python syscall surface to route TSS paths via ``adapter``."""

    originals = {
        "open": builtins.open,
        "os.stat": os.stat,
        "os.lstat": os.lstat,
        "os.listdir": os.listdir,
        "os.unlink": os.unlink,
        "os.remove": os.remove,
        "os.rename": os.rename,
        "os.replace": os.replace,
        "os.mkdir": os.mkdir,
        "os.makedirs": os.makedirs,
        "os.rmdir": os.rmdir,
        "os.truncate": os.truncate,
        "os.utime": os.utime,
    }

    def open_(file, mode="r", buffering=-1, encoding=None, errors=None,
              newline=None, closefd=True, opener=None):
        if _is_tss_path(adapter, file):
            return adapter.open(
                os.fspath(file), mode, buffering, encoding, errors, newline
            )
        return originals["open"](
            file, mode, buffering, encoding, errors, newline, closefd, opener
        )

    def _route(name, tss_fn):
        orig = originals[name]

        def wrapper(path, *args, **kwargs):
            if _is_tss_path(adapter, path):
                return tss_fn(os.fspath(path), *args, **kwargs)
            return orig(path, *args, **kwargs)

        wrapper.__name__ = orig.__name__
        return wrapper

    def stat_(path, *args, dir_fd=None, follow_symlinks=True):
        if _is_tss_path(adapter, path):
            if follow_symlinks:
                return adapter.stat(os.fspath(path))
            return adapter.lstat(os.fspath(path))
        return originals["os.stat"](
            path, *args, dir_fd=dir_fd, follow_symlinks=follow_symlinks
        )

    def lstat_(path, *args, dir_fd=None):
        if _is_tss_path(adapter, path):
            return adapter.lstat(os.fspath(path))
        return originals["os.lstat"](path, *args, dir_fd=dir_fd)

    def rename_(src, dst, *args, **kwargs):
        src_tss = _is_tss_path(adapter, src)
        dst_tss = _is_tss_path(adapter, dst)
        if src_tss and dst_tss:
            return adapter.rename(os.fspath(src), os.fspath(dst))
        if src_tss or dst_tss:
            raise OSError(18, "rename between TSS and local namespaces")
        return originals["os.rename"](src, dst, *args, **kwargs)

    def utime_(path, times=None, **kwargs):
        if _is_tss_path(adapter, path):
            if times is None:
                import time as _time

                now = int(_time.time())
                times = (now, now)
            return adapter.utime(os.fspath(path), times)
        return originals["os.utime"](path, times, **kwargs)

    def mkdir_(path, mode=0o777, *args, **kwargs):
        if _is_tss_path(adapter, path):
            return adapter.mkdir(os.fspath(path), mode)
        return originals["os.mkdir"](path, mode, *args, **kwargs)

    def makedirs_(path, mode=0o777, exist_ok=False):
        if _is_tss_path(adapter, path):
            try:
                return adapter.makedirs(os.fspath(path), mode)
            except FileExistsError:
                if not exist_ok:
                    raise
                return None
        return originals["os.makedirs"](path, mode, exist_ok=exist_ok)

    patches = {
        "open": open_,
        "os.stat": stat_,
        "os.lstat": lstat_,
        "os.listdir": _route("os.listdir", adapter.listdir),
        "os.unlink": _route("os.unlink", adapter.unlink),
        "os.remove": _route("os.remove", adapter.unlink),
        "os.rename": rename_,
        "os.replace": rename_,
        "os.mkdir": mkdir_,
        "os.makedirs": makedirs_,
        "os.rmdir": _route("os.rmdir", adapter.rmdir),
        "os.truncate": _route("os.truncate", adapter.truncate),
        "os.utime": utime_,
    }

    with _lock:
        builtins.open = patches["open"]
        for name, fn in patches.items():
            if name.startswith("os."):
                setattr(os, name[3:], fn)
    try:
        yield adapter
    finally:
        with _lock:
            builtins.open = originals["open"]
            for name, fn in originals.items():
                if name.startswith("os."):
                    setattr(os, name[3:], fn)
