"""File objects the adapter hands to applications.

:class:`AdapterFile` is a :class:`io.RawIOBase`: *unbuffered*, because the
paper's adapter "performs no buffering or caching before sending data to
a file server: it sends all operations to the server in the order that
they are issued."  Each ``read``/``write`` maps to one ``pread``/``pwrite``
on the underlying abstraction handle; seek state lives here, client-side,
exactly as the Chirp protocol intends.

Text mode (via :meth:`repro.adapter.adapter.Adapter.open`) wraps this raw
object in Python's buffered/text layers for convenience; that *does*
introduce client-side buffering and is documented as a deviation -- pass
``buffering=0`` and binary mode for faithful semantics.
"""

from __future__ import annotations

import io
import os

from repro.core.interface import FileHandle
from repro.util.errors import ChirpError, oserror_from_status

__all__ = ["AdapterFile"]


class AdapterFile(io.RawIOBase):
    """An unbuffered, seekable binary file over an abstraction handle."""

    def __init__(self, handle: FileHandle, name: str, readable: bool, writable: bool, append: bool = False):
        super().__init__()
        self._handle = handle
        self.name = name
        self._readable = readable
        self._writable = writable
        self._append = append
        self._pos = 0
        if append:
            self._pos = self._size()

    # -- capability flags ---------------------------------------------------

    def readable(self) -> bool:
        return self._readable

    def writable(self) -> bool:
        return self._writable

    def seekable(self) -> bool:
        return True

    def fileno(self) -> int:
        raise OSError("TSS files have no kernel file descriptor")

    # -- plumbing -------------------------------------------------------

    def _size(self) -> int:
        return self._translate(lambda: self._handle.fstat().size)

    @staticmethod
    def _translate(op):
        try:
            return op()
        except ChirpError as exc:
            raise oserror_from_status(int(exc.status), str(exc)) from exc

    def _check_open(self) -> None:
        if self.closed:
            raise ValueError("I/O operation on closed file")

    # -- positioning ------------------------------------------------------

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        self._check_open()
        if whence == os.SEEK_SET:
            new = offset
        elif whence == os.SEEK_CUR:
            new = self._pos + offset
        elif whence == os.SEEK_END:
            new = self._size() + offset
        else:
            raise ValueError(f"invalid whence {whence}")
        if new < 0:
            raise OSError(22, "negative seek position")
        self._pos = new
        return self._pos

    def tell(self) -> int:
        self._check_open()
        return self._pos

    # -- data path ----------------------------------------------------------

    def readinto(self, b) -> int:
        self._check_open()
        if not self._readable:
            raise io.UnsupportedOperation("file not open for reading")
        view = memoryview(b)
        data = self._translate(lambda: self._handle.pread(len(view), self._pos))
        view[: len(data)] = data
        self._pos += len(data)
        return len(data)

    def write(self, b) -> int:
        self._check_open()
        if not self._writable:
            raise io.UnsupportedOperation("file not open for writing")
        data = bytes(b)
        if self._append:
            self._pos = self._size()
        n = self._translate(lambda: self._handle.pwrite(data, self._pos))
        self._pos += n
        return n

    def truncate(self, size: int | None = None) -> int:
        self._check_open()
        if not self._writable:
            raise io.UnsupportedOperation("file not open for writing")
        target = self._pos if size is None else size
        self._translate(lambda: self._handle.ftruncate(target))
        return target

    def fsync(self) -> None:
        """Force the server to flush (exposed beyond the io protocol)."""
        self._check_open()
        self._translate(self._handle.fsync)

    def stat(self):
        from repro.core.interface import to_stat_result

        self._check_open()
        return to_stat_result(self._translate(self._handle.fstat))

    def close(self) -> None:
        if not self.closed:
            try:
                self._handle.close()
            finally:
                super().close()
