"""The adapter's POSIX surface: open/stat/listdir/... over abstractions.

The adapter resolves every path in three steps:

1. the *mountlist* rewrites private logical names,
2. explicit mounts (``adapter.mount('/data', some_fs)``) match by longest
   prefix -- any :class:`~repro.core.interface.Filesystem` can be mounted,
   including a :class:`~repro.core.localfs.LocalFilesystem` or a DPFS,
3. the built-in namespaces ``/cfs/<host:port>/...`` and
   ``/dsfs/<host:port>@<volume>/...`` construct abstractions on demand
   from the adapter's connection pool.

Errors cross this surface as ``OSError`` with correct ``errno`` values,
because applications written against the Unix interface expect exactly
that.  Disconnection recovery (exponential backoff, re-open, inode check,
``ESTALE``) happens below, in the abstraction handles, governed by the
:class:`~repro.core.retry.RetryPolicy` given to this adapter.
"""

from __future__ import annotations

import errno
import io
import threading
from typing import Optional, Union

from repro.auth.methods import ClientCredentials
from repro.adapter.fileobj import AdapterFile
from repro.adapter.mountlist import Mountlist
from repro.cache.manager import CacheManager
from repro.cache.policy import CachePolicy
from repro.chirp.protocol import OpenFlags, StatFs
from repro.core.cfs import CFS
from repro.core.dsfs import DSFS
from repro.core.interface import Filesystem, StatResult, to_stat_result
from repro.core.pool import ClientPool
from repro.transport.metrics import MetricsRegistry
from repro.transport.recovery import RetryPolicy
from repro.util.errors import ChirpError, oserror_from_status
from repro.util.paths import normalize_virtual

__all__ = ["Adapter"]


def _oserror(exc: ChirpError, path: str) -> OSError:
    return oserror_from_status(int(exc.status), str(exc), path)


def _parse_endpoint(component: str) -> tuple[str, int]:
    host, sep, port = component.rpartition(":")
    if not sep:
        raise OSError(errno.ENOENT, f"expected host:port, got {component!r}")
    try:
        return host, int(port)
    except ValueError:
        raise OSError(errno.ENOENT, f"bad port in {component!r}") from None


class Adapter:
    """One application's window onto the TSS.

    :param pool: shared connection pool (created from ``credentials`` if
        omitted).
    :param policy: reconnection policy for every handle opened here.
    :param sync_writes: the paper's synchronous-write switch --
        transparently appends ``O_SYNC`` to all opens.
    :param mountlist: private namespace (may also be grown via
        :meth:`add_mount_rule`).
    :param max_conns_per_endpoint: connection cap handed to the pool this
        adapter creates (ignored when ``pool`` is supplied).
    :param metrics: registry observing this adapter's transport traffic
        (ignored when ``pool`` is supplied).
    :param cache_policy: opt-in client-side caching for the abstractions
        this adapter builds (see :mod:`repro.cache.policy` for the
        coherence contract of each mode).  Default: no caching -- the
        paper's semantics.  With a ``pool`` supplied externally, the
        pool's sessions are left as-is (metadata caching happens at the
        filesystem layer only); a pool created here carries the cache
        into every session.  The manager appears as the ``cache`` section
        of the pool's metrics snapshot.
    """

    def __init__(
        self,
        pool: Optional[ClientPool] = None,
        credentials: Optional[ClientCredentials] = None,
        policy: Optional[RetryPolicy] = None,
        sync_writes: bool = False,
        mountlist: Optional[Mountlist] = None,
        max_conns_per_endpoint: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        cache_policy: Optional[CachePolicy] = None,
    ):
        # The registry holds attached sections weakly; this strong ref is
        # what keeps the manager alive for the adapter's lifetime.
        self.cache: Optional[CacheManager] = None
        if cache_policy is not None and cache_policy.mode != "off":
            self.cache = CacheManager(cache_policy)
        if pool is None:
            kwargs = {}
            if max_conns_per_endpoint is not None:
                kwargs["max_conns_per_endpoint"] = max_conns_per_endpoint
            if metrics is not None:
                kwargs["metrics"] = metrics
            pool = ClientPool(credentials, policy=policy, cache=self.cache, **kwargs)
        self.pool = pool
        if self.cache is not None:
            self.pool.metrics.attach_section("cache", self.cache)
        self.policy = policy or RetryPolicy()
        self.sync_writes = sync_writes
        self.mountlist = mountlist or Mountlist()
        self._mounts: list[tuple[str, Filesystem]] = []
        self._auto_cache: dict[str, Filesystem] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------

    def mount(self, prefix: str, fs: Filesystem) -> None:
        """Attach any abstraction at a namespace prefix."""
        prefix = normalize_virtual(prefix)
        if prefix == "/":
            raise ValueError("cannot mount over the root")
        with self._lock:
            self._mounts = [(p, f) for p, f in self._mounts if p != prefix]
            self._mounts.append((prefix, fs))
            self._mounts.sort(key=lambda m: len(m[0]), reverse=True)

    def unmount(self, prefix: str) -> None:
        prefix = normalize_virtual(prefix)
        with self._lock:
            self._mounts = [(p, f) for p, f in self._mounts if p != prefix]

    def add_mount_rule(self, logical: str, target: str) -> None:
        """Add a mountlist rewrite rule (logical name -> target path)."""
        self.mountlist.add(logical, target)

    def claims(self, path: str) -> bool:
        """Would this adapter handle ``path``?  (Used by interposition.)"""
        try:
            self.resolve(path)
            return True
        except OSError:
            return False

    def resolve(self, path: str) -> tuple[Filesystem, str]:
        """Map a user path to ``(filesystem, inner_path)``."""
        full = self.mountlist.translate(path)
        with self._lock:
            mounts = list(self._mounts)
        for prefix, fs in mounts:
            if full == prefix:
                return fs, "/"
            if full.startswith(prefix + "/"):
                return fs, full[len(prefix):]
        if full.startswith("/cfs/"):
            return self._auto_cfs(full)
        if full.startswith("/dsfs/"):
            return self._auto_dsfs(full)
        raise OSError(errno.ENOENT, f"path {path!r} is outside the TSS namespace")

    def _auto_cfs(self, full: str) -> tuple[Filesystem, str]:
        rest = full[len("/cfs/"):]
        endpoint_text, _, inner = rest.partition("/")
        if not endpoint_text:
            raise OSError(errno.ENOENT, "expected /cfs/<host:port>/...")
        key = f"cfs:{endpoint_text}"
        with self._lock:
            fs = self._auto_cache.get(key)
        if fs is None:
            host, port = _parse_endpoint(endpoint_text)
            try:
                client = self.pool.get(host, port)
            except ChirpError as exc:
                raise _oserror(exc, full) from exc
            fs = CFS(
                client,
                policy=self.policy,
                sync_writes=self.sync_writes,
                cache=self.cache,
            )
            with self._lock:
                self._auto_cache.setdefault(key, fs)
        return fs, "/" + inner

    def _auto_dsfs(self, full: str) -> tuple[Filesystem, str]:
        rest = full[len("/dsfs/"):]
        spec, _, inner = rest.partition("/")
        endpoint_text, sep, volume = spec.partition("@")
        if not sep or not volume:
            raise OSError(errno.ENOENT, "expected /dsfs/<host:port>@<volume>/...")
        key = f"dsfs:{spec}"
        with self._lock:
            fs = self._auto_cache.get(key)
        if fs is None:
            host, port = _parse_endpoint(endpoint_text)
            try:
                fs = DSFS.open_volume(
                    self.pool,
                    host,
                    port,
                    "/" + volume,
                    policy=self.policy,
                    sync_writes=self.sync_writes,
                    cache=self.cache,
                )
            except ChirpError as exc:
                raise _oserror(exc, full) from exc
            except ValueError as exc:
                raise OSError(errno.ENOENT, f"{spec}: {exc}") from exc
            with self._lock:
                self._auto_cache.setdefault(key, fs)
        return fs, "/" + inner

    # ------------------------------------------------------------------
    # the syscall surface
    # ------------------------------------------------------------------

    def open(
        self,
        path: str,
        mode: str = "r",
        buffering: int = -1,
        encoding: Optional[str] = None,
        errors: Optional[str] = None,
        newline: Optional[str] = None,
    ) -> io.IOBase:
        """``builtins.open`` semantics over the TSS namespace.

        Binary mode returns the *unbuffered* :class:`AdapterFile` (faithful
        to the paper's no-caching rule) unless buffering is requested;
        text mode wraps it in Python's buffered+text layers.
        """
        fs, inner = self.resolve(path)
        binary = "b" in mode
        flags = OpenFlags.parse_mode_string(mode)
        try:
            handle = fs.open(inner, flags)
        except ChirpError as exc:
            raise _oserror(exc, path) from exc
        raw = AdapterFile(
            handle,
            name=path,
            readable=flags.read,
            writable=flags.write,
            append=flags.append,
        )
        if binary:
            if buffering in (-1, 0):
                return raw
            return self._buffer(raw, buffering)
        if buffering == 0:
            raise ValueError("can't have unbuffered text I/O")
        buffered = self._buffer(raw, buffering if buffering > 0 else io.DEFAULT_BUFFER_SIZE)
        return io.TextIOWrapper(
            buffered, encoding=encoding or "utf-8", errors=errors, newline=newline
        )

    @staticmethod
    def _buffer(raw: AdapterFile, size: int) -> io.BufferedIOBase:
        if raw.readable() and raw.writable():
            return io.BufferedRandom(raw, size)
        if raw.writable():
            return io.BufferedWriter(raw, size)
        return io.BufferedReader(raw, size)

    def _fs_call(self, path: str, op_name: str, *args):
        fs, inner = self.resolve(path)
        try:
            return getattr(fs, op_name)(inner, *args)
        except ChirpError as exc:
            raise _oserror(exc, path) from exc

    def stat(self, path: str) -> StatResult:
        return to_stat_result(self._fs_call(path, "stat"))

    def lstat(self, path: str) -> StatResult:
        return to_stat_result(self._fs_call(path, "lstat"))

    def listdir(self, path: str) -> list[str]:
        return self._fs_call(path, "listdir")

    def unlink(self, path: str) -> None:
        self._fs_call(path, "unlink")

    remove = unlink

    def rename(self, old: str, new: str) -> None:
        fs_old, inner_old = self.resolve(old)
        fs_new, inner_new = self.resolve(new)
        if fs_old is not fs_new:
            raise OSError(errno.EXDEV, "rename across TSS abstractions")
        try:
            fs_old.rename(inner_old, inner_new)
        except ChirpError as exc:
            raise _oserror(exc, old) from exc

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._fs_call(path, "mkdir", mode)

    def makedirs(self, path: str, mode: int = 0o755) -> None:
        fs, inner = self.resolve(path)
        try:
            fs.makedirs(inner, mode)
        except ChirpError as exc:
            raise _oserror(exc, path) from exc

    def rmdir(self, path: str) -> None:
        self._fs_call(path, "rmdir")

    def truncate(self, path: str, size: int) -> None:
        self._fs_call(path, "truncate", size)

    def utime(self, path: str, times: tuple[int, int]) -> None:
        self._fs_call(path, "utime", int(times[0]), int(times[1]))

    def exists(self, path: str) -> bool:
        try:
            self.stat(path)
            return True
        except OSError:
            return False

    def statfs(self, path: str) -> StatFs:
        fs, _ = self.resolve(path)
        try:
            return fs.statfs()
        except ChirpError as exc:
            raise _oserror(exc, path) from exc

    def read_bytes(self, path: str) -> bytes:
        fs, inner = self.resolve(path)
        try:
            return fs.read_file(inner)
        except ChirpError as exc:
            raise _oserror(exc, path) from exc

    def write_bytes(self, path: str, data: bytes) -> int:
        fs, inner = self.resolve(path)
        try:
            return fs.write_file(inner, data)
        except ChirpError as exc:
            raise _oserror(exc, path) from exc

    def walk(self, top: str):
        fs, inner = self.resolve(top)
        prefix = top.rstrip("/")
        inner_prefix = inner.rstrip("/")
        for dirpath, dirnames, filenames in fs.walk(inner):
            suffix = dirpath[len(inner_prefix):] if inner_prefix else dirpath
            mapped = (prefix + suffix).rstrip("/") or "/"
            yield (mapped, dirnames, filenames)

    def close(self) -> None:
        if self.cache is not None:
            self.cache.close()
        self.pool.close()

    def __enter__(self) -> "Adapter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
