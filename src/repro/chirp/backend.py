"""The file server's abstraction layer: ACLs, quotas and handles over a store.

This module is the paper's separation made literal.  Everything a Chirp
server *means* -- the software chroot, ACL enforcement on every
operation, reserve-right ``mkdir`` semantics, hiding the ACL bookkeeping
files, quota -- lives here, in :class:`Backend`.  Everything a server
*stores on* lives behind the :class:`~repro.store.BlobStore` interface
(local directory, RAM, content-addressed blobs), so the abstraction is
identical no matter which resource serves it.

ACL files travel through the store like any other blob: the backend
reads and writes ``.__acl`` entries with ``read_blob``/``write_blob``
and never touches the disk directly, so a CAS store's ACLs are
deduplicated pointer records while a local store's are the exact bytes
the pre-refactor code wrote.

Rights required per operation (one judgment call documented here: the
paper presents ``D`` as a way to grant *delete-but-not-modify* to others,
so deletion is allowed to holders of **either** ``w`` or ``d``; a strict
D-only rule would leave the paper's own ``v(rwla)`` visitors unable to
delete their dangling stub files):

===============  ================================================
open (read)      ``r`` on the containing directory
open (write)     ``w`` on the containing directory
stat/access      ``l`` on the containing directory
getdir           ``l`` on the directory itself
unlink           ``w`` or ``d`` on the containing directory
rename           ``w``/``d`` on the source dir, ``w`` on the target dir
mkdir            ``v`` (reserve semantics) else ``w`` on the parent
rmdir            ``w`` or ``d`` on the parent; directory must be empty
getacl           ``l`` on the directory
setacl           ``a`` on the directory
putkey           ``w`` on the containing directory
keyof            ``r`` on the containing directory
lookup           ``l`` on the root
===============  ================================================
"""

from __future__ import annotations

import logging
import posixpath
import threading
import time

from repro.auth.acl import ACL_FILE_NAME, Acl, parse_rights
from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.store import BlobHandle, BlobStore, LocalDirStore
from repro.util.errors import (
    AlreadyExistsError,
    BadFileDescriptorError,
    ChirpError,
    DoesNotExistError,
    InvalidRequestError,
    NoSpaceError,
    NotAuthorizedError,
    TryAgainError,
    UnknownError,
)
from repro.util.paths import normalize_virtual, split_virtual

__all__ = ["Backend", "LocalBackend"]

log = logging.getLogger("repro.chirp.backend")

#: name of the throwaway blob the degraded-mode recovery probe writes
PROBE_NAME = "/.tss-recovery-probe"


class Backend:
    """An ACL-enforcing, quota-tracking view over any :class:`BlobStore`.

    One backend serves all connections of one :class:`FileServer`; it is
    thread-safe (ACL copy-on-write and quota accounting take a lock;
    plain data-path I/O relies on the store, as the paper's CFS relies
    on the kernel).
    """

    def __init__(
        self,
        store: BlobStore,
        owner_subject: str,
        *,
        quota_bytes: int | None = None,
        root_acl: Acl | None = None,
        eio_degrade_threshold: int = 3,
        recovery_probe_interval: float = 5.0,
    ):
        self.store = store
        self.owner_subject = owner_subject
        self.quota_bytes = quota_bytes
        self._lock = threading.Lock()
        # Degraded read-only mode: the abstraction survives a failing
        # resource by refusing writes while still serving reads.  A
        # store-raised NO_SPACE flips the volume immediately; generic
        # I/O errors (UnknownError, the EIO mapping) flip it after
        # ``eio_degrade_threshold`` *consecutive* write failures.
        self.eio_degrade_threshold = eio_degrade_threshold
        self.recovery_probe_interval = recovery_probe_interval
        self.read_only = False
        self.read_only_reason = ""
        self._write_io_errors = 0
        self._last_probe = 0.0
        self._degraded_counters = {
            "degraded_entered": 0,
            "writes_refused": 0,
            "write_errors": 0,
            "recovered": 0,
            "recovery_probes": 0,
        }
        if self._load_acl("/") is None:
            self._store_acl("/", root_acl or Acl.owner_default(owner_subject))
        elif root_acl is not None:
            self._store_acl("/", root_acl)

    @property
    def root(self) -> str:
        """The store's on-disk root, when it has one ('' for memory)."""
        return getattr(self.store, "root", "")

    # ------------------------------------------------------------------
    # ACL plumbing (ACLs are blobs in the store)
    # ------------------------------------------------------------------

    @staticmethod
    def _acl_vpath(vdir: str) -> str:
        return posixpath.join(normalize_virtual(vdir), ACL_FILE_NAME)

    def _load_acl(self, vdir: str) -> Acl | None:
        try:
            data = self.store.try_read_blob(self._acl_vpath(vdir))
        except ChirpError:
            return None
        if data is None:
            return None
        return Acl.from_text(data.decode("utf-8"))

    def _store_acl(self, vdir: str, acl: Acl) -> None:
        self.store.write_blob(self._acl_vpath(vdir), acl.to_text().encode("utf-8"))

    def root_acl_text(self) -> str:
        """The root ACL as text (catalog reports advertise it)."""
        acl = self._load_acl("/")
        return acl.to_text() if acl is not None else ""

    @staticmethod
    def _forbid_acl_name(vpath: str) -> None:
        if posixpath.basename(normalize_virtual(vpath)) == ACL_FILE_NAME:
            raise NotAuthorizedError("ACL files are managed via getacl/setacl")

    def effective_acl(self, vdir: str) -> Acl:
        """The ACL governing a directory: its own, else the nearest ancestor's."""
        vdir = normalize_virtual(vdir)
        while True:
            acl = self._load_acl(vdir) if self.store.isdir(vdir) else None
            if acl is not None:
                return acl
            if vdir == "/":
                # Root ACL was created in __init__; reaching here means it
                # was deleted out from under us -- fail closed.
                return Acl()
            vdir = posixpath.dirname(vdir) or "/"

    def _check(self, subject: str, vdir: str, right: str) -> Acl:
        """Verify ``subject`` holds ``right`` on ``vdir``; returns the ACL."""
        acl = self.effective_acl(vdir)
        if subject == self.owner_subject:
            return acl
        if not acl.check(subject, right):
            raise NotAuthorizedError(
                f"subject {subject!r} lacks right {right!r} on {vdir!r}"
            )
        return acl

    def _check_any(self, subject: str, vdir: str, rights: str) -> Acl:
        """Verify the subject holds at least one of ``rights`` on ``vdir``."""
        acl = self.effective_acl(vdir)
        if subject == self.owner_subject:
            return acl
        held = acl.rights_for(subject).flags
        if not (held & set(rights)):
            raise NotAuthorizedError(
                f"subject {subject!r} lacks all of {rights!r} on {vdir!r}"
            )
        return acl

    # ------------------------------------------------------------------
    # degraded read-only mode
    # ------------------------------------------------------------------

    def _refuse_if_read_only(self) -> None:
        """Refuse a mutation while the volume is degraded.

        ENOSPC degradation answers ``NO_SPACE`` (the client's retry on
        another server is the right move); EIO degradation answers
        ``TRY_AGAIN`` (the disk may come back).  Deletions are *not*
        routed through here: freeing space is how an ENOSPC volume gets
        healthy again.
        """
        if not self.read_only:
            return
        with self._lock:
            self._degraded_counters["writes_refused"] += 1
        if self.read_only_reason == "enospc":
            raise NoSpaceError("volume is read-only (degraded: no space)")
        raise TryAgainError(
            f"volume is read-only (degraded: {self.read_only_reason})"
        )

    def record_write_error(self, exc: Exception) -> None:
        """Feed degraded-mode bookkeeping after a store write failed.

        Only *resource* failures count: a store-raised NO_SPACE flips
        the volume at once, a generic I/O error (UNKNOWN) after enough
        consecutive hits.  Policy refusals (quota, ACL, ENOENT...) are
        the abstraction working as designed, not the resource failing.
        """
        with self._lock:
            self._degraded_counters["write_errors"] += 1
        if isinstance(exc, NoSpaceError):
            self._enter_read_only("enospc")
        elif isinstance(exc, UnknownError):
            with self._lock:
                self._write_io_errors += 1
                tripped = self._write_io_errors >= self.eio_degrade_threshold
            if tripped:
                self._enter_read_only("eio")

    def record_write_ok(self) -> None:
        """A store write succeeded: reset the consecutive-EIO counter."""
        with self._lock:
            self._write_io_errors = 0

    def _enter_read_only(self, reason: str) -> None:
        with self._lock:
            if self.read_only:
                return
            self.read_only = True
            self.read_only_reason = reason
            self._degraded_counters["degraded_entered"] += 1
        log.warning("volume degraded to read-only (%s)", reason)

    def try_recover(self, *, force: bool = False) -> bool:
        """Probe the store and exit read-only mode if it works again.

        Writes, reads back, and unlinks a tiny probe blob *directly on
        the store* (bypassing the refusal gate).  Throttled to one probe
        per ``recovery_probe_interval`` unless ``force``.  Returns True
        when the volume recovered on this call.
        """
        if not self.read_only:
            return False
        now = time.monotonic()
        with self._lock:
            if not force and now - self._last_probe < self.recovery_probe_interval:
                return False
            self._last_probe = now
            self._degraded_counters["recovery_probes"] += 1
        try:
            self.store.write_blob(PROBE_NAME, b"probe")
            data = self.store.read_blob(PROBE_NAME)
            self.store.unlink(PROBE_NAME)
        except ChirpError:
            return False
        if data != b"probe":
            return False
        with self._lock:
            self.read_only = False
            self.read_only_reason = ""
            self._write_io_errors = 0
            self._degraded_counters["recovered"] += 1
        log.info("volume recovered from read-only mode")
        return True

    def _store_write(self, op, *args, **kwargs):
        """Run one store mutation, feeding degraded-mode bookkeeping."""
        try:
            result = op(*args, **kwargs)
        except ChirpError as exc:
            self.record_write_error(exc)
            raise
        self.record_write_ok()
        return result

    def snapshot(self) -> dict:
        """Degraded-mode state for the metrics ``volume`` section."""
        with self._lock:
            snap = dict(self._degraded_counters)
        snap["read_only"] = self.read_only
        snap["read_only_reason"] = self.read_only_reason
        return snap

    # ------------------------------------------------------------------
    # file I/O (handles come from the store; fd numbering is the
    # server's concern)
    # ------------------------------------------------------------------

    @staticmethod
    def _handle(handle) -> BlobHandle:
        if not isinstance(handle, BlobHandle):
            raise BadFileDescriptorError(f"not an open handle: {handle!r}")
        return handle

    def open(self, subject: str, vpath: str, flags: OpenFlags, mode: int) -> BlobHandle:
        """Open a file, returning a store handle."""
        self._forbid_acl_name(vpath)
        parent, _name = split_virtual(vpath)
        if flags.write or flags.create or flags.truncate:
            self._check(subject, parent, "w")
            self._refuse_if_read_only()
            return self._store_write(self.store.open, vpath, flags, mode)
        self._check(subject, parent, "r")
        return self.store.open(vpath, flags, mode)

    def close(self, handle) -> None:
        self._handle(handle).close()

    def pread(self, handle, length: int, offset: int) -> bytes:
        if length < 0 or offset < 0:
            raise InvalidRequestError("negative length or offset")
        return self._handle(handle).pread(length, offset)

    def pwrite(self, handle, data: bytes, offset: int) -> int:
        if offset < 0:
            raise InvalidRequestError("negative offset")
        self._refuse_if_read_only()
        # Quota refusal (a policy decision) happens before the store is
        # touched, so it never counts as a resource failure below.
        self._charge_quota(len(data))
        return self._store_write(self._handle(handle).pwrite, data, offset)

    def fsync(self, handle) -> None:
        self._store_write(self._handle(handle).fsync)

    def fstat(self, handle) -> ChirpStat:
        return self._handle(handle).fstat()

    def ftruncate(self, handle, size: int) -> None:
        if size < 0:
            raise InvalidRequestError("negative size")
        self._refuse_if_read_only()
        self._store_write(self._handle(handle).ftruncate, size)

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------

    def stat(self, subject: str, vpath: str) -> ChirpStat:
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        self._check(subject, parent, "l")
        return self.store.stat(vpath)

    def lstat(self, subject: str, vpath: str) -> ChirpStat:
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        self._check(subject, parent, "l")
        return self.store.lstat(vpath)

    def access(self, subject: str, vpath: str, rights: str) -> None:
        """Check existence plus the given rights (string over ``rwld``)."""
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        for right in rights or "l":
            self._check(subject, parent, right)
        if not self.store.exists(vpath):
            raise DoesNotExistError(vpath)

    def unlink(self, subject: str, vpath: str) -> None:
        self._forbid_acl_name(vpath)
        parent, name = split_virtual(vpath)
        if not name:
            raise InvalidRequestError("cannot unlink the root")
        self._check_any(subject, parent, "wd")
        self.store.unlink(vpath)

    def rename(self, subject: str, vold: str, vnew: str) -> None:
        self._forbid_acl_name(vold)
        self._forbid_acl_name(vnew)
        old_parent, old_name = split_virtual(vold)
        new_parent, new_name = split_virtual(vnew)
        if not old_name or not new_name:
            raise InvalidRequestError("cannot rename the root")
        self._check_any(subject, old_parent, "wd")
        self._check(subject, new_parent, "w")
        self._refuse_if_read_only()
        self.store.rename(vold, vnew)

    def mkdir(self, subject: str, vpath: str, mode: int) -> None:
        """Create a directory, applying reserve-right semantics.

        If the subject holds ``v`` on the parent, the new directory gets a
        fresh ACL granting the subject only the parent's reserve group --
        the mechanism that lets visiting users carve out private
        namespaces.  Otherwise ``w`` is required and the directory inherits
        the parent's ACL dynamically.
        """
        self._forbid_acl_name(vpath)
        parent, name = split_virtual(vpath)
        if not name:
            # POSIX: mkdir of an existing directory (the root always
            # exists) reports EEXIST, which os.makedirs-style callers
            # tolerate.
            raise AlreadyExistsError("/")
        acl = self.effective_acl(parent)
        rights = acl.rights_for(subject)
        is_owner = subject == self.owner_subject
        reserved = "v" in rights.flags and not is_owner
        if not (is_owner or "v" in rights.flags or "w" in rights.flags):
            raise NotAuthorizedError(
                f"subject {subject!r} lacks both w and v on {parent!r}"
            )
        self._refuse_if_read_only()
        self.store.mkdir(vpath, mode)
        if reserved:
            self._store_acl(vpath, acl.reserved_for(subject))

    def rmdir(self, subject: str, vpath: str) -> None:
        self._forbid_acl_name(vpath)
        parent, name = split_virtual(vpath)
        if not name:
            raise InvalidRequestError("cannot rmdir the root")
        self._check_any(subject, parent, "wd")
        # A directory whose only content is its ACL file counts as empty.
        entries = self.store.listdir(vpath)
        if entries == [ACL_FILE_NAME]:
            try:
                self.store.unlink(self._acl_vpath(vpath))
            except ChirpError:
                pass
        self.store.rmdir(vpath)

    def getdir(self, subject: str, vpath: str) -> list[str]:
        self._check(subject, vpath, "l")
        names = self.store.listdir(vpath)
        return sorted(n for n in names if n != ACL_FILE_NAME)

    def truncate(self, subject: str, vpath: str, size: int) -> None:
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        self._check(subject, parent, "w")
        if size < 0:
            raise InvalidRequestError("negative size")
        self._refuse_if_read_only()
        self._store_write(self.store.truncate, vpath, size)

    def utime(self, subject: str, vpath: str, atime: int, mtime: int) -> None:
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        self._check(subject, parent, "w")
        self._refuse_if_read_only()
        self.store.utime(vpath, atime, mtime)

    def checksum(self, subject: str, vpath: str) -> str:
        """Server-side checksum so auditors avoid reading whole replicas.

        O(1) on content-addressed stores: the stored key *is* the
        checksum.
        """
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        self._check(subject, parent, "r")
        return self.store.checksum(vpath)

    # ------------------------------------------------------------------
    # content-addressed operations (CAS stores only; others refuse with
    # InvalidRequestError, exactly like an unknown verb)
    # ------------------------------------------------------------------

    def lookup(self, subject: str, key: str) -> bool:
        """Whether a sealed blob with this content key is present."""
        self._check(subject, "/", "l")
        return self.store.lookup_key(key)

    def putkey(self, subject: str, vpath: str, mode: int, key: str) -> int:
        """Bind a path to an already-present blob (copy-by-reference).

        No payload bytes move and no quota is charged: linking an
        existing blob adds nothing to physical usage.
        """
        self._forbid_acl_name(vpath)
        parent, name = split_virtual(vpath)
        if not name:
            raise InvalidRequestError("cannot putkey the root")
        self._check(subject, parent, "w")
        self._refuse_if_read_only()
        return self._store_write(self.store.link_key, vpath, key, mode)

    def keyof(self, subject: str, vpath: str) -> str:
        """The content key a path is bound to (metadata-only audit)."""
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        self._check(subject, parent, "r")
        return self.store.key_of(vpath)

    # ------------------------------------------------------------------
    # ACL management
    # ------------------------------------------------------------------

    def getacl(self, subject: str, vpath: str) -> Acl:
        self._check(subject, vpath, "l")
        if not self.store.isdir(vpath):
            raise DoesNotExistError(vpath)
        return self.effective_acl(vpath)

    def setacl(self, subject: str, vpath: str, pattern: str, rights_text: str) -> None:
        self._refuse_if_read_only()
        with self._lock:
            acl = self._check(subject, vpath, "a")
            if not self.store.isdir(vpath):
                raise DoesNotExistError(vpath)
            # Copy-on-write: materialize the inherited ACL before editing,
            # so the edit affects only this subtree.
            own = self._load_acl(vpath)
            if own is None:
                own = Acl(list(acl.entries))
            rights = parse_rights(rights_text) if rights_text not in ("n", "none") else None
            if rights is None:
                own.set_entry(pattern, "")
            else:
                own.set_entry(pattern, rights)
            self._store_acl(vpath, own)

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------

    def statfs(self) -> StatFs:
        if self.quota_bytes is not None:
            used = self.store.used_bytes()
            return StatFs(self.quota_bytes, max(0, self.quota_bytes - used))
        return StatFs(*self.store.capacity())

    def _charge_quota(self, nbytes: int) -> None:
        """Refuse a write that would push usage over the quota.

        O(1): stores maintain their usage counter incrementally (the
        first call may trigger a one-time startup scan).
        """
        if self.quota_bytes is None or nbytes == 0:
            return
        with self._lock:
            if self.store.used_bytes() + nbytes > self.quota_bytes:
                raise NoSpaceError("quota exceeded")


class LocalBackend(Backend):
    """The classic configuration: :class:`Backend` over a local directory.

    Kept as a named class (rather than a factory call) because half the
    codebase and the paper's prose refer to "the local backend"; it is
    now nothing but a constructor convention.
    """

    def __init__(
        self,
        root: str,
        owner_subject: str,
        *,
        quota_bytes: int | None = None,
        root_acl: Acl | None = None,
        sync_meta: bool = True,
    ):
        store = LocalDirStore(root, sync_meta=sync_meta)
        super().__init__(
            store, owner_subject, quota_bytes=quota_bytes, root_acl=root_acl
        )
        self.sync_meta = sync_meta
