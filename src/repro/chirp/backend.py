"""The file server's storage backend: a confined local filesystem.

Files and directories are stored *without transformation* in an ordinary
filesystem under an exported root -- the recursive-abstraction property
that lets any existing directory be exported as-is, and lets the owner
inspect what users are doing with ordinary tools.

Responsibilities:

- software chroot (see :mod:`repro.util.paths`),
- ACL enforcement on every operation, with the owner of the server always
  retaining full rights ("the owner ... retains access to all data on that
  server and is free to delete it"),
- the reserve-right ``mkdir`` semantics,
- hiding the ACL bookkeeping files from clients,
- optional quota so tests and abstractions can exercise out-of-space paths.

Rights required per operation (one judgment call documented here: the
paper presents ``D`` as a way to grant *delete-but-not-modify* to others,
so deletion is allowed to holders of **either** ``w`` or ``d``; a strict
D-only rule would leave the paper's own ``v(rwla)`` visitors unable to
delete their dangling stub files):

===============  ================================================
open (read)      ``r`` on the containing directory
open (write)     ``w`` on the containing directory
stat/access      ``l`` on the containing directory
getdir           ``l`` on the directory itself
unlink           ``w`` or ``d`` on the containing directory
rename           ``w``/``d`` on the source dir, ``w`` on the target dir
mkdir            ``v`` (reserve semantics) else ``w`` on the parent
rmdir            ``w`` or ``d`` on the parent; directory must be empty
getacl           ``l`` on the directory
setacl           ``a`` on the directory
===============  ================================================
"""

from __future__ import annotations

import os
import posixpath
import threading

from repro.auth.acl import (
    ACL_FILE_NAME,
    Acl,
    load_acl,
    store_acl,
    parse_rights,
)
from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.util import checksum as checksum_mod
from repro.util.errors import (
    AlreadyExistsError,
    BadFileDescriptorError,
    DoesNotExistError,
    InvalidRequestError,
    IsADirectoryError_,
    NoSpaceError,
    NotAuthorizedError,
    status_from_exception,
    error_from_status,
)
from repro.util.paths import PathEscapeError, confine, normalize_virtual, split_virtual

__all__ = ["LocalBackend"]


def _wrap_os_error(exc: OSError, path: str = "") -> Exception:
    return error_from_status(status_from_exception(exc), f"{path}: {exc.strerror or exc}")


class LocalBackend:
    """A confined, ACL-enforcing view of a local directory tree.

    One backend serves all connections of one :class:`FileServer`; it is
    thread-safe (ACL copy-on-write and quota accounting take a lock; plain
    data-path I/O relies on the kernel as the paper's CFS does).
    """

    def __init__(
        self,
        root: str,
        owner_subject: str,
        *,
        quota_bytes: int | None = None,
        root_acl: Acl | None = None,
        sync_meta: bool = True,
    ):
        self.root = os.path.realpath(root)
        if not os.path.isdir(self.root):
            raise NotADirectoryError(f"export root {root!r} is not a directory")
        self.owner_subject = owner_subject
        self.quota_bytes = quota_bytes
        self.sync_meta = sync_meta
        self._lock = threading.Lock()
        if load_acl(self.root) is None:
            store_acl(self.root, root_acl or Acl.owner_default(owner_subject))
        elif root_acl is not None:
            store_acl(self.root, root_acl)

    # ------------------------------------------------------------------
    # path and ACL plumbing
    # ------------------------------------------------------------------

    def _fsync_dir(self, real_path: str) -> None:
        """Flush a directory's entry table to stable storage.

        An unlink/rename/mkdir that only reaches the page cache can be
        undone by a crash, leaving the namespace disagreeing with what a
        client was told succeeded -- fatal for a replica store whose
        database trusts those answers.  POSIX requires fsyncing the
        *parent directory* to make a namespace change durable; syncing
        the file alone is not enough.
        """
        if not self.sync_meta:
            return
        try:
            fd = os.open(real_path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
        except OSError:
            return  # directory vanished or platform refuses; best effort
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _real(self, vpath: str) -> str:
        try:
            return confine(self.root, vpath)
        except PathEscapeError as exc:
            raise NotAuthorizedError(str(exc)) from exc

    @staticmethod
    def _forbid_acl_name(vpath: str) -> None:
        if posixpath.basename(normalize_virtual(vpath)) == ACL_FILE_NAME:
            raise NotAuthorizedError("ACL files are managed via getacl/setacl")

    def effective_acl(self, vdir: str) -> Acl:
        """The ACL governing a directory: its own, else the nearest ancestor's."""
        vdir = normalize_virtual(vdir)
        while True:
            real = self._real(vdir)
            acl = load_acl(real) if os.path.isdir(real) else None
            if acl is not None:
                return acl
            if vdir == "/":
                # Root ACL was created in __init__; reaching here means it
                # was deleted out from under us -- fail closed.
                return Acl()
            vdir = posixpath.dirname(vdir) or "/"

    def _check(self, subject: str, vdir: str, right: str) -> Acl:
        """Verify ``subject`` holds ``right`` on ``vdir``; returns the ACL."""
        acl = self.effective_acl(vdir)
        if subject == self.owner_subject:
            return acl
        if not acl.check(subject, right):
            raise NotAuthorizedError(
                f"subject {subject!r} lacks right {right!r} on {vdir!r}"
            )
        return acl

    def _check_any(self, subject: str, vdir: str, rights: str) -> Acl:
        """Verify the subject holds at least one of ``rights`` on ``vdir``."""
        acl = self.effective_acl(vdir)
        if subject == self.owner_subject:
            return acl
        held = acl.rights_for(subject).flags
        if not (held & set(rights)):
            raise NotAuthorizedError(
                f"subject {subject!r} lacks all of {rights!r} on {vdir!r}"
            )
        return acl

    # ------------------------------------------------------------------
    # file I/O
    # ------------------------------------------------------------------

    def open(self, subject: str, vpath: str, flags: OpenFlags, mode: int) -> int:
        """Open a file, returning an OS-level file descriptor."""
        self._forbid_acl_name(vpath)
        parent, _name = split_virtual(vpath)
        if flags.write or flags.create or flags.truncate:
            self._check(subject, parent, "w")
        else:
            self._check(subject, parent, "r")
        real = self._real(vpath)
        if os.path.isdir(real):
            raise IsADirectoryError_(vpath)
        try:
            return os.open(real, flags.to_os_flags(), mode & 0o777)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    def close(self, fd: int) -> None:
        try:
            os.close(fd)
        except OSError as exc:
            raise BadFileDescriptorError(str(exc)) from exc

    def pread(self, fd: int, length: int, offset: int) -> bytes:
        if length < 0 or offset < 0:
            raise InvalidRequestError("negative length or offset")
        try:
            return os.pread(fd, length, offset)
        except OSError as exc:
            raise _wrap_os_error(exc) from exc

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        if offset < 0:
            raise InvalidRequestError("negative offset")
        self._charge_quota(len(data))
        try:
            return os.pwrite(fd, data, offset)
        except OSError as exc:
            raise _wrap_os_error(exc) from exc

    def fsync(self, fd: int) -> None:
        try:
            os.fsync(fd)
        except OSError as exc:
            raise _wrap_os_error(exc) from exc

    def fstat(self, fd: int) -> ChirpStat:
        try:
            return ChirpStat.from_os(os.fstat(fd))
        except OSError as exc:
            raise _wrap_os_error(exc) from exc

    def ftruncate(self, fd: int, size: int) -> None:
        if size < 0:
            raise InvalidRequestError("negative size")
        try:
            os.ftruncate(fd, size)
        except OSError as exc:
            raise _wrap_os_error(exc) from exc

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------

    def stat(self, subject: str, vpath: str) -> ChirpStat:
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        self._check(subject, parent, "l")
        try:
            return ChirpStat.from_os(os.stat(self._real(vpath)))
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    def lstat(self, subject: str, vpath: str) -> ChirpStat:
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        self._check(subject, parent, "l")
        try:
            return ChirpStat.from_os(os.lstat(self._real(vpath)))
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    def access(self, subject: str, vpath: str, rights: str) -> None:
        """Check existence plus the given rights (string over ``rwld``)."""
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        for right in rights or "l":
            self._check(subject, parent, right)
        if not os.path.exists(self._real(vpath)):
            raise DoesNotExistError(vpath)

    def unlink(self, subject: str, vpath: str) -> None:
        self._forbid_acl_name(vpath)
        parent, name = split_virtual(vpath)
        if not name:
            raise InvalidRequestError("cannot unlink the root")
        self._check_any(subject, parent, "wd")
        real = self._real(vpath)
        try:
            os.unlink(real)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        self._fsync_dir(os.path.dirname(real))

    def rename(self, subject: str, vold: str, vnew: str) -> None:
        self._forbid_acl_name(vold)
        self._forbid_acl_name(vnew)
        old_parent, old_name = split_virtual(vold)
        new_parent, new_name = split_virtual(vnew)
        if not old_name or not new_name:
            raise InvalidRequestError("cannot rename the root")
        self._check_any(subject, old_parent, "wd")
        self._check(subject, new_parent, "w")
        real_old, real_new = self._real(vold), self._real(vnew)
        try:
            os.rename(real_old, real_new)
        except OSError as exc:
            raise _wrap_os_error(exc, vold) from exc
        # Both directory entries changed; a crash must not resurrect the
        # old name or lose the new one.
        self._fsync_dir(os.path.dirname(real_new))
        if os.path.dirname(real_old) != os.path.dirname(real_new):
            self._fsync_dir(os.path.dirname(real_old))

    def mkdir(self, subject: str, vpath: str, mode: int) -> None:
        """Create a directory, applying reserve-right semantics.

        If the subject holds ``v`` on the parent, the new directory gets a
        fresh ACL granting the subject only the parent's reserve group --
        the mechanism that lets visiting users carve out private
        namespaces.  Otherwise ``w`` is required and the directory inherits
        the parent's ACL dynamically.
        """
        self._forbid_acl_name(vpath)
        parent, name = split_virtual(vpath)
        if not name:
            # POSIX: mkdir of an existing directory (the root always
            # exists) reports EEXIST, which os.makedirs-style callers
            # tolerate.
            raise AlreadyExistsError("/")
        acl = self.effective_acl(parent)
        rights = acl.rights_for(subject)
        is_owner = subject == self.owner_subject
        reserved = "v" in rights.flags and not is_owner
        if not (is_owner or "v" in rights.flags or "w" in rights.flags):
            raise NotAuthorizedError(
                f"subject {subject!r} lacks both w and v on {parent!r}"
            )
        real = self._real(vpath)
        try:
            os.mkdir(real, mode & 0o777)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        self._fsync_dir(os.path.dirname(real))
        if reserved:
            store_acl(real, acl.reserved_for(subject))

    def rmdir(self, subject: str, vpath: str) -> None:
        self._forbid_acl_name(vpath)
        parent, name = split_virtual(vpath)
        if not name:
            raise InvalidRequestError("cannot rmdir the root")
        self._check_any(subject, parent, "wd")
        real = self._real(vpath)
        # A directory whose only content is its ACL file counts as empty.
        acl_file = os.path.join(real, ACL_FILE_NAME)
        try:
            entries = os.listdir(real)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        if entries == [ACL_FILE_NAME]:
            try:
                os.unlink(acl_file)
            except OSError:
                pass
        try:
            os.rmdir(real)
        except OSError as exc:
            # Restore the ACL file if the rmdir failed for another reason.
            raise _wrap_os_error(exc, vpath) from exc
        self._fsync_dir(os.path.dirname(real))

    def getdir(self, subject: str, vpath: str) -> list[str]:
        self._check(subject, vpath, "l")
        real = self._real(vpath)
        try:
            names = os.listdir(real)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc
        return sorted(n for n in names if n != ACL_FILE_NAME)

    def truncate(self, subject: str, vpath: str, size: int) -> None:
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        self._check(subject, parent, "w")
        if size < 0:
            raise InvalidRequestError("negative size")
        try:
            os.truncate(self._real(vpath), size)
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    def utime(self, subject: str, vpath: str, atime: int, mtime: int) -> None:
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        self._check(subject, parent, "w")
        try:
            os.utime(self._real(vpath), (atime, mtime))
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    def checksum(self, subject: str, vpath: str) -> str:
        """Server-side checksum so auditors avoid reading whole replicas."""
        self._forbid_acl_name(vpath)
        parent, _ = split_virtual(vpath)
        self._check(subject, parent, "r")
        try:
            return checksum_mod.file_checksum(self._real(vpath))
        except OSError as exc:
            raise _wrap_os_error(exc, vpath) from exc

    # ------------------------------------------------------------------
    # ACL management
    # ------------------------------------------------------------------

    def getacl(self, subject: str, vpath: str) -> Acl:
        self._check(subject, vpath, "l")
        real = self._real(vpath)
        if not os.path.isdir(real):
            raise DoesNotExistError(vpath)
        return self.effective_acl(vpath)

    def setacl(self, subject: str, vpath: str, pattern: str, rights_text: str) -> None:
        with self._lock:
            acl = self._check(subject, vpath, "a")
            real = self._real(vpath)
            if not os.path.isdir(real):
                raise DoesNotExistError(vpath)
            # Copy-on-write: materialize the inherited ACL before editing,
            # so the edit affects only this subtree.
            own = load_acl(real)
            if own is None:
                own = Acl(list(acl.entries))
            rights = parse_rights(rights_text) if rights_text not in ("n", "none") else None
            if rights is None:
                own.set_entry(pattern, "")
            else:
                own.set_entry(pattern, rights)
            store_acl(real, own)

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------

    def statfs(self) -> StatFs:
        if self.quota_bytes is not None:
            used = self._disk_usage()
            return StatFs(self.quota_bytes, max(0, self.quota_bytes - used))
        vfs = os.statvfs(self.root)
        return StatFs(vfs.f_blocks * vfs.f_frsize, vfs.f_bavail * vfs.f_frsize)

    def _disk_usage(self) -> int:
        total = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                try:
                    total += os.lstat(os.path.join(dirpath, name)).st_size
                except OSError:
                    continue
        return total

    def _charge_quota(self, nbytes: int) -> None:
        if self.quota_bytes is None or nbytes == 0:
            return
        with self._lock:
            if self._disk_usage() + nbytes > self.quota_bytes:
                raise NoSpaceError("quota exceeded")
