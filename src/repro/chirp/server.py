"""The Chirp personal file server.

Deployable by an ordinary user with one call::

    server = FileServer(ServerConfig(root="/scratch/me", owner="unix:me"))
    server.start()

One thread accepts connections; one thread per connection authenticates
the client and then serves Unix-like RPCs against a
:class:`~repro.chirp.backend.Backend` layered over the configured
:class:`~repro.store.BlobStore` (``--store local|memory|cas``).  A
reporter thread announces
the server to its catalogs over UDP.  Failure semantics follow the paper:
when a connection drops, every resource associated with it -- in
particular all open file descriptors -- is freed immediately.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.auth.methods import AuthContext, AuthFailed, authenticate_server
from repro.chirp.backend import Backend
from repro.chirp.protocol import OpenFlags, PROTOCOL_VERSION, VERBS
from repro.store import BlobHandle, HandleReader, HandleWriter, make_store
from repro.util.errors import (
    BadFileDescriptorError,
    ChirpError,
    DisconnectedError,
    InvalidRequestError,
    StatusCode,
    busy_message,
    status_from_exception,
)
from repro.util.wire import LineStream, pack_line

__all__ = ["ServerConfig", "FileServer"]

log = logging.getLogger("repro.chirp.server")

_DRAIN_CHUNK = 1 << 20


@dataclass
class ServerConfig:
    """Everything needed to deploy a file server.

    The defaults make "run one command with no configuration" true: an
    ephemeral port on loopback, hostname+unix auth, and no catalogs.
    """

    root: str
    owner: str
    host: str = "127.0.0.1"
    port: int = 0
    name: str = ""
    auth: AuthContext = field(default_factory=AuthContext)
    catalog_addrs: tuple[tuple[str, int], ...] = ()
    report_interval: float = 5.0
    quota_bytes: int | None = None
    #: fsync parent directories after namespace changes (unlink, rename,
    #: mkdir, rmdir) so a host crash cannot silently undo them.  Costs a
    #: disk flush per metadata operation; operators who accept that risk
    #: for speed can turn it off with ``--no-sync-meta``.
    sync_meta: bool = True
    max_open_files: int = 256
    #: Close connections silent for this many seconds (``None`` disables
    #: the reaper).  Protects worker threads from slow-loris clients that
    #: hold a session open without ever completing a request.
    idle_timeout: float | None = None
    #: Which storage resource serves the abstraction: "local" (the
    #: classic confined directory, byte-identical semantics), "memory"
    #: (RAM; tests and simulations), or "cas" (content-addressed blobs
    #: with dedup and copy-by-reference).
    store: str = "local"
    #: Optional metrics registry; when set, per-store counters are
    #: published under the "store" section (and degraded-mode state
    #: under "volume").
    metrics: object | None = None
    #: Consecutive store write I/O errors before the volume degrades to
    #: read-only (a store-raised NO_SPACE degrades immediately).
    eio_degrade_threshold: int = 3
    #: Minimum seconds between degraded-mode recovery probes.
    recovery_probe_interval: float = 5.0
    #: Admission control: accept at most this many concurrent
    #: connections (``None`` = unbounded, the historical behaviour).
    #: Connections past the cap are answered with one ``BUSY`` status
    #: line and closed -- no worker thread, no auth, no fd table -- so
    #: a connection flood costs the server one tiny write per refusal.
    max_conns: int | None = None
    #: Per-subject in-flight request cap (``None`` = unbounded).  A
    #: subject already running this many requests across its
    #: connections gets ``BUSY`` on the next one instead of queueing.
    max_inflight_per_subject: int | None = None
    #: How long :meth:`FileServer.drain` waits for in-flight requests
    #: before closing anyway.
    drain_timeout: float = 10.0
    #: The backoff hint (milliseconds) embedded in ``BUSY`` refusals
    #: caused by saturation; drain refusals hint the remaining drain
    #: window instead.
    busy_retry_ms: int = 250


class _CountingWriter:
    """A :class:`HandleWriter` that counts the bytes offered to it.

    ``read_into_file`` consumes exactly the bytes it passes to
    ``write``, so ``consumed`` tells the putfile handler how much of
    the request payload is left to drain after a mid-write store
    failure.
    """

    def __init__(self, handle: BlobHandle):
        self._writer = HandleWriter(handle)
        self.consumed = 0

    def write(self, data: bytes) -> int:
        self.consumed += len(data)
        return self._writer.write(data)


class _Connection:
    """Per-connection state: the stream, the subject, and the fd table."""

    def __init__(self, stream: LineStream, subject: str, max_open: int):
        self.stream = stream
        self.subject = subject
        self.max_open = max_open
        self.fds: dict[int, BlobHandle] = {}  # client fd -> store handle
        self.next_fd = 3

    def install_fd(self, handle: BlobHandle) -> int:
        if len(self.fds) >= self.max_open:
            try:
                handle.close()
            except ChirpError:
                pass
            from repro.util.errors import TooManyOpenError

            raise TooManyOpenError("per-connection open file limit")
        cfd = self.next_fd
        self.next_fd += 1
        self.fds[cfd] = handle
        return cfd

    def lookup_fd(self, cfd: int) -> BlobHandle:
        try:
            return self.fds[cfd]
        except KeyError:
            raise BadFileDescriptorError(f"fd {cfd}") from None

    def drop_fd(self, cfd: int) -> BlobHandle:
        try:
            return self.fds.pop(cfd)
        except KeyError:
            raise BadFileDescriptorError(f"fd {cfd}") from None

    def close_all(self) -> None:
        for handle in self.fds.values():
            try:
                handle.close()
            except Exception:
                pass
        self.fds.clear()


class FileServer:
    """A running Chirp file server; also usable as a context manager."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self.store = make_store(
            config.store, config.root, sync_meta=config.sync_meta
        )
        self.backend = Backend(
            self.store,
            config.owner,
            quota_bytes=config.quota_bytes,
            eio_degrade_threshold=config.eio_degrade_threshold,
            recovery_probe_interval=config.recovery_probe_interval,
        )
        if config.metrics is not None:
            config.metrics.attach_section("store", self.store)
            config.metrics.attach_section("volume", self.backend)
            config.metrics.attach_section("server", self)
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conn_socks: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        # socket -> monotonic time of its last observed activity
        # (accept, auth progress, or a completed dispatch); the reaper
        # closes sockets whose entry goes stale past idle_timeout.
        self._activity: dict[socket.socket, float] = {}
        self.reaped_connections = 0
        self._stop = threading.Event()
        self._started_at = 0.0
        self.address: tuple[str, int] = (config.host, config.port)
        # Lifecycle / admission state.  One lock guards the in-flight
        # accounting so the drain wait and the per-request admission
        # check can never race past each other: a request is either
        # admitted (counted, and drain waits for it) or refused.
        self._flow_lock = threading.Lock()
        self._idle_cv = threading.Condition(self._flow_lock)
        self._draining = False
        self._drain_deadline = 0.0
        self._inflight = 0
        self._inflight_by_subject: dict[str, int] = {}
        self.shed_connections = 0
        self.shed_requests = 0
        self.drain_refusals = 0
        self.janitor_swept = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "FileServer":
        if self._listener is not None:
            raise RuntimeError("server already started")
        self._run_janitor()
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(128)
        # Poll timeout so stop() is prompt even where closing a socket
        # does not wake a blocked accept().
        sock.settimeout(0.2)
        self._listener = sock
        self.address = sock.getsockname()[:2]
        self._started_at = time.time()
        accept_thread = threading.Thread(
            target=self._accept_loop, name=f"chirp-accept-{self.address[1]}", daemon=True
        )
        accept_thread.start()
        self._threads.append(accept_thread)
        if self.config.catalog_addrs:
            reporter = threading.Thread(
                target=self._report_loop, name="chirp-reporter", daemon=True
            )
            reporter.start()
            self._threads.append(reporter)
        if self.config.idle_timeout is not None:
            reaper = threading.Thread(
                target=self._reap_loop, name="chirp-reaper", daemon=True
            )
            reaper.start()
            self._threads.append(reaper)
        log.info("file server %s listening on %s", self.name, self.address)
        return self

    def _run_janitor(self) -> None:
        """Crash janitor: sweep staging files a dead predecessor left.

        A SIGKILL mid-write leaks the store's private staging files (CAS
        spool/tmp objects, LocalDirStore rename staging) forever; they
        occupy disk but belong to no namespace entry.  Sweeping happens
        before the listener opens so no request ever races the sweep,
        and usage is reconciled afterwards so ``used_bytes`` (and hence
        quota and statfs) is correct after a crash.
        """
        try:
            swept = self.store.janitor()
        except (ChirpError, OSError) as exc:  # never block boot on cleanup
            log.warning("boot janitor failed: %s", exc)
            return
        self.janitor_swept = swept
        if swept:
            log.info("boot janitor swept %d orphaned staging file(s)", swept)
            try:
                self.store.reconcile_usage()
            except (ChirpError, OSError) as exc:
                log.warning("post-janitor usage reconcile failed: %s", exc)

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: refuse new work, finish in-flight, stop.

        Flips the server to *draining* (advertised immediately to the
        catalogs), sheds new connections and new requests with ``BUSY``,
        waits up to ``timeout`` (default ``config.drain_timeout``) for
        every in-flight request to write its status line, then closes.
        Returns ``True`` when all in-flight work finished inside the
        window -- an acknowledged op is never dropped by a clean drain.
        """
        if timeout is None:
            timeout = self.config.drain_timeout
        with self._flow_lock:
            first = not self._draining
            self._draining = True
            self._drain_deadline = time.monotonic() + timeout
        if first:
            log.info("server %s draining (timeout %.1fs)", self.name, timeout)
            try:
                self.report_now()
            except OSError:
                pass
        with self._idle_cv:
            drained = self._idle_cv.wait_for(lambda: self._inflight == 0, timeout)
        self.stop()
        return drained

    @property
    def draining(self) -> bool:
        return self._draining

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._conn_lock:
            socks = list(self._conn_socks)
        for s in socks:
            try:
                s.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                s.close()
            except OSError:
                pass
        for t in self._threads:
            t.join(timeout=5)
        self._threads.clear()

    def __enter__(self) -> "FileServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def name(self) -> str:
        return self.config.name or f"{self.address[0]}:{self.address[1]}"

    # -- accept / serve ---------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            conn.settimeout(None)
            refusal = self._admit_connection()
            if refusal is not None:
                self._refuse_connection(conn, addr, refusal)
                continue
            with self._conn_lock:
                self._conn_socks.add(conn)
                self._activity[conn] = time.monotonic()
            t = threading.Thread(
                target=self._serve_connection,
                args=(conn, addr),
                name=f"chirp-conn-{addr[1]}",
                daemon=True,
            )
            t.start()

    def _admit_connection(self) -> tuple[str, int] | None:
        """Decide whether a fresh connection gets a worker thread.

        Returns ``None`` to admit, or ``(reason, retry_after_ms)`` to
        shed.  Shedding is deterministic: connections are admitted in
        accept order until the cap, everything past it is refused.
        """
        with self._flow_lock:
            if self._draining:
                self.drain_refusals += 1
                return ("draining", self._drain_hint_ms_locked())
        cap = self.config.max_conns
        if cap is not None:
            with self._conn_lock:
                if len(self._conn_socks) >= cap:
                    self.shed_connections += 1
                    return ("server at max-conns", self.config.busy_retry_ms)
        return None

    def _refuse_connection(
        self, sock: socket.socket, addr, refusal: tuple[str, int]
    ) -> None:
        """Answer a shed connection with one BUSY line and close it.

        Runs inline in the accept thread: the refusal is a few dozen
        bytes, fits any socket send buffer, and carries a short timeout,
        so a flood of connections costs one bounded write each instead
        of a thread apiece.  The client has not been read from -- the
        protocol has the client speak first, so its auth line simply
        dies with the socket and the refusal line is the first (and
        only) thing it reads.
        """
        reason, retry_ms = refusal
        log.debug("shedding connection from %s: %s", addr, reason)
        try:
            sock.settimeout(0.5)
            sock.sendall(pack_line(int(StatusCode.BUSY), busy_message(retry_ms, reason)))
        except OSError:
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _drain_hint_ms_locked(self) -> int:
        """Backoff hint for drain refusals: the remaining drain window.

        A client retrying after that long will find either a dead
        address (fail over) or a restarted, non-draining server.
        """
        remaining = max(0.0, self._drain_deadline - time.monotonic())
        return int(remaining * 1000) + self.config.busy_retry_ms

    def _begin_request(self, subject: str) -> tuple[str, int] | None:
        """Admit or refuse one request; admitted requests are counted.

        The check and the count are atomic under ``_flow_lock``, so once
        drain has observed ``_inflight == 0`` no new request can slip
        in: it either incremented the gauge before the observation (and
        drain waited for it) or it sees ``_draining`` and is refused.
        """
        with self._flow_lock:
            if self._draining or self._stop.is_set():
                self.drain_refusals += 1
                return ("draining", self._drain_hint_ms_locked())
            cap = self.config.max_inflight_per_subject
            if cap is not None and self._inflight_by_subject.get(subject, 0) >= cap:
                self.shed_requests += 1
                return ("subject at in-flight cap", self.config.busy_retry_ms)
            self._inflight += 1
            self._inflight_by_subject[subject] = (
                self._inflight_by_subject.get(subject, 0) + 1
            )
            return None

    def _end_request(self, subject: str) -> None:
        with self._idle_cv:
            self._inflight -= 1
            left = self._inflight_by_subject.get(subject, 1) - 1
            if left <= 0:
                self._inflight_by_subject.pop(subject, None)
            else:
                self._inflight_by_subject[subject] = left
            if self._inflight == 0:
                self._idle_cv.notify_all()

    def _refuse_request(
        self, conn: _Connection, tokens: list[str], refusal: tuple[str, int]
    ) -> None:
        """Refuse one request with BUSY, keeping the stream in sync.

        Payload-bearing verbs state their payload length in the request
        line; the payload is already on the wire, so it must be drained
        before the status line or the next request would be parsed out
        of the middle of it.
        """
        reason, retry_ms = refusal
        try:
            payload = 0
            if tokens[0] == "pwrite" and len(tokens) >= 3:
                payload = int(tokens[2])
            elif tokens[0] == "putfile" and len(tokens) >= 4:
                payload = int(tokens[3])
            if payload > 0:
                self._drain(conn.stream, payload)
        except ValueError:
            pass
        conn.stream.write_line(int(StatusCode.BUSY), busy_message(retry_ms, reason))

    def _serve_connection(self, sock: socket.socket, addr) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = LineStream(sock)
        conn: _Connection | None = None
        try:
            subject = authenticate_server(stream, self.config.auth, addr[0])
            self._touch(sock)
            conn = _Connection(stream, subject, self.config.max_open_files)
            log.debug("connection from %s authenticated as %s", addr, subject)
            while not self._stop.is_set():
                tokens = stream.read_tokens()
                self._touch(sock)
                if not tokens:
                    continue
                refusal = self._begin_request(subject)
                if refusal is not None:
                    self._refuse_request(conn, tokens, refusal)
                    if refusal[0] == "draining":
                        # The session is over; closing prompts the
                        # client onto its reconnect/failover path.
                        break
                    continue
                try:
                    self._dispatch(conn, tokens)
                finally:
                    self._end_request(subject)
        except (DisconnectedError, AuthFailed):
            pass
        except Exception:  # pragma: no cover - diagnostic guard
            log.exception("connection handler crashed")
        finally:
            # Failure semantics: free everything on disconnect.
            if conn is not None:
                conn.close_all()
            stream.close()
            with self._conn_lock:
                self._conn_socks.discard(sock)
                self._activity.pop(sock, None)

    def _touch(self, sock: socket.socket) -> None:
        with self._conn_lock:
            if sock in self._activity:
                self._activity[sock] = time.monotonic()

    def _reap_loop(self) -> None:
        """Close connections silent for longer than ``idle_timeout``.

        "Silent" means no completed auth step and no request line since
        the last mark -- a slow-loris client dribbling bytes without ever
        finishing a request never refreshes its mark, so it is reaped
        like one sending nothing at all.  Closing the socket wakes the
        connection's worker thread out of its blocking read; the normal
        disconnect path then frees the session's fds.
        """
        timeout = self.config.idle_timeout
        assert timeout is not None
        interval = max(0.05, min(timeout / 4.0, 1.0))
        while not self._stop.wait(interval):
            now = time.monotonic()
            with self._conn_lock:
                stale = [
                    s for s, last in self._activity.items() if now - last > timeout
                ]
                for s in stale:
                    self._activity.pop(s, None)
            for s in stale:
                log.info("reaping idle connection %r", s)
                self.reaped_connections += 1
                try:
                    s.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    s.close()
                except OSError:
                    pass

    # -- dispatch ---------------------------------------------------------

    def _dispatch(self, conn: _Connection, tokens: list[str]) -> None:
        verb = tokens[0]
        args = tokens[1:]
        if verb not in VERBS:
            conn.stream.write_line(int(StatusCode.INVALID_REQUEST), f"unknown verb {verb}")
            return
        handler = getattr(self, f"_op_{verb}")
        try:
            handler(conn, args)
        except ChirpError as exc:
            conn.stream.write_line(int(exc.status), str(exc))
        except DisconnectedError:
            raise
        except (ValueError, IndexError) as exc:
            conn.stream.write_line(int(StatusCode.INVALID_REQUEST), str(exc))
        except OSError as exc:
            conn.stream.write_line(int(status_from_exception(exc)), str(exc))

    # Each _op_* reads any request payload, performs the operation, and
    # writes exactly one status line (plus reply payload where defined).

    def _op_open(self, conn: _Connection, args: list[str]) -> None:
        path, flags_text, mode_text = args
        flags = OpenFlags.decode(flags_text)
        handle = self.backend.open(conn.subject, path, flags, int(mode_text))
        cfd = conn.install_fd(handle)
        conn.stream.write_line(cfd)

    def _op_close(self, conn: _Connection, args: list[str]) -> None:
        handle = conn.drop_fd(int(args[0]))
        self.backend.close(handle)
        conn.stream.write_line(0)

    def _op_pread(self, conn: _Connection, args: list[str]) -> None:
        cfd, length, offset = int(args[0]), int(args[1]), int(args[2])
        data = self.backend.pread(conn.lookup_fd(cfd), length, offset)
        # Header and payload leave in one sendall: the hot read path
        # costs one syscall (and one segment burst) per RPC.
        conn.stream.write(pack_line(len(data)) + data)

    def _op_pwrite(self, conn: _Connection, args: list[str]) -> None:
        cfd, length, offset = int(args[0]), int(args[1]), int(args[2])
        data = conn.stream.read_exact(length)
        try:
            handle = conn.lookup_fd(cfd)
        except BadFileDescriptorError:
            conn.stream.write_line(int(StatusCode.BAD_FD), f"fd {cfd}")
            return
        n = self.backend.pwrite(handle, data, offset)
        conn.stream.write_line(n)

    def _op_fsync(self, conn: _Connection, args: list[str]) -> None:
        self.backend.fsync(conn.lookup_fd(int(args[0])))
        conn.stream.write_line(0)

    def _op_fstat(self, conn: _Connection, args: list[str]) -> None:
        st = self.backend.fstat(conn.lookup_fd(int(args[0])))
        conn.stream.write_line(0, *st.to_tokens())

    def _op_ftruncate(self, conn: _Connection, args: list[str]) -> None:
        self.backend.ftruncate(conn.lookup_fd(int(args[0])), int(args[1]))
        conn.stream.write_line(0)

    def _op_stat(self, conn: _Connection, args: list[str]) -> None:
        st = self.backend.stat(conn.subject, args[0])
        conn.stream.write_line(0, *st.to_tokens())

    def _op_lstat(self, conn: _Connection, args: list[str]) -> None:
        st = self.backend.lstat(conn.subject, args[0])
        conn.stream.write_line(0, *st.to_tokens())

    def _op_access(self, conn: _Connection, args: list[str]) -> None:
        self.backend.access(conn.subject, args[0], args[1] if len(args) > 1 else "l")
        conn.stream.write_line(0)

    def _op_unlink(self, conn: _Connection, args: list[str]) -> None:
        self.backend.unlink(conn.subject, args[0])
        conn.stream.write_line(0)

    def _op_rename(self, conn: _Connection, args: list[str]) -> None:
        self.backend.rename(conn.subject, args[0], args[1])
        conn.stream.write_line(0)

    def _op_mkdir(self, conn: _Connection, args: list[str]) -> None:
        self.backend.mkdir(conn.subject, args[0], int(args[1]) if len(args) > 1 else 0o755)
        conn.stream.write_line(0)

    def _op_rmdir(self, conn: _Connection, args: list[str]) -> None:
        self.backend.rmdir(conn.subject, args[0])
        conn.stream.write_line(0)

    def _op_getdir(self, conn: _Connection, args: list[str]) -> None:
        names = self.backend.getdir(conn.subject, args[0])
        # Count line + one line per entry, coalesced into one sendall.
        conn.stream.write_lines([(len(names),), *((name,) for name in names)])

    def _op_getfile(self, conn: _Connection, args: list[str]) -> None:
        path = args[0]
        flags = OpenFlags(read=True)
        handle = self.backend.open(conn.subject, path, flags, 0)
        try:
            size = handle.fstat().size
            conn.stream.write_line(size)
            conn.stream.write_from_file(HandleReader(handle), size)
        finally:
            try:
                handle.close()
            except ChirpError:
                pass

    def _op_putfile(self, conn: _Connection, args: list[str]) -> None:
        path, mode_text, length_text = args
        length = int(length_text)
        if length < 0:
            raise InvalidRequestError("negative putfile length")
        flags = OpenFlags(write=True, create=True, truncate=True)
        try:
            handle = self.backend.open(conn.subject, path, flags, int(mode_text))
        except ChirpError as exc:
            self._drain(conn.stream, length)
            conn.stream.write_line(int(exc.status), str(exc))
            return
        try:
            self.backend._charge_quota(length)
        except ChirpError as exc:
            try:
                handle.close()
            except ChirpError:
                pass
            self._drain(conn.stream, length)
            conn.stream.write_line(int(exc.status), str(exc))
            return
        # Count bytes consumed from the stream so a store failure midway
        # through the payload (ENOSPC, EIO) can drain the unread tail and
        # keep the connection usable -- the error goes back as a status
        # line instead of a desynced stream.
        sink = _CountingWriter(handle)
        try:
            conn.stream.read_into_file(sink, length)
        except ChirpError as exc:
            self.backend.record_write_error(exc)
            try:
                handle.close()
            except ChirpError:
                pass
            self._drain(conn.stream, length - sink.consumed)
            conn.stream.write_line(int(exc.status), str(exc))
            return
        try:
            handle.close()
        except ChirpError:
            pass
        self.backend.record_write_ok()
        conn.stream.write_line(length)

    # -- content-addressed verbs (CAS stores; others answer
    # INVALID_REQUEST, indistinguishable from an unknown verb, so
    # clients probe and fall back uniformly) --------------------------

    def _op_lookup(self, conn: _Connection, args: list[str]) -> None:
        present = self.backend.lookup(conn.subject, args[0])
        conn.stream.write_line(0, 1 if present else 0)

    def _op_putkey(self, conn: _Connection, args: list[str]) -> None:
        path, mode_text, key = args
        size = self.backend.putkey(conn.subject, path, int(mode_text), key)
        conn.stream.write_line(size)

    def _op_keyof(self, conn: _Connection, args: list[str]) -> None:
        key = self.backend.keyof(conn.subject, args[0])
        conn.stream.write_line(0, key)

    @staticmethod
    def _drain(stream: LineStream, length: int) -> None:
        """Discard a request payload so the stream stays in sync."""
        remaining = length
        while remaining > 0:
            chunk = stream.read_exact(min(_DRAIN_CHUNK, remaining))
            remaining -= len(chunk)

    def _op_getacl(self, conn: _Connection, args: list[str]) -> None:
        acl = self.backend.getacl(conn.subject, args[0])
        conn.stream.write_lines(
            [(len(acl),), *((entry.pattern, str(entry.rights)) for entry in acl)]
        )

    def _op_setacl(self, conn: _Connection, args: list[str]) -> None:
        path, pattern, rights_text = args
        self.backend.setacl(conn.subject, path, pattern, rights_text)
        conn.stream.write_line(0)

    def _op_whoami(self, conn: _Connection, args: list[str]) -> None:
        conn.stream.write_line(0, conn.subject)

    def _op_statfs(self, conn: _Connection, args: list[str]) -> None:
        fs = self.backend.statfs()
        conn.stream.write_line(0, *fs.to_tokens())

    def _op_truncate(self, conn: _Connection, args: list[str]) -> None:
        self.backend.truncate(conn.subject, args[0], int(args[1]))
        conn.stream.write_line(0)

    def _op_utime(self, conn: _Connection, args: list[str]) -> None:
        self.backend.utime(conn.subject, args[0], int(args[1]), int(args[2]))
        conn.stream.write_line(0)

    def _op_checksum(self, conn: _Connection, args: list[str]) -> None:
        digest = self.backend.checksum(conn.subject, args[0])
        conn.stream.write_line(0, digest)

    # -- metrics ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Lifecycle metrics, published as the ``server`` section."""
        with self._flow_lock:
            inflight = self._inflight
            subjects = len(self._inflight_by_subject)
            draining = self._draining
        with self._conn_lock:
            connections = len(self._conn_socks)
        return {
            "draining": draining,
            "connections": connections,
            "max_conns": self.config.max_conns,
            "in_flight": inflight,
            "in_flight_subjects": subjects,
            "shed_connections": self.shed_connections,
            "shed_requests": self.shed_requests,
            "drain_refusals": self.drain_refusals,
            "reaped_connections": self.reaped_connections,
            "janitor_swept": self.janitor_swept,
        }

    # -- catalog reporting --------------------------------------------------

    def build_report(self) -> dict:
        """The JSON document periodically sent to catalogs."""
        fs = self.backend.statfs()
        return {
            "type": "chirp",
            "name": self.name,
            "owner": self.config.owner,
            "host": self.address[0],
            "port": self.address[1],
            "version": PROTOCOL_VERSION,
            "store": self.store.kind,
            "total_bytes": fs.total_bytes,
            "free_bytes": fs.free_bytes,
            "root_acl": self.backend.root_acl_text(),
            "read_only": self.backend.read_only,
            "read_only_reason": self.backend.read_only_reason,
            "draining": self._draining,
            "uptime": time.time() - self._started_at,
            "report_time": time.time(),
        }

    def report_now(self) -> None:
        """Send one report to every configured catalog (used by tests)."""
        payload = json.dumps(self.build_report()).encode("utf-8")
        with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as s:
            for addr in self.config.catalog_addrs:
                try:
                    s.sendto(payload, addr)
                except OSError:
                    log.warning("catalog report to %s failed", addr)

    def _report_loop(self) -> None:
        while not self._stop.is_set():
            # A degraded volume probes for recovery on the report cadence
            # (the probe throttles itself), so the catalog sees the
            # read_only flag drop as soon as the resource heals.
            self.backend.try_recover()
            self.report_now()
            self._stop.wait(self.config.report_interval)
