"""Wire-level vocabulary of the Chirp protocol.

Requests are single lines of tokens (see :mod:`repro.util.wire`); this
module defines the request verbs, the portable open-flag encoding, and the
codecs for structured replies (``stat``, ``statfs``).

The RPC surface mirrors the fragment printed in the paper
(``chirp_open/pread/pwrite/close/stat/unlink/rename``) plus the streaming
``getfile``/``putfile`` calls and the ACL management calls the text
describes.
"""

from __future__ import annotations

import os
import stat as stat_mod
from dataclasses import dataclass

from repro.util.errors import InvalidRequestError

__all__ = ["VERBS", "OpenFlags", "ChirpStat", "StatFs", "PROTOCOL_VERSION"]

PROTOCOL_VERSION = 3  # v3 adds the content-addressed verbs: lookup, putkey, keyof

#: Every request verb the server understands.
VERBS = frozenset(
    {
        "open",
        "close",
        "pread",
        "pwrite",
        "fsync",
        "fstat",
        "ftruncate",
        "stat",
        "lstat",
        "access",
        "unlink",
        "rename",
        "mkdir",
        "rmdir",
        "getdir",
        "getfile",
        "putfile",
        "getacl",
        "setacl",
        "whoami",
        "statfs",
        "truncate",
        "utime",
        "checksum",
        "lookup",
        "putkey",
        "keyof",
    }
)


@dataclass(frozen=True)
class OpenFlags:
    """Portable open flags, encoded as a compact letter string.

    ======  ==========================================
    ``r``   open for reading
    ``w``   open for writing
    ``c``   create if absent (``O_CREAT``)
    ``x``   exclusive create (``O_EXCL``) -- the primitive the DSFS
            3-step creation protocol relies on
    ``t``   truncate (``O_TRUNC``)
    ``a``   append (``O_APPEND``)
    ``s``   synchronous writes (``O_SYNC``) -- the adapter's
            sync-vs-async switch simply adds this letter
    ======  ==========================================
    """

    read: bool = False
    write: bool = False
    create: bool = False
    exclusive: bool = False
    truncate: bool = False
    append: bool = False
    sync: bool = False

    _LETTERS = (
        ("read", "r"),
        ("write", "w"),
        ("create", "c"),
        ("exclusive", "x"),
        ("truncate", "t"),
        ("append", "a"),
        ("sync", "s"),
    )

    def encode(self) -> str:
        out = "".join(ch for attr, ch in self._LETTERS if getattr(self, attr))
        return out or "-"

    @classmethod
    def decode(cls, text: str) -> "OpenFlags":
        if text == "-":
            text = ""
        kwargs = {}
        letter_map = {ch: attr for attr, ch in cls._LETTERS}
        for ch in text:
            attr = letter_map.get(ch)
            if attr is None:
                raise InvalidRequestError(f"unknown open flag {ch!r}")
            kwargs[attr] = True
        flags = cls(**kwargs)
        if not (flags.read or flags.write):
            raise InvalidRequestError("open needs at least one of r/w")
        return flags

    def to_os_flags(self) -> int:
        if self.read and self.write:
            out = os.O_RDWR
        elif self.write:
            out = os.O_WRONLY
        else:
            out = os.O_RDONLY
        if self.create:
            out |= os.O_CREAT
        if self.exclusive:
            out |= os.O_EXCL
        if self.truncate:
            out |= os.O_TRUNC
        if self.append:
            out |= os.O_APPEND
        if self.sync and hasattr(os, "O_SYNC"):
            out |= os.O_SYNC
        return out

    @classmethod
    def parse_mode_string(cls, mode: str) -> "OpenFlags":
        """Translate a Python-style mode ('r', 'w', 'a', 'r+', 'x'...)."""
        mode = mode.replace("b", "")
        table = {
            "r": cls(read=True),
            "r+": cls(read=True, write=True),
            "w": cls(write=True, create=True, truncate=True),
            "w+": cls(read=True, write=True, create=True, truncate=True),
            "a": cls(write=True, create=True, append=True),
            "a+": cls(read=True, write=True, create=True, append=True),
            "x": cls(write=True, create=True, exclusive=True),
            "x+": cls(read=True, write=True, create=True, exclusive=True),
        }
        try:
            return table[mode]
        except KeyError:
            raise ValueError(f"unsupported open mode {mode!r}") from None


@dataclass(frozen=True)
class ChirpStat:
    """File metadata on the wire (a trimmed ``struct stat``).

    ``uid``/``gid`` carry the *server-local* numeric ids; the virtual user
    space means clients should not interpret them as their own users --
    ownership questions are answered by ACLs, not uids.
    """

    device: int
    inode: int
    mode: int
    nlink: int
    uid: int
    gid: int
    size: int
    atime: int
    mtime: int
    ctime: int

    @classmethod
    def from_os(cls, st: os.stat_result) -> "ChirpStat":
        return cls(
            device=st.st_dev,
            inode=st.st_ino,
            mode=st.st_mode,
            nlink=st.st_nlink,
            uid=st.st_uid,
            gid=st.st_gid,
            size=st.st_size,
            atime=int(st.st_atime),
            mtime=int(st.st_mtime),
            ctime=int(st.st_ctime),
        )

    def to_tokens(self) -> list[int]:
        return [
            self.device,
            self.inode,
            self.mode,
            self.nlink,
            self.uid,
            self.gid,
            self.size,
            self.atime,
            self.mtime,
            self.ctime,
        ]

    @classmethod
    def from_tokens(cls, tokens: list[str]) -> "ChirpStat":
        if len(tokens) != 10:
            raise InvalidRequestError(f"bad stat reply: {tokens!r}")
        vals = [int(t) for t in tokens]
        return cls(*vals)

    @property
    def is_dir(self) -> bool:
        return stat_mod.S_ISDIR(self.mode)

    @property
    def is_file(self) -> bool:
        return stat_mod.S_ISREG(self.mode)

    @property
    def is_symlink(self) -> bool:
        return stat_mod.S_ISLNK(self.mode)


@dataclass(frozen=True)
class StatFs:
    """Filesystem capacity summary, as reported to catalogs."""

    total_bytes: int
    free_bytes: int

    def to_tokens(self) -> list[int]:
        return [self.total_bytes, self.free_bytes]

    @classmethod
    def from_tokens(cls, tokens: list[str]) -> "StatFs":
        if len(tokens) != 2:
            raise InvalidRequestError(f"bad statfs reply: {tokens!r}")
        return cls(int(tokens[0]), int(tokens[1]))
