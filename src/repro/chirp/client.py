"""Client library for the Chirp protocol.

Mirrors the RPC fragment printed in the paper::

    conn = chirp_connect( host, port, timeout );
    chirp_open   ( conn, path, flags, mode, timeout );
    chirp_pread  ( conn, fd, data, length, off, timeout );
    chirp_pwrite ( conn, fd, data, length, off, timeout );
    chirp_close  ( conn, fd, timeout );
    chirp_stat   ( conn, path, statbuf, timeout );
    chirp_unlink ( conn, path, timeout );
    chirp_rename ( conn, path, newpath, timeout );

The client is deliberately stateless about file positions: ``pread`` and
``pwrite`` take explicit offsets, so the *caller* (normally the adapter)
owns seek state.  File descriptors are valid only for the lifetime of the
connection; on disconnect the server closes them, and callers recover by
reconnecting and re-opening (see :mod:`repro.adapter`).
"""

from __future__ import annotations

import io
import socket
import threading
from typing import BinaryIO, Optional, Union

from repro.auth.acl import Acl, AclEntry, parse_rights
from repro.auth.methods import ClientCredentials, authenticate_client
from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.util.errors import (
    ChirpError,
    DisconnectedError,
    TimedOutError,
    error_from_status,
)
from repro.util.wire import LineStream

__all__ = ["ChirpClient"]

_STREAM_CHUNK = 1 << 20


class ChirpClient:
    """A connection to one Chirp file server.

    Thread-safe: a lock serializes RPCs, matching the one-outstanding-call
    discipline of the original library.  All errors surface as
    :class:`~repro.util.errors.ChirpError` subclasses.
    """

    def __init__(
        self,
        host: str,
        port: int,
        credentials: Optional[ClientCredentials] = None,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.credentials = credentials or ClientCredentials()
        self.timeout = timeout
        self._lock = threading.RLock()
        self._stream: Optional[LineStream] = None
        self.subject: Optional[str] = None
        #: Incremented on every successful (re)connect.  File descriptors
        #: are connection-scoped, so holders compare generations to learn
        #: that their fd died with an old connection (and that a stale fd
        #: number must never be reused against a newer connection).
        self.generation = 0
        self.connect()

    # -- connection management -------------------------------------------

    def connect(self) -> None:
        """(Re)establish the TCP connection and authenticate."""
        with self._lock:
            self.close()
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except socket.timeout as exc:
                raise TimedOutError(f"connect to {self.host}:{self.port}") from exc
            except OSError as exc:
                raise DisconnectedError(
                    f"connect to {self.host}:{self.port} failed: {exc}"
                ) from exc
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            stream = LineStream(sock)
            try:
                self.subject = authenticate_client(stream, self.credentials)
            except Exception:
                stream.close()
                raise
            self._stream = stream
            self.generation += 1

    @property
    def is_connected(self) -> bool:
        return self._stream is not None

    def ensure_connected(self) -> None:
        """Reconnect only if the connection is down.

        Used by handle recovery: when several handles notice the same
        dead connection, only the first reconnects (one generation bump);
        the rest just re-open their files on the new connection.
        """
        with self._lock:
            if self._stream is None:
                self.connect()

    def close(self) -> None:
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None

    def __enter__(self) -> "ChirpClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self.is_connected else "closed"
        return f"ChirpClient({self.host}:{self.port}, {state}, subject={self.subject})"

    # -- RPC plumbing -------------------------------------------------------

    def _require_stream(self) -> LineStream:
        if self._stream is None:
            raise DisconnectedError("client is not connected")
        return self._stream

    def _rpc(self, *tokens: object, payload: bytes | None = None) -> list[str]:
        """Send one request, return reply tokens after the status.

        On failure the stream is torn down (a half-completed exchange can
        never be resynchronized) and :class:`DisconnectedError` propagates.
        """
        with self._lock:
            stream = self._require_stream()
            try:
                stream.write_line(*tokens)
                if payload:
                    stream.write(payload)
                reply = stream.read_tokens()
            except (DisconnectedError, socket.timeout) as exc:
                self._teardown()
                if isinstance(exc, socket.timeout):
                    raise TimedOutError(str(tokens[0])) from exc
                raise
            if not reply:
                self._teardown()
                raise DisconnectedError("empty reply line")
            status = int(reply[0])
            if status < 0:
                message = reply[1] if len(reply) > 1 else ""
                raise error_from_status(status, message)
            return reply

    def _teardown(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    # -- file I/O -------------------------------------------------------

    def open(
        self,
        path: str,
        flags: Union[str, OpenFlags] = "r",
        mode: int = 0o644,
    ) -> int:
        """Open a remote file; returns a connection-scoped fd."""
        if isinstance(flags, str):
            try:
                flags = OpenFlags.decode(flags)
            except ChirpError:
                flags = OpenFlags.parse_mode_string(flags)
        reply = self._rpc("open", path, flags.encode(), mode)
        return int(reply[0])

    def close_fd(self, fd: int) -> None:
        self._rpc("close", fd)

    def pread(self, fd: int, length: int, offset: int) -> bytes:
        with self._lock:
            stream = self._require_stream()
            try:
                stream.write_line("pread", fd, length, offset)
                reply = stream.read_tokens()
                status = int(reply[0])
                if status < 0:
                    raise error_from_status(status, reply[1] if len(reply) > 1 else "")
                return stream.read_exact(status)
            except DisconnectedError:
                self._teardown()
                raise

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        reply = self._rpc("pwrite", fd, len(data), offset, payload=bytes(data))
        return int(reply[0])

    def fsync(self, fd: int) -> None:
        self._rpc("fsync", fd)

    def fstat(self, fd: int) -> ChirpStat:
        reply = self._rpc("fstat", fd)
        return ChirpStat.from_tokens(reply[1:])

    def ftruncate(self, fd: int, size: int) -> None:
        self._rpc("ftruncate", fd, size)

    # -- namespace ------------------------------------------------------

    def stat(self, path: str) -> ChirpStat:
        reply = self._rpc("stat", path)
        return ChirpStat.from_tokens(reply[1:])

    def lstat(self, path: str) -> ChirpStat:
        reply = self._rpc("lstat", path)
        return ChirpStat.from_tokens(reply[1:])

    def access(self, path: str, rights: str = "l") -> None:
        self._rpc("access", path, rights)

    def exists(self, path: str) -> bool:
        """Convenience: stat without raising for a missing path."""
        try:
            self.stat(path)
            return True
        except ChirpError:
            return False

    def unlink(self, path: str) -> None:
        self._rpc("unlink", path)

    def rename(self, old: str, new: str) -> None:
        self._rpc("rename", old, new)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._rpc("mkdir", path, mode)

    def rmdir(self, path: str) -> None:
        self._rpc("rmdir", path)

    def getdir(self, path: str) -> list[str]:
        with self._lock:
            stream = self._require_stream()
            try:
                stream.write_line("getdir", path)
                reply = stream.read_tokens()
                status = int(reply[0])
                if status < 0:
                    raise error_from_status(status, reply[1] if len(reply) > 1 else "")
                names = []
                for _ in range(status):
                    toks = stream.read_tokens()
                    names.append(toks[0] if toks else "")
                return names
            except DisconnectedError:
                self._teardown()
                raise

    def truncate(self, path: str, size: int) -> None:
        self._rpc("truncate", path, size)

    def utime(self, path: str, atime: int, mtime: int) -> None:
        self._rpc("utime", path, atime, mtime)

    def checksum(self, path: str) -> str:
        reply = self._rpc("checksum", path)
        return reply[1]

    # -- streaming whole files -------------------------------------------

    def getfile(self, path: str, sink: Optional[BinaryIO] = None) -> bytes | int:
        """Stream a whole file.

        With no ``sink``, returns the contents as bytes.  With a ``sink``,
        streams into it and returns the byte count (never materializing
        the file in client memory).
        """
        with self._lock:
            stream = self._require_stream()
            try:
                stream.write_line("getfile", path)
                reply = stream.read_tokens()
                status = int(reply[0])
                if status < 0:
                    raise error_from_status(status, reply[1] if len(reply) > 1 else "")
                if sink is None:
                    buf = io.BytesIO()
                    stream.read_into_file(buf, status, _STREAM_CHUNK)
                    return buf.getvalue()
                stream.read_into_file(sink, status, _STREAM_CHUNK)
                return status
            except DisconnectedError:
                self._teardown()
                raise

    def putfile(
        self,
        path: str,
        data: Union[bytes, BinaryIO],
        mode: int = 0o644,
        length: Optional[int] = None,
    ) -> int:
        """Stream a whole file to the server (create/truncate semantics)."""
        with self._lock:
            stream = self._require_stream()
            if isinstance(data, (bytes, bytearray, memoryview)):
                payload: Optional[bytes] = bytes(data)
                total = len(payload)
            else:
                payload = None
                if length is None:
                    pos = data.tell()
                    data.seek(0, io.SEEK_END)
                    length = data.tell() - pos
                    data.seek(pos)
                total = length
            try:
                stream.write_line("putfile", path, mode, total)
                if payload is not None:
                    stream.write(payload)
                else:
                    stream.write_from_file(data, total, _STREAM_CHUNK)
                reply = stream.read_tokens()
                status = int(reply[0])
                if status < 0:
                    raise error_from_status(status, reply[1] if len(reply) > 1 else "")
                return status
            except DisconnectedError:
                self._teardown()
                raise

    # -- ACLs and server state ---------------------------------------------

    def getacl(self, path: str) -> Acl:
        with self._lock:
            stream = self._require_stream()
            try:
                stream.write_line("getacl", path)
                reply = stream.read_tokens()
                status = int(reply[0])
                if status < 0:
                    raise error_from_status(status, reply[1] if len(reply) > 1 else "")
                entries = []
                for _ in range(status):
                    toks = stream.read_tokens()
                    if len(toks) == 2:
                        entries.append(AclEntry(toks[0], parse_rights(toks[1])))
                return Acl(entries)
            except DisconnectedError:
                self._teardown()
                raise

    def setacl(self, path: str, pattern: str, rights: str) -> None:
        self._rpc("setacl", path, pattern, rights)

    def whoami(self) -> str:
        reply = self._rpc("whoami")
        return reply[1]

    def statfs(self) -> StatFs:
        reply = self._rpc("statfs")
        return StatFs.from_tokens(reply[1:])
