"""Client library for the Chirp protocol.

Mirrors the RPC fragment printed in the paper::

    conn = chirp_connect( host, port, timeout );
    chirp_open   ( conn, path, flags, mode, timeout );
    chirp_pread  ( conn, fd, data, length, off, timeout );
    chirp_pwrite ( conn, fd, data, length, off, timeout );
    chirp_close  ( conn, fd, timeout );
    chirp_stat   ( conn, path, statbuf, timeout );
    chirp_unlink ( conn, path, timeout );
    chirp_rename ( conn, path, newpath, timeout );

The client is deliberately stateless about file positions: ``pread`` and
``pwrite`` take explicit offsets, so the *caller* (normally the adapter)
owns seek state.

Since the transport refactor a ``ChirpClient`` is a *session* over an
:class:`~repro.transport.endpoint.Endpoint`, which may hold several
warm TCP connections to the same server.  Stateless operations (stat,
getfile, putfile, namespace calls) check a connection out for exactly
one exchange, so threads sharing one client proceed concurrently up to
the endpoint's connection cap instead of serializing on a global lock.

File descriptors remain *connection*-scoped, exactly as the paper's
server frees them on disconnect.  The client therefore hands out virtual
fds and routes each one to the connection that opened it; a fd whose
connection died surfaces :class:`~repro.util.errors.DisconnectedError`,
and handle-level recovery (see :mod:`repro.core.cfs`) re-opens.  The
endpoint's ``generation`` advances exactly once per reconnect-from-dead,
so a stale fd is never replayed against a newer connection.
"""

from __future__ import annotations

import itertools
import threading
from typing import BinaryIO, Optional, Union

from repro.auth.acl import Acl
from repro.auth.methods import ClientCredentials
from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.transport.connection import Connection
from repro.transport.deadline import Deadline
from repro.transport.endpoint import Endpoint
from repro.transport.metrics import MetricsRegistry
from repro.util.errors import (
    BadFileDescriptorError,
    ChirpError,
    DisconnectedError,
)

__all__ = ["ChirpClient"]


class ChirpClient:
    """A session with one Chirp file server.

    Thread-safe.  All errors surface as
    :class:`~repro.util.errors.ChirpError` subclasses.

    :param endpoint: share an existing endpoint session (the
        :class:`~repro.core.pool.ClientPool` path); when omitted, the
        client owns a private endpoint built from ``credentials``,
        ``timeout`` and ``max_conns``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        credentials: Optional[ClientCredentials] = None,
        timeout: float = 30.0,
        endpoint: Optional[Endpoint] = None,
        max_conns: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if endpoint is None:
            kwargs = {}
            if max_conns is not None:
                kwargs["max_conns"] = max_conns
            if metrics is not None:
                kwargs["metrics"] = metrics
            endpoint = Endpoint(
                host,
                int(port),
                credentials=credentials,
                timeout=timeout,
                **kwargs,
            )
        self.endpoint = endpoint
        self.host = endpoint.host
        self.port = endpoint.port
        self.credentials = endpoint.credentials
        self.timeout = endpoint.timeout
        # Virtual fd -> (connection, raw server fd).  Virtual fds are
        # never reused (monotonic counter), so a stale number can never
        # alias an fd opened after a reconnect.
        self._fd_lock = threading.Lock()
        self._fds: dict[int, tuple[Connection, int]] = {}
        self._next_fd = itertools.count(3)
        self.connect()

    # -- connection management -------------------------------------------

    def connect(self) -> None:
        """(Re)establish the session: drop every connection (and every
        fd with them) and dial afresh.  Advances the generation."""
        with self._fd_lock:
            self._fds.clear()
        self.endpoint.connect()

    @property
    def generation(self) -> int:
        """Advances exactly once per reconnect; fds opened under an older
        generation died with their connections."""
        return self.endpoint.generation

    @property
    def subject(self) -> Optional[str]:
        return self.endpoint.subject

    @property
    def is_connected(self) -> bool:
        return self.endpoint.is_connected

    def ensure_connected(self) -> None:
        """Reconnect only if every connection is down.

        Used by handle recovery: when several handles notice the same
        dead server, only the first reconnects (one generation bump);
        the rest just re-open their files on the new connection.
        """
        self.endpoint.ensure_connected()

    @property
    def _stream(self):
        """One live connection's raw stream (protocol tests poke the wire)."""
        return self.endpoint.raw_stream()

    def close(self) -> None:
        # The fd table is NOT cleared: outstanding handles probing their
        # fds must keep seeing DisconnectedError (their connections are
        # closed), exactly as if the server had vanished.  connect()
        # clears it.
        self.endpoint.close()

    def __enter__(self) -> "ChirpClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self.is_connected else "closed"
        return f"ChirpClient({self.host}:{self.port}, {state}, subject={self.subject})"

    # -- RPC plumbing -------------------------------------------------------

    def _stateless(self, op):
        """Run one exchange on any available connection."""
        conn = self.endpoint.checkout()
        try:
            return op(conn)
        finally:
            self.endpoint.checkin(conn)

    def _fd_conn(self, fd: int) -> tuple[Connection, int]:
        """Route a virtual fd to its owning connection."""
        with self._fd_lock:
            entry = self._fds.get(fd)
        if entry is None:
            # Never issued, or explicitly closed.  Dead-connection fds
            # stay mapped (to a closed connection) so recovery still sees
            # DisconnectedError below.
            raise BadFileDescriptorError(f"fd {fd} is not open on this client")
        conn, raw_fd = entry
        if conn.closed:
            # Keep the mapping: the caller may probe the dead fd again
            # before recovery runs, and each probe must keep reading as a
            # disconnect.  connect()/close() clear the table.
            raise DisconnectedError(f"fd {fd}: its connection is gone")
        return conn, raw_fd

    # -- file I/O -------------------------------------------------------

    def open(
        self,
        path: str,
        flags: Union[str, OpenFlags] = "r",
        mode: int = 0o644,
    ) -> int:
        """Open a remote file; returns a connection-scoped fd.

        The returned fd is bound to the connection that opened it; all
        later operations on it route there, concurrent with traffic on
        the endpoint's other connections.
        """
        if isinstance(flags, str):
            try:
                flags = OpenFlags.decode(flags)
            except ChirpError:
                flags = OpenFlags.parse_mode_string(flags)
        conn = self.endpoint.checkout()
        try:
            raw_fd = conn.open_fd(path, flags.encode(), mode)
        finally:
            self.endpoint.checkin(conn)
        with self._fd_lock:
            fd = next(self._next_fd)
            self._fds[fd] = (conn, raw_fd)
        return fd

    def close_fd(self, fd: int) -> None:
        try:
            conn, raw_fd = self._fd_conn(fd)
        except DisconnectedError:
            # Explicit close is end-of-life even for a dead connection's
            # fd; the server freed it on disconnect already.
            with self._fd_lock:
                self._fds.pop(fd, None)
            raise
        try:
            conn.close_fd(raw_fd)
        finally:
            with self._fd_lock:
                self._fds.pop(fd, None)

    def pread(self, fd: int, length: int, offset: int, deadline=None) -> bytes:
        conn, raw_fd = self._fd_conn(fd)
        return conn.pread(raw_fd, length, offset, deadline=deadline)

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        conn, raw_fd = self._fd_conn(fd)
        return conn.pwrite(raw_fd, data, offset)

    def fsync(self, fd: int) -> None:
        conn, raw_fd = self._fd_conn(fd)
        conn.fsync(raw_fd)

    def fstat(self, fd: int) -> ChirpStat:
        conn, raw_fd = self._fd_conn(fd)
        return conn.fstat(raw_fd)

    def ftruncate(self, fd: int, size: int) -> None:
        conn, raw_fd = self._fd_conn(fd)
        conn.ftruncate(raw_fd, size)

    # -- namespace ------------------------------------------------------

    def stat(self, path: str, deadline: Optional[Deadline] = None) -> ChirpStat:
        return self._stateless(lambda c: c.stat(path, deadline=deadline))

    def lstat(self, path: str) -> ChirpStat:
        return self._stateless(lambda c: c.lstat(path))

    def access(self, path: str, rights: str = "l") -> None:
        self._stateless(lambda c: c.access(path, rights))

    def exists(self, path: str) -> bool:
        """Convenience: stat without raising for a missing path."""
        try:
            self.stat(path)
            return True
        except ChirpError:
            return False

    def unlink(self, path: str) -> None:
        self._stateless(lambda c: c.unlink(path))

    def rename(self, old: str, new: str) -> None:
        self._stateless(lambda c: c.rename(old, new))

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._stateless(lambda c: c.mkdir(path, mode))

    def rmdir(self, path: str) -> None:
        self._stateless(lambda c: c.rmdir(path))

    def getdir(self, path: str, deadline: Optional[Deadline] = None) -> list[str]:
        return self._stateless(lambda c: c.getdir(path, deadline=deadline))

    def truncate(self, path: str, size: int) -> None:
        self._stateless(lambda c: c.truncate(path, size))

    def utime(self, path: str, atime: int, mtime: int) -> None:
        self._stateless(lambda c: c.utime(path, atime, mtime))

    def checksum(self, path: str, deadline: Optional[Deadline] = None) -> str:
        return self._stateless(lambda c: c.checksum(path, deadline=deadline))

    # -- streaming whole files -------------------------------------------

    def getfile(self, path: str, sink: Optional[BinaryIO] = None) -> bytes | int:
        """Stream a whole file.

        With no ``sink``, returns the contents as bytes.  With a ``sink``,
        streams into it and returns the byte count (never materializing
        the file in client memory).
        """
        return self._stateless(lambda c: c.getfile(path, sink))

    def putfile(
        self,
        path: str,
        data: Union[bytes, BinaryIO],
        mode: int = 0o644,
        length: Optional[int] = None,
    ) -> int:
        """Stream a whole file to the server (create/truncate semantics)."""
        return self._stateless(lambda c: c.putfile(path, data, mode, length))

    # -- ACLs and server state ---------------------------------------------

    def getacl(self, path: str) -> Acl:
        return self._stateless(lambda c: c.getacl(path))

    def setacl(self, path: str, pattern: str, rights: str) -> None:
        self._stateless(lambda c: c.setacl(path, pattern, rights))

    def whoami(self) -> str:
        return self._stateless(lambda c: c.whoami())

    def statfs(self) -> StatFs:
        return self._stateless(lambda c: c.statfs())
