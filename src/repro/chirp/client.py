"""Client library for the Chirp protocol.

Mirrors the RPC fragment printed in the paper::

    conn = chirp_connect( host, port, timeout );
    chirp_open   ( conn, path, flags, mode, timeout );
    chirp_pread  ( conn, fd, data, length, off, timeout );
    chirp_pwrite ( conn, fd, data, length, off, timeout );
    chirp_close  ( conn, fd, timeout );
    chirp_stat   ( conn, path, statbuf, timeout );
    chirp_unlink ( conn, path, timeout );
    chirp_rename ( conn, path, newpath, timeout );

The client is deliberately stateless about file positions: ``pread`` and
``pwrite`` take explicit offsets, so the *caller* (normally the adapter)
owns seek state.

Since the transport refactor a ``ChirpClient`` is a *session* over an
:class:`~repro.transport.endpoint.Endpoint`, which may hold several
warm TCP connections to the same server.  Stateless operations (stat,
getfile, putfile, namespace calls) check a connection out for exactly
one exchange, so threads sharing one client proceed concurrently up to
the endpoint's connection cap instead of serializing on a global lock.

File descriptors remain *connection*-scoped, exactly as the paper's
server frees them on disconnect.  The client therefore hands out virtual
fds and routes each one to the connection that opened it; a fd whose
connection died surfaces :class:`~repro.util.errors.DisconnectedError`,
and handle-level recovery (see :mod:`repro.core.cfs`) re-opens.  The
endpoint's ``generation`` advances exactly once per reconnect-from-dead,
so a stale fd is never replayed against a newer connection.
"""

from __future__ import annotations

import itertools
import posixpath
import threading
from typing import BinaryIO, Optional, Union

from repro.auth.acl import Acl
from repro.auth.methods import ClientCredentials
from repro.cache.manager import CacheManager
from repro.cache.meta import MetaCache
from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.transport.connection import Connection
from repro.transport.deadline import Deadline
from repro.transport.endpoint import Endpoint
from repro.transport.metrics import MetricsRegistry
from repro.util.checksum import data_checksum
from repro.util.errors import (
    BadFileDescriptorError,
    BusyError,
    ChirpError,
    DisconnectedError,
    DoesNotExistError,
    IntegrityError,
)
from repro.util.paths import normalize_virtual

__all__ = ["ChirpClient"]


class _HashingSink:
    """Tees a streamed download into a sink while hashing it."""

    def __init__(self, sink: BinaryIO):
        from repro.util.checksum import new_hash

        self._sink = sink
        self._hash = new_hash()

    def write(self, data: bytes) -> int:
        self._hash.update(data)
        return self._sink.write(data)

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


class ChirpClient:
    """A session with one Chirp file server.

    Thread-safe.  All errors surface as
    :class:`~repro.util.errors.ChirpError` subclasses.

    :param endpoint: share an existing endpoint session (the
        :class:`~repro.core.pool.ClientPool` path); when omitted, the
        client owns a private endpoint built from ``credentials``,
        ``timeout`` and ``max_conns``.
    :param cache: optional :class:`~repro.cache.manager.CacheManager`.
        When its policy allows metadata caching, ``stat``/``lstat``/
        ``getdir`` (and negative stats) are served from it; every
        mutating verb on this client invalidates the affected entries
        (same-client invalidation -- other clients' writes are only seen
        after TTL expiry, per the policy's coherence contract).
    """

    def __init__(
        self,
        host: str,
        port: int,
        credentials: Optional[ClientCredentials] = None,
        timeout: float = 30.0,
        endpoint: Optional[Endpoint] = None,
        max_conns: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        cache: Optional[CacheManager] = None,
    ):
        if endpoint is None:
            kwargs = {}
            if max_conns is not None:
                kwargs["max_conns"] = max_conns
            if metrics is not None:
                kwargs["metrics"] = metrics
            endpoint = Endpoint(
                host,
                int(port),
                credentials=credentials,
                timeout=timeout,
                **kwargs,
            )
        self.endpoint = endpoint
        self.host = endpoint.host
        self.port = endpoint.port
        self.credentials = endpoint.credentials
        self.timeout = endpoint.timeout
        self.cache = cache
        # Virtual fd -> (connection, raw server fd, server path).  The
        # path rides along so fd-level writes can invalidate the cache.
        # Virtual fds are never reused (monotonic counter), so a stale
        # number can never alias an fd opened after a reconnect.
        self._fd_lock = threading.Lock()
        self._fds: dict[int, tuple[Connection, int, str]] = {}
        self._next_fd = itertools.count(3)
        self.connect()

    # -- connection management -------------------------------------------

    def connect(self) -> None:
        """(Re)establish the session: drop every connection (and every
        fd with them) and dial afresh.  Advances the generation."""
        with self._fd_lock:
            self._fds.clear()
        self.endpoint.connect()

    @property
    def generation(self) -> int:
        """Advances exactly once per reconnect; fds opened under an older
        generation died with their connections."""
        return self.endpoint.generation

    @property
    def subject(self) -> Optional[str]:
        return self.endpoint.subject

    @property
    def is_connected(self) -> bool:
        return self.endpoint.is_connected

    def ensure_connected(self) -> None:
        """Reconnect only if every connection is down.

        Used by handle recovery: when several handles notice the same
        dead server, only the first reconnects (one generation bump);
        the rest just re-open their files on the new connection.
        """
        self.endpoint.ensure_connected()

    @property
    def _stream(self):
        """One live connection's raw stream (protocol tests poke the wire)."""
        return self.endpoint.raw_stream()

    def close(self) -> None:
        # The fd table is NOT cleared: outstanding handles probing their
        # fds must keep seeing DisconnectedError (their connections are
        # closed), exactly as if the server had vanished.  connect()
        # clears it.
        self.endpoint.close()

    def __enter__(self) -> "ChirpClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self.is_connected else "closed"
        return f"ChirpClient({self.host}:{self.port}, {state}, subject={self.subject})"

    # -- RPC plumbing -------------------------------------------------------

    def _stateless(self, op):
        """Run one exchange on any available connection.

        A ``BUSY`` refusal (admission control or a draining server) is
        retried here with the server's retry-after hint as the backoff,
        falling back to the endpoint policy's schedule when the refusal
        carries none.  The connection is checked in *before* sleeping --
        it is perfectly healthy, the server just declined the work -- so
        the breaker never moves and the pool is not held hostage.

        A session whose every connection has died (the server was
        restarted under us) is *redialed* before the exchange: stateless
        ops carry no per-fd state, so there is nothing to recover beyond
        the TCP channel itself.  Without this, a long-lived client (the
        keeper's repair pool, most painfully) stays wedged on a dead
        socket forever after its server reboots.  A disconnect *during*
        the exchange still propagates -- retrying a possibly-applied
        operation is the caller's policy decision, as before.
        """
        policy = self.endpoint.policy
        delays = None
        while True:
            try:
                conn = self.endpoint.checkout()
            except DisconnectedError:
                # Every connection is gone; dial afresh (or fail with the
                # dial's own error -- breaker-gated, so a known-sick
                # server refuses instantly rather than paying a timeout).
                self.endpoint.ensure_connected()
                conn = self.endpoint.checkout()
            busy: BusyError | None = None
            try:
                return op(conn)
            except BusyError as exc:
                busy = exc
            finally:
                self.endpoint.checkin(conn)
            if delays is None:
                delays = policy.delays()
            delay = next(delays, None)
            if delay is None:
                raise busy
            if busy.retry_after_s is not None:
                delay = min(busy.retry_after_s, policy.max_delay)
            policy.clock.sleep(delay)

    def _fd_entry(self, fd: int) -> tuple[Connection, int, str]:
        """Route a virtual fd to its owning connection (and server path)."""
        with self._fd_lock:
            entry = self._fds.get(fd)
        if entry is None:
            # Never issued, or explicitly closed.  Dead-connection fds
            # stay mapped (to a closed connection) so recovery still sees
            # DisconnectedError below.
            raise BadFileDescriptorError(f"fd {fd} is not open on this client")
        conn, raw_fd, path = entry
        if conn.closed:
            # Keep the mapping: the caller may probe the dead fd again
            # before recovery runs, and each probe must keep reading as a
            # disconnect.  connect()/close() clear the table.
            raise DisconnectedError(f"fd {fd}: its connection is gone")
        return conn, raw_fd, path

    def _fd_conn(self, fd: int) -> tuple[Connection, int]:
        conn, raw_fd, _ = self._fd_entry(fd)
        return conn, raw_fd

    # -- cache plumbing --------------------------------------------------

    def _ckey(self, path: str) -> str:
        return f"{self.host}:{self.port}:{normalize_virtual(path)}"

    def _parent_ckey(self, path: str) -> str:
        parent = posixpath.dirname(normalize_virtual(path)) or "/"
        return f"{self.host}:{self.port}:{parent}"

    def _cache_entry_changed(self, path: str, data: bool = False) -> None:
        """A namespace entry changed under this client: drop its cached
        metadata (and blocks when ``data``), plus the parent listing."""
        if self.cache is None:
            return
        if data:
            self.cache.invalidate_data(self._ckey(path))
        else:
            self.cache.invalidate_meta(self._ckey(path))
        self.cache.invalidate_dirent(self._parent_ckey(path))

    # -- file I/O -------------------------------------------------------

    def open(
        self,
        path: str,
        flags: Union[str, OpenFlags] = "r",
        mode: int = 0o644,
    ) -> int:
        """Open a remote file; returns a connection-scoped fd.

        The returned fd is bound to the connection that opened it; all
        later operations on it route there, concurrent with traffic on
        the endpoint's other connections.
        """
        if isinstance(flags, str):
            try:
                flags = OpenFlags.decode(flags)
            except ChirpError:
                flags = OpenFlags.parse_mode_string(flags)
        conn = self.endpoint.checkout()
        try:
            raw_fd = conn.open_fd(path, flags.encode(), mode)
        finally:
            self.endpoint.checkin(conn)
        with self._fd_lock:
            fd = next(self._next_fd)
            self._fds[fd] = (conn, raw_fd, path)
        if self.cache is not None:
            if flags.truncate:
                # O_TRUNC wiped the data on the server.
                self.cache.invalidate_data(self._ckey(path))
            if flags.create:
                # The file may have just come into existence: kill any
                # negative stat entry and the parent's cached listing.
                self._cache_entry_changed(path)
        return fd

    def close_fd(self, fd: int) -> None:
        try:
            conn, raw_fd = self._fd_conn(fd)
        except DisconnectedError:
            # Explicit close is end-of-life even for a dead connection's
            # fd; the server freed it on disconnect already.
            with self._fd_lock:
                self._fds.pop(fd, None)
            raise
        try:
            conn.close_fd(raw_fd)
        finally:
            with self._fd_lock:
                self._fds.pop(fd, None)

    def pread(self, fd: int, length: int, offset: int, deadline=None) -> bytes:
        conn, raw_fd = self._fd_conn(fd)
        return conn.pread(raw_fd, length, offset, deadline=deadline)

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        conn, raw_fd, path = self._fd_entry(fd)
        n = conn.pwrite(raw_fd, data, offset)
        if self.cache is not None and n:
            self.cache.on_data_write(self._ckey(path), offset, n)
        return n

    def fsync(self, fd: int) -> None:
        conn, raw_fd = self._fd_conn(fd)
        conn.fsync(raw_fd)

    def fstat(self, fd: int) -> ChirpStat:
        conn, raw_fd = self._fd_conn(fd)
        return conn.fstat(raw_fd)

    def ftruncate(self, fd: int, size: int) -> None:
        conn, raw_fd, path = self._fd_entry(fd)
        conn.ftruncate(raw_fd, size)
        if self.cache is not None:
            self.cache.invalidate_data(self._ckey(path))

    # -- namespace ------------------------------------------------------

    def _cached_meta(self, kind: str, path: str, fetch):
        """Serve one metadata lookup through the cache (incl. absences)."""
        cache = self.cache
        if cache is None or not cache.meta_enabled:
            return fetch()
        key = self._ckey(path)
        hit = cache.meta.get(kind, key)
        if hit is MetaCache.NEGATIVE:
            raise DoesNotExistError(f"{path}: no such file or directory (cached)")
        if hit is not MetaCache.MISS:
            return hit
        # Sample the generation before the RPC: if a same-client mutation
        # invalidates this key mid-fetch, the put below is refused rather
        # than installing the pre-mutation result.
        generation = cache.meta.generation(key)
        try:
            value = fetch()
        except DoesNotExistError:
            cache.meta.put_negative(
                kind, key, cache.policy.negative_expiry(), generation=generation
            )
            raise
        cache.meta.put(
            kind, key, value, cache.policy.meta_expiry(), generation=generation
        )
        return value

    def stat(self, path: str, deadline: Optional[Deadline] = None) -> ChirpStat:
        return self._cached_meta(
            "stat", path, lambda: self._stateless(lambda c: c.stat(path, deadline=deadline))
        )

    def lstat(self, path: str) -> ChirpStat:
        return self._cached_meta(
            "lstat", path, lambda: self._stateless(lambda c: c.lstat(path))
        )

    def access(self, path: str, rights: str = "l") -> None:
        self._stateless(lambda c: c.access(path, rights))

    def exists(self, path: str) -> bool:
        """Convenience: stat without raising for a missing path."""
        try:
            self.stat(path)
            return True
        except ChirpError:
            return False

    def unlink(self, path: str) -> None:
        self._stateless(lambda c: c.unlink(path))
        self._cache_entry_changed(path, data=True)

    def rename(self, old: str, new: str) -> None:
        self._stateless(lambda c: c.rename(old, new))
        if self.cache is not None:
            # ``old`` may be a directory, in which case every descendant's
            # cached entry is keyed under the old prefix and would poison
            # a later reuse of that path; sweep both subtrees.
            self.cache.invalidate_subtree(self._ckey(old))
            self.cache.invalidate_subtree(self._ckey(new))
            self.cache.invalidate_dirent(self._parent_ckey(old))
            self.cache.invalidate_dirent(self._parent_ckey(new))

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._stateless(lambda c: c.mkdir(path, mode))
        self._cache_entry_changed(path)

    def rmdir(self, path: str) -> None:
        self._stateless(lambda c: c.rmdir(path))
        self._cache_entry_changed(path)

    def getdir(self, path: str, deadline: Optional[Deadline] = None) -> list[str]:
        names = self._cached_meta(
            "dirent",
            path,
            lambda: tuple(
                self._stateless(lambda c: c.getdir(path, deadline=deadline))
            ),
        )
        # Stored as a tuple so a caller mutating its copy cannot poison
        # the cache.
        return list(names)

    def truncate(self, path: str, size: int) -> None:
        self._stateless(lambda c: c.truncate(path, size))
        if self.cache is not None:
            self.cache.invalidate_data(self._ckey(path))

    def utime(self, path: str, atime: int, mtime: int) -> None:
        self._stateless(lambda c: c.utime(path, atime, mtime))
        if self.cache is not None:
            self.cache.invalidate_meta(self._ckey(path))

    def checksum(self, path: str, deadline: Optional[Deadline] = None) -> str:
        return self._stateless(lambda c: c.checksum(path, deadline=deadline))

    # -- content-addressed operations (CAS servers only) -----------------

    def lookup(self, key: str) -> bool:
        return self._stateless(lambda c: c.lookup(key))

    def putkey(self, path: str, key: str, mode: int = 0o644) -> int:
        """Copy-by-reference: bind ``path`` to an existing blob by key."""
        n = self._stateless(lambda c: c.putkey(path, key, mode))
        self._cache_entry_changed(path, data=True)
        return n

    def keyof(self, path: str) -> str:
        return self._stateless(lambda c: c.keyof(path))

    # -- streaming whole files -------------------------------------------

    def getfile(self, path: str, sink: Optional[BinaryIO] = None) -> bytes | int:
        """Stream a whole file.

        With no ``sink``, returns the contents as bytes.  With a ``sink``,
        streams into it and returns the byte count (never materializing
        the file in client memory).
        """
        return self._stateless(lambda c: c.getfile(path, sink))

    def getfile_verified(
        self, path: str, expected: str, sink: Optional[BinaryIO] = None
    ) -> bytes | int:
        """Stream a whole file and verify it hashes to ``expected``.

        On a digest mismatch -- the server holds (or served) corrupted
        bytes -- raises :class:`~repro.util.errors.IntegrityError`.
        With no ``sink`` the corrupt bytes are never returned; with a
        ``sink`` they may already have been streamed into it, so the
        caller must discard the sink's contents on error (or fetch
        through a spool, as :meth:`repro.core.dsdb.DSDB.fetch` does).
        """
        if sink is None:
            data = self.getfile(path)
            if data_checksum(data) != expected:
                raise IntegrityError(
                    f"{path}: content digest mismatch (expected {expected})"
                )
            return data
        tee = _HashingSink(sink)
        count = self.getfile(path, tee)
        if tee.hexdigest() != expected:
            raise IntegrityError(
                f"{path}: content digest mismatch (expected {expected})"
            )
        return count

    def putfile(
        self,
        path: str,
        data: Union[bytes, BinaryIO],
        mode: int = 0o644,
        length: Optional[int] = None,
    ) -> int:
        """Stream a whole file to the server (create/truncate semantics)."""
        n = self._stateless(lambda c: c.putfile(path, data, mode, length))
        self._cache_entry_changed(path, data=True)
        return n

    # -- ACLs and server state ---------------------------------------------

    def getacl(self, path: str) -> Acl:
        return self._stateless(lambda c: c.getacl(path))

    def setacl(self, path: str, pattern: str, rights: str) -> None:
        self._stateless(lambda c: c.setacl(path, pattern, rights))

    def whoami(self) -> str:
        return self._stateless(lambda c: c.whoami())

    def statfs(self) -> StatFs:
        return self._stateless(lambda c: c.statfs())
