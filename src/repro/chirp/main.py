"""Command-line entry point: deploy a file server with one command.

The paper's rapid-deployment principle: "A basic file server can be
deployed by an ordinary user, who runs a single command with no
configuration, setup, or software installation."

::

    tss-server --root /scratch/me --owner unix:me --port 9094 \
               --catalog catalog.cse.nd.edu:9097
"""

from __future__ import annotations

import argparse
import getpass
import logging

from repro.auth.methods import AuthContext
from repro.chirp.server import FileServer, ServerConfig
from repro.util.signals import GracefulSignals

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tss-server", description="Deploy a Chirp personal file server."
    )
    parser.add_argument("--root", default=".", help="directory to export (default: cwd)")
    parser.add_argument(
        "--owner",
        default=f"unix:{getpass.getuser()}",
        help="owner subject (default: unix:<current user>)",
    )
    parser.add_argument("--host", default="0.0.0.0")
    parser.add_argument("--port", type=int, default=9094)
    parser.add_argument("--name", default="", help="advertised server name")
    parser.add_argument(
        "--auth",
        default="hostname,unix",
        help="comma-separated auth methods to enable",
    )
    parser.add_argument(
        "--catalog",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="catalog to report to (repeatable)",
    )
    parser.add_argument("--report-interval", type=float, default=60.0)
    parser.add_argument("--quota-bytes", type=int, default=None)
    parser.add_argument(
        "--store",
        choices=(
            "local", "memory", "cas",
            "faulty+local", "faulty+memory", "faulty+cas",
        ),
        default="local",
        help="storage resource behind the server: 'local' exports the "
        "root directory as-is, 'memory' keeps everything in RAM, 'cas' "
        "stores deduplicated content-addressed blobs under the root; a "
        "'faulty+' prefix wraps the store in the disk-fault injector "
        "(chaos testing; pass-through until a fault plan is scripted)",
    )
    parser.add_argument(
        "--eio-degrade-threshold",
        type=int,
        default=3,
        metavar="N",
        help="consecutive write I/O errors before the volume degrades "
        "to read-only (ENOSPC degrades immediately)",
    )
    parser.add_argument(
        "--recovery-probe-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="minimum interval between read-only recovery probes",
    )
    parser.add_argument(
        "--sync-meta",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="fsync parent directories after namespace changes "
        "(--no-sync-meta trades crash durability for speed)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="close connections silent for this long (default: never)",
    )
    parser.add_argument(
        "--max-conns",
        type=int,
        default=None,
        metavar="N",
        help="admission control: serve at most N concurrent connections; "
        "excess connections get a BUSY refusal instead of a thread "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--max-inflight-per-subject",
        type=int,
        default=None,
        metavar="N",
        help="refuse a subject's requests past N concurrently in flight "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="on SIGTERM, wait this long for in-flight requests before "
        "closing (a second SIGTERM exits immediately)",
    )
    parser.add_argument(
        "--busy-retry-ms",
        type=int,
        default=250,
        metavar="MS",
        help="retry-after hint carried in BUSY refusals",
    )
    parser.add_argument("--verbose", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    catalogs = []
    for spec in args.catalog:
        host, _, port = spec.rpartition(":")
        catalogs.append((host, int(port)))
    config = ServerConfig(
        root=args.root,
        owner=args.owner,
        host=args.host,
        port=args.port,
        name=args.name,
        auth=AuthContext(enabled=tuple(args.auth.split(","))),
        catalog_addrs=tuple(catalogs),
        report_interval=args.report_interval,
        quota_bytes=args.quota_bytes,
        sync_meta=args.sync_meta,
        idle_timeout=args.idle_timeout,
        store=args.store,
        eio_degrade_threshold=args.eio_degrade_threshold,
        recovery_probe_interval=args.recovery_probe_interval,
        max_conns=args.max_conns,
        max_inflight_per_subject=args.max_inflight_per_subject,
        drain_timeout=args.drain_timeout,
        busy_retry_ms=args.busy_retry_ms,
    )
    server = FileServer(config)
    server.start()
    print(
        f"tss-server: exporting {args.root} on "
        f"{server.address[0]}:{server.address[1]}",
        flush=True,
    )
    signals = GracefulSignals().install()
    signals.wait()
    # Graceful drain: advertise draining, finish in-flight requests up
    # to the timeout, then close.  drain() calls stop() itself.
    server.drain(args.drain_timeout)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
