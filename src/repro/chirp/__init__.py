"""The resource layer: the Chirp personal file server and its client.

A Chirp file server exports a Unix-like I/O interface over a single TCP
connection per client (control and data share the connection, keeping the
TCP window open across files).  It can be deployed by an ordinary user with
one command, confines all requests inside an exported root directory by a
software chroot, manages a fully virtual user space, and enforces
per-directory ACLs.  On disconnect the server frees all connection state --
open files are closed; recovery is the adapter's responsibility.

Public API:

- :class:`repro.chirp.server.FileServer` -- the deployable server.
- :class:`repro.chirp.client.ChirpClient` -- the client library.
- :class:`repro.chirp.protocol.ChirpStat` -- stat results on the wire.
- :class:`repro.chirp.protocol.OpenFlags` -- portable open flags.
"""

from repro.chirp.protocol import ChirpStat, OpenFlags, StatFs
from repro.chirp.client import ChirpClient
from repro.chirp.server import FileServer, ServerConfig
from repro.chirp.backend import LocalBackend

__all__ = [
    "ChirpStat",
    "OpenFlags",
    "StatFs",
    "ChirpClient",
    "FileServer",
    "ServerConfig",
    "LocalBackend",
]
