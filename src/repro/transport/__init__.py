"""The unified transport layer beneath every abstraction.

The paper separates *abstractions* (CFS, DPFS, DSFS, DSDB, striping,
replication, versioning) from *resources* (file servers, catalogs,
databases).  This package is the seam between them on the client side:
everything that dials sockets, keeps TCP channels warm, recovers from
disconnects, and measures the I/O path lives here -- abstractions above
it never construct a socket or own a backoff loop.

Layering::

    abstractions   cfs/dpfs/dsfs/stripefs/replfs/versionfs/dsdb
    sessions       ChirpClient / DatabaseClient  (fd + verb semantics)
    this package   Endpoint(Manager), Connection, RetryPolicy,
                   Deadline, HealthRegistry (circuit breakers),
                   MetricsRegistry, FanoutPool, fault injection
    resources      file servers, database servers, catalogs

See DESIGN.md, "Transport layer" and "Failure semantics".
"""

from repro.transport.connection import Connection
from repro.transport.deadline import Deadline
from repro.transport.dial import oneshot_exchange
from repro.transport.endpoint import DEFAULT_MAX_CONNS, Endpoint, EndpointManager
from repro.transport.fanout import DEFAULT_FANOUT, FanoutPool
from repro.transport.faults import FaultPlan, FaultScript, FaultyListener
from repro.transport.health import (
    BreakerPolicy,
    EndpointHealth,
    HealthRegistry,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from repro.transport.metrics import LatencyHistogram, MetricsRegistry, default_registry
from repro.transport.recovery import RetryPolicy

__all__ = [
    "BreakerPolicy",
    "Connection",
    "DEFAULT_FANOUT",
    "DEFAULT_MAX_CONNS",
    "Deadline",
    "Endpoint",
    "EndpointHealth",
    "EndpointManager",
    "FanoutPool",
    "FaultPlan",
    "FaultScript",
    "FaultyListener",
    "HealthRegistry",
    "LatencyHistogram",
    "MetricsRegistry",
    "RetryPolicy",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "default_registry",
    "oneshot_exchange",
]
