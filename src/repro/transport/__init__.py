"""The unified transport layer beneath every abstraction.

The paper separates *abstractions* (CFS, DPFS, DSFS, DSDB, striping,
replication, versioning) from *resources* (file servers, catalogs,
databases).  This package is the seam between them on the client side:
everything that dials sockets, keeps TCP channels warm, recovers from
disconnects, and measures the I/O path lives here -- abstractions above
it never construct a socket or own a backoff loop.

Layering::

    abstractions   cfs/dpfs/dsfs/stripefs/replfs/versionfs/dsdb
    sessions       ChirpClient / DatabaseClient  (fd + verb semantics)
    this package   Endpoint(Manager), Connection, RetryPolicy,
                   MetricsRegistry, FanoutPool
    resources      file servers, database servers, catalogs

See DESIGN.md, "Transport layer".
"""

from repro.transport.connection import Connection
from repro.transport.dial import oneshot_exchange
from repro.transport.endpoint import DEFAULT_MAX_CONNS, Endpoint, EndpointManager
from repro.transport.fanout import DEFAULT_FANOUT, FanoutPool
from repro.transport.metrics import LatencyHistogram, MetricsRegistry, default_registry
from repro.transport.recovery import RetryPolicy

__all__ = [
    "Connection",
    "DEFAULT_FANOUT",
    "DEFAULT_MAX_CONNS",
    "Endpoint",
    "EndpointManager",
    "FanoutPool",
    "LatencyHistogram",
    "MetricsRegistry",
    "RetryPolicy",
    "default_registry",
    "oneshot_exchange",
]
