"""Per-endpoint health: a closed → open → half-open circuit breaker.

The paper's adapter retries a lost server with exponential backoff; what
it lacks is a *shared* notion of "this server is sick".  Without one,
every handle, every replica open, and every fan-out probe pays the full
connect timeout against a dead server, over and over.  The breaker here
is that shared memory, keyed by ``host:port``:

- **closed** -- normal operation; failures are counted.
- **open** -- ``failure_threshold`` *consecutive* transport failures
  were observed; every dial is refused instantly with
  :class:`~repro.util.errors.CircuitOpenError` until ``cooldown``
  seconds pass.
- **half-open** -- the cooldown elapsed; exactly **one** probe dial is
  let through.  Success closes the breaker; failure re-opens it and
  restarts the cooldown.

Only transport-level events count: dial failures and connections dying
mid-exchange.  Protocol errors (permission denied, no such file) are the
server *working*, and never move the breaker.

The registry is consulted by
:class:`~repro.transport.endpoint.EndpointManager` and surfaced through
:meth:`MetricsRegistry.snapshot() <repro.transport.metrics.MetricsRegistry.snapshot>`
so an operator reading metrics sees which servers the client side has
quarantined.  Clock and thresholds are injectable for deterministic
tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.util.clock import Clock, MonotonicClock

__all__ = [
    "BreakerPolicy",
    "EndpointHealth",
    "HealthRegistry",
    "STATE_CLOSED",
    "STATE_OPEN",
    "STATE_HALF_OPEN",
]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """When to open a breaker and how long to keep it open.

    :ivar failure_threshold: consecutive transport failures that trip
        the breaker.
    :ivar cooldown: seconds an open breaker refuses dials before letting
        one half-open probe through.
    """

    failure_threshold: int = 3
    cooldown: float = 5.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")


class EndpointHealth:
    """Breaker state for one server endpoint.  Thread-safe."""

    def __init__(self, label: str, policy: Optional[BreakerPolicy] = None,
                 clock: Optional[Clock] = None):
        self.label = label
        self.policy = policy or BreakerPolicy()
        self.clock = clock or MonotonicClock()
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive = 0
        self._failures = 0
        self._successes = 0
        self._opened_count = 0
        self._opened_at = 0.0
        self._probe_outstanding = False

    # -- queries ---------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state_locked()

    @property
    def is_open(self) -> bool:
        """True while dials would be refused (open, cooldown running)."""
        with self._lock:
            return self._effective_state_locked() == STATE_OPEN

    def _effective_state_locked(self) -> str:
        # An open breaker whose cooldown elapsed *reads* as half-open even
        # before anyone dials; the transition is committed by allow().
        if (
            self._state == STATE_OPEN
            and self.clock.now() - self._opened_at >= self.policy.cooldown
        ):
            return STATE_HALF_OPEN
        return self._state

    # -- transitions -----------------------------------------------------

    def allow(self) -> bool:
        """May the caller dial this endpoint right now?

        Consumes the half-open probe slot when it grants one, so exactly
        one dial goes out per cooldown expiry no matter how many threads
        ask.
        """
        with self._lock:
            state = self._effective_state_locked()
            if state == STATE_CLOSED:
                return True
            if state == STATE_HALF_OPEN:
                if self._state == STATE_OPEN:
                    self._state = STATE_HALF_OPEN
                    self._probe_outstanding = False
                if self._probe_outstanding:
                    return False
                self._probe_outstanding = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._successes += 1
            self._consecutive = 0
            self._probe_outstanding = False
            self._state = STATE_CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._consecutive += 1
            if self._state == STATE_HALF_OPEN:
                # The probe failed: straight back to open, fresh cooldown.
                self._trip_locked()
            elif (
                self._state == STATE_CLOSED
                and self._consecutive >= self.policy.failure_threshold
            ):
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = STATE_OPEN
        self._opened_at = self.clock.now()
        self._opened_count += 1
        self._probe_outstanding = False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._effective_state_locked(),
                "consecutive_failures": self._consecutive,
                "failures": self._failures,
                "successes": self._successes,
                "opened_count": self._opened_count,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EndpointHealth({self.label}, {self.state}, consec={self._consecutive})"


class HealthRegistry:
    """All endpoint breakers for one client stack, keyed ``host:port``."""

    def __init__(self, policy: Optional[BreakerPolicy] = None,
                 clock: Optional[Clock] = None):
        self.policy = policy or BreakerPolicy()
        self.clock = clock or MonotonicClock()
        self._lock = threading.Lock()
        self._endpoints: dict[str, EndpointHealth] = {}

    def for_endpoint(self, host: str, port: int) -> EndpointHealth:
        label = f"{host}:{int(port)}"
        with self._lock:
            health = self._endpoints.get(label)
            if health is None:
                health = EndpointHealth(label, self.policy, self.clock)
                self._endpoints[label] = health
            return health

    def state_of(self, host: str, port: int) -> str:
        """Peek at an endpoint's state without creating a breaker."""
        with self._lock:
            health = self._endpoints.get(f"{host}:{int(port)}")
        return health.state if health is not None else STATE_CLOSED

    def is_open(self, host: str, port: int) -> bool:
        """True while dials to this endpoint would be refused.

        The quarantine check used by repair target selection: an
        endpoint in cooldown is pointless to copy toward, so healing
        skips it rather than burning its rate budget on guaranteed
        failures.  Never creates a breaker.
        """
        with self._lock:
            health = self._endpoints.get(f"{host}:{int(port)}")
        return health is not None and health.is_open

    def snapshot(self) -> dict:
        with self._lock:
            endpoints = dict(self._endpoints)
        return {label: h.snapshot() for label, h in sorted(endpoints.items())}
