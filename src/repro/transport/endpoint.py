"""Endpoint sessions: an elastic pool of connections to one server.

The paper's rule -- keep one warm TCP channel per server so the
congestion window survives across operations -- is preserved *per
connection*; what this layer adds is that a busy client may hold a small
number of such channels to the same server (``max_conns_per_endpoint``),
so fan-out abstractions (striping, replication, parallel ingest) issue
genuinely concurrent RPCs instead of serializing on one socket lock.

Ownership inversion: the endpoint, not each handle, owns connection
lifecycle.  Sessions (:class:`~repro.chirp.client.ChirpClient`,
:class:`~repro.db.client.DatabaseClient`) check connections out and back
in; recovery dials through here; and generation numbers -- the token
file handles use to learn their connection-scoped fd died -- advance
exactly once per reconnect, no matter how many handles notice the
failure.

Growth is demand-driven: a second connection is dialed only when every
live connection is checked out and the cap allows it.  Checkout never
*blocks* on a full pool; it returns the least-loaded live connection and
the caller queues on that connection's own lock, so the cap bounds
sockets without deadlock.  Idle extra connections are kept (warm windows
are the point); they die with the endpoint or the server.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional

from repro.auth.methods import ClientCredentials, authenticate_client
from repro.transport.connection import Connection
from repro.transport.health import EndpointHealth, HealthRegistry
from repro.transport.metrics import MetricsRegistry, default_registry
from repro.transport.recovery import RetryPolicy
from repro.util.errors import CircuitOpenError, DisconnectedError, TimedOutError
from repro.util.wire import LineStream

__all__ = ["Endpoint", "EndpointManager", "DEFAULT_MAX_CONNS"]

DEFAULT_MAX_CONNS = 4


class Endpoint:
    """A session with one server, multiplexed over elastic connections.

    :param host: server address.
    :param port: server port.
    :param credentials: presented on every dialed connection.
    :param timeout: connect and per-operation socket timeout.
    :param max_conns: connection cap for this endpoint (>= 1).
    :param policy: recovery policy; available to sessions and handles so
        backoff lives in one place.
    :param metrics: registry observing every RPC on every connection.
    :param health: circuit breaker for this endpoint; when set, every
        dial is gated on it and every transport outcome is recorded.
        ``None`` (standalone endpoints) disables breaking entirely.
    """

    def __init__(
        self,
        host: str,
        port: int,
        credentials: Optional[ClientCredentials] = None,
        timeout: float = 30.0,
        max_conns: int = DEFAULT_MAX_CONNS,
        policy: Optional[RetryPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        health: Optional[EndpointHealth] = None,
    ):
        if max_conns < 1:
            raise ValueError("max_conns must be >= 1")
        self.host = host
        self.port = int(port)
        self.credentials = credentials or ClientCredentials()
        self.timeout = timeout
        self.max_conns = max_conns
        self.policy = policy or RetryPolicy()
        self.metrics = metrics if metrics is not None else default_registry()
        self.health = health
        #: Advances exactly once per reconnect-from-dead; fds opened on an
        #: older generation are gone.  Growth dials do not bump it.
        self.generation = 0
        self.subject: Optional[str] = None
        self._conns: list[Connection] = []
        self._rr = 0
        self._lock = threading.Lock()
        # Serializes reconnects so concurrent recoveries bump the
        # generation once, and serializes growth so a burst of checkouts
        # does not dial a stampede of sockets.
        self._dial_lock = threading.Lock()

    # -- dialing ---------------------------------------------------------

    def _dial(self) -> Connection:
        """One connect+authenticate attempt; no retry, no registration.

        Gated on the circuit breaker: an open breaker refuses instantly
        with :class:`CircuitOpenError` instead of paying the connect
        timeout against a server already known to be sick.  The breaker
        fast-fail itself is *not* recorded as a failure -- only real
        transport outcomes move the breaker.
        """
        if self.health is not None and not self.health.allow():
            raise CircuitOpenError(
                f"{self.host}:{self.port} circuit open; dial refused"
            )
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except socket.timeout as exc:
            self._record_failure()
            raise TimedOutError(f"connect to {self.host}:{self.port}") from exc
        except OSError as exc:
            self._record_failure()
            raise DisconnectedError(
                f"connect to {self.host}:{self.port} failed: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = LineStream(sock)
        try:
            subject = authenticate_client(stream, self.credentials)
        except (DisconnectedError, TimedOutError):
            # The server died mid-handshake: a transport failure.
            stream.close()
            self._record_failure()
            raise
        except Exception:
            # A protocol-level refusal (bad credentials) is the server
            # *working*; it must not move the breaker.
            stream.close()
            raise
        self._record_success()
        return Connection(
            self.host,
            self.port,
            stream,
            subject,
            self.generation,
            metrics=self.metrics,
            on_death=self._discard,
        )

    def _record_failure(self) -> None:
        if self.health is not None:
            self.health.record_failure()

    def _record_success(self) -> None:
        if self.health is not None:
            self.health.record_success()

    def connect(self) -> None:
        """Tear down every connection and dial a fresh one (new generation).

        The hard-reset path: every outstanding fd dies.  Sessions call it
        from their own ``connect()``; handle recovery prefers
        :meth:`ensure_connected`.
        """
        with self._dial_lock:
            self._close_all()
            conn = self._dial()
            with self._lock:
                self.generation += 1
                conn.generation = self.generation
                self.subject = conn.subject
                self._conns.append(conn)

    def ensure_connected(self) -> None:
        """Reconnect only if every connection is down.

        Handle recovery entry point: when several handles notice the same
        dead server, only the first dials (one generation bump); the rest
        find a live connection already in place.
        """
        if self.live_count > 0:
            return
        with self._dial_lock:
            if self.live_count > 0:
                return
            conn = self._dial()
            with self._lock:
                self.generation += 1
                conn.generation = self.generation
                self.subject = conn.subject
                self._conns.append(conn)

    # -- checkout / checkin ----------------------------------------------

    def checkout(self) -> Connection:
        """Lease a connection for one exchange.

        Prefers an idle connection; dials a new one when all are busy and
        the cap allows; otherwise returns the least-loaded connection
        (the caller serializes on its lock).  Raises
        :class:`DisconnectedError` when the endpoint has no live
        connection -- recovery is the caller's policy decision, never an
        implicit side effect of checkout.
        """
        grow = False
        with self._lock:
            self._prune_locked()
            if not self._conns:
                raise DisconnectedError(
                    f"not connected to {self.host}:{self.port}"
                )
            conn = self._pick_locked()
            if conn.busy > 0 and len(self._conns) < self.max_conns:
                grow = True
            else:
                conn.busy += 1
                return conn
        # Grow outside the pool lock: dialing authenticates and must not
        # stall other checkouts.  One grower at a time; losers fall back.
        if grow and self._dial_lock.acquire(blocking=False):
            try:
                try:
                    fresh = self._dial()
                except (DisconnectedError, TimedOutError):
                    fresh = None
                if fresh is not None:
                    with self._lock:
                        if len(self._conns) < self.max_conns:
                            fresh.busy += 1
                            self._conns.append(fresh)
                            return fresh
                    fresh.close()  # lost the race; cap reached meanwhile
            finally:
                self._dial_lock.release()
        with self._lock:
            self._prune_locked()
            if not self._conns:
                raise DisconnectedError(
                    f"not connected to {self.host}:{self.port}"
                )
            conn = self._pick_locked()
            conn.busy += 1
            return conn

    def checkin(self, conn: Connection) -> None:
        with self._lock:
            if conn.busy > 0:
                conn.busy -= 1
            if conn.closed and conn in self._conns:
                self._conns.remove(conn)
        if not conn.closed:
            # A connection returned alive means the exchange succeeded:
            # reset the breaker's consecutive-failure count so sporadic
            # drops spread over a long session never accumulate to a trip.
            self._record_success()

    def _pick_locked(self) -> Connection:
        """Least-loaded connection, round-robin among ties."""
        best = None
        n = len(self._conns)
        for i in range(n):
            conn = self._conns[(self._rr + i) % n]
            if best is None or conn.busy < best.busy:
                best = conn
                if conn.busy == 0:
                    break
        self._rr = (self._rr + 1) % max(1, n)
        return best

    def _prune_locked(self) -> None:
        self._conns = [c for c in self._conns if not c.closed]

    def _discard(self, conn: Connection) -> None:
        """Death callback from a connection that failed mid-exchange."""
        with self._lock:
            if conn in self._conns:
                self._conns.remove(conn)
        self._record_failure()

    # -- state -----------------------------------------------------------

    @property
    def live_count(self) -> int:
        with self._lock:
            self._prune_locked()
            return len(self._conns)

    @property
    def is_connected(self) -> bool:
        return self.live_count > 0

    def raw_stream(self):
        """The stream of one live connection, or None.

        Diagnostics/back-compat only (protocol tests write malformed
        lines directly); real traffic goes through checkout/checkin.
        """
        with self._lock:
            for conn in self._conns:
                if not conn.closed:
                    return conn.stream
        return None

    def _close_all(self) -> None:
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            conn.close()

    def close(self) -> None:
        """Drop every connection.  The endpoint stays usable: a later
        ``connect()``/``ensure_connected()`` dials anew."""
        self._close_all()

    def __enter__(self) -> "Endpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Endpoint({self.host}:{self.port}, conns={self.live_count}/"
            f"{self.max_conns}, gen={self.generation})"
        )


class EndpointManager:
    """All of one principal's endpoint sessions, keyed by server address.

    Carries the credentials, timeout, connection cap, recovery policy,
    metrics registry and health registry that every endpoint inherits, so
    an abstraction can be built from a list of ``(host, port)`` pairs
    alone.  Health is on by default: every managed endpoint gets a
    circuit breaker from one shared :class:`HealthRegistry`, which is
    attached to the metrics registry so ``snapshot()`` shows quarantined
    servers.  Pass an explicit registry to share breaker state across
    managers, or construct endpoints directly to opt out.
    """

    def __init__(
        self,
        credentials: Optional[ClientCredentials] = None,
        timeout: float = 30.0,
        max_conns_per_endpoint: int = DEFAULT_MAX_CONNS,
        policy: Optional[RetryPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        health: Optional[HealthRegistry] = None,
    ):
        self.credentials = credentials or ClientCredentials()
        self.timeout = timeout
        self.max_conns_per_endpoint = max_conns_per_endpoint
        self.policy = policy or RetryPolicy()
        self.metrics = metrics if metrics is not None else default_registry()
        self.health = health if health is not None else HealthRegistry()
        self.metrics.attach_health(self.health)
        self._endpoints: dict[tuple[str, int], Endpoint] = {}
        self._lock = threading.Lock()

    def endpoint(self, host: str, port: int) -> Endpoint:
        """The (possibly not yet connected) endpoint for a server."""
        key = (host, int(port))
        with self._lock:
            ep = self._endpoints.get(key)
            if ep is None:
                ep = Endpoint(
                    host,
                    int(port),
                    credentials=self.credentials,
                    timeout=self.timeout,
                    max_conns=self.max_conns_per_endpoint,
                    policy=self.policy,
                    metrics=self.metrics,
                    health=self.health.for_endpoint(host, port),
                )
                self._endpoints[key] = ep
            return ep

    def evict(self, host: str, port: int) -> None:
        """Drop a known-dead endpoint: close its connections and forget
        it, so the next ``endpoint()`` call starts from scratch."""
        with self._lock:
            ep = self._endpoints.pop((host, int(port)), None)
        if ep is not None:
            ep.close()

    def close_all(self) -> None:
        with self._lock:
            endpoints = list(self._endpoints.values())
            self._endpoints.clear()
        for ep in endpoints:
            ep.close()

    def __enter__(self) -> "EndpointManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._endpoints)
