"""Deadline: a total-time budget carried across an operation.

A retrying read against a flaky server can otherwise stall its caller for
the full backoff schedule of every replica it tries -- each layer sleeps
"a little", and the sum is unbounded.  A :class:`Deadline` is created
once at the top of an operation and threaded down through
:meth:`~repro.transport.recovery.RetryPolicy.run` (sleeps shrink to fit
the remaining budget), :class:`~repro.transport.connection.Connection`
exchanges (socket timeouts are clamped to the remainder), and
:meth:`~repro.transport.fanout.FanoutPool.run` (result waits are
bounded), so the caller's wait is bounded by one number no matter how
many layers retry beneath it.

The clock is injectable (:class:`~repro.util.clock.ManualClock` in
tests) so deadline behaviour is testable without real sleeping.
"""

from __future__ import annotations

from typing import Optional

from repro.util.clock import Clock, MonotonicClock
from repro.util.errors import TimedOutError

__all__ = ["Deadline"]


class Deadline:
    """A fixed point in (a clock's) time by which work must finish.

    :param budget: seconds from now until expiry.
    :param clock: time source; defaults to the monotonic wall clock.
    """

    __slots__ = ("clock", "budget", "_expires_at")

    def __init__(self, budget: float, clock: Optional[Clock] = None):
        if budget < 0:
            raise ValueError("deadline budget must be >= 0")
        self.clock = clock or MonotonicClock()
        self.budget = float(budget)
        self._expires_at = self.clock.now() + self.budget

    @classmethod
    def after(cls, seconds: float, clock: Optional[Clock] = None) -> "Deadline":
        """Alias constructor that reads naturally at call sites."""
        return cls(seconds, clock)

    def remaining(self) -> float:
        """Seconds left, clamped at zero."""
        return max(0.0, self._expires_at - self.clock.now())

    @property
    def expired(self) -> bool:
        return self.clock.now() >= self._expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`TimedOutError` if the budget is spent."""
        if self.expired:
            raise TimedOutError(f"{what}: deadline of {self.budget:g}s exceeded")

    def bound(self, timeout: Optional[float]) -> float:
        """Clamp a per-step timeout to the remaining budget.

        With ``timeout=None`` the whole remainder is granted.  Raises
        :class:`TimedOutError` when nothing remains, so callers never
        issue a zero-timeout socket operation by accident.
        """
        remaining = self.remaining()
        if remaining <= 0:
            raise TimedOutError(f"deadline of {self.budget:g}s exceeded")
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget={self.budget:g}, remaining={self.remaining():.3f})"
