"""Reconnection policy: exponential backoff with an attempt ceiling.

"If the TCP connection to a server is lost ... the adapter responds by
attempting to reconnect to the server with an exponentially increasing
delay.  (Users may place an upper limit on these retries with a
command-line argument.)"  This module is that behaviour.  It lives in the
transport layer so every session type (Chirp, database) and every handle
shares one recovery discipline; :mod:`repro.core.retry` re-exports it for
older imports.

Optional decorrelated jitter (``jitter=True``) spreads mass reconnects
after a server restart: instead of every client sleeping the same
deterministic sequence and stampeding the freshly restarted server in
lockstep, each delay is drawn uniformly from ``[initial_delay,
3 * previous_delay]``, capped at ``max_delay``.  The RNG is injectable
(like ``clock``) so tests pin the sequence with a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, TypeVar

from repro.transport.deadline import Deadline
from repro.util.clock import Clock, MonotonicClock
from repro.util.errors import BusyError, DisconnectedError, TimedOutError

__all__ = ["RetryPolicy"]

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """How aggressively to recover from a lost server connection.

    :ivar max_attempts: total tries (first try included); ``1`` disables
        reconnection entirely -- the user-visible "upper limit" knob.
    :ivar initial_delay: seconds before the first reconnect attempt.
    :ivar multiplier: backoff factor between attempts (ignored when
        ``jitter`` is on; the jitter recurrence replaces it).
    :ivar max_delay: backoff ceiling.
    :ivar jitter: draw decorrelated-jitter delays instead of the fixed
        exponential sequence.
    :ivar rng: random source for jitter; inject a seeded
        :class:`random.Random` for deterministic tests.
    """

    max_attempts: int = 5
    initial_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: bool = False
    rng: Optional[random.Random] = None
    clock: Clock = field(default_factory=MonotonicClock)

    def delays(self):
        """The sleep before each *re*-attempt (``max_attempts - 1`` values)."""
        if self.jitter:
            yield from self._jittered_delays()
            return
        delay = self.initial_delay
        for _ in range(max(0, self.max_attempts - 1)):
            yield min(delay, self.max_delay)
            delay *= self.multiplier

    def _jittered_delays(self):
        rng = self.rng if self.rng is not None else random.Random()
        delay = self.initial_delay
        for _ in range(max(0, self.max_attempts - 1)):
            delay = min(delay, self.max_delay)
            yield delay
            # AWS-style decorrelated jitter: next in [base, 3 * previous].
            delay = rng.uniform(self.initial_delay, delay * 3)

    def run(
        self,
        operation: Callable[[], T],
        recover: Callable[[], None],
        deadline: Optional[Deadline] = None,
    ) -> T:
        """Run ``operation``; on disconnect, back off, ``recover``, retry.

        ``recover`` re-establishes whatever state the operation needs
        (reconnect, re-open, verify inode); exceptions it raises other
        than :class:`DisconnectedError` propagate immediately (e.g. a
        stale-handle verdict must not be retried away).

        When the retries are exhausted the *original* operation failure
        is re-raised, with the latest one chained as its cause, so
        tracebacks name the first fault rather than the last doomed
        reconnect.

        With a ``deadline``, each backoff sleep is clamped to the
        remaining budget, and a spent budget raises
        :class:`TimedOutError` (chained from the original failure)
        instead of sleeping past it.

        A :class:`BusyError` -- the server shedding load or draining --
        is also retried, but as *server-driven* backoff: the sleep is
        the refusal's ``retry_after`` hint when it carries one (capped
        at ``max_delay``), ``recover`` is **not** called (the connection
        is healthy; the server just refused the work), and the breaker
        never moves because nothing here records transport failure.
        """
        delays = self.delays()
        original: Optional[DisconnectedError] = None
        while True:
            busy: Optional[BusyError] = None
            try:
                return operation()
            except BusyError as exc:
                busy = exc
            except DisconnectedError as exc:
                if original is None:
                    original = exc
                delay = next(delays, None)
                if delay is None:
                    # Attempts exhausted: surface the first disconnect.
                    if exc is original:
                        raise
                    raise original from exc
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= 0:
                        raise TimedOutError(
                            f"retry budget of {deadline.budget:g}s exhausted"
                        ) from original
                    delay = min(delay, remaining)
                self.clock.sleep(delay)
                try:
                    recover()
                except DisconnectedError:
                    # Server still down: burn another attempt and keep
                    # backing off rather than calling operation() doomed.
                    continue
                continue
            # BUSY path: honor the server's hint, skip recover().
            delay = next(delays, None)
            if delay is None:
                raise busy
            if busy.retry_after_s is not None:
                delay = min(busy.retry_after_s, self.max_delay)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    raise TimedOutError(
                        f"retry budget of {deadline.budget:g}s exhausted"
                    ) from busy
                delay = min(delay, remaining)
            self.clock.sleep(delay)
