"""A scriptable in-process TCP fault proxy for chaos testing.

``FaultyListener`` sits between any TSS client and any line-protocol
server (Chirp, database, catalog TCP side) and injects failures at the
transport level, where the paper's failure semantics actually live:

- **refusal** -- accept then immediately reset, as a dead or
  firewalled server would;
- **mid-stream RST** -- forward exactly N bytes in a chosen direction,
  then hard-reset both sides (``SO_LINGER 0``);
- **payload truncation** -- forward N bytes then close cleanly, so the
  client sees a short read rather than a reset;
- **added latency** -- a per-chunk delay in both directions, modelling
  a slow link;
- **slow-loris stall** -- stop forwarding after N bytes but hold the
  sockets open, pinning whatever the peer dedicates to the connection.

Faults are driven by a :class:`FaultPlan`: either an explicit queue of
per-connection :class:`FaultScript`\\ s, or a seeded probabilistic mix
(:meth:`FaultPlan.chaos`).  All randomness comes from one
``random.Random(seed)`` and every injected action is appended to an
event log, so running the same workload against the same seed produces
a byte-identical fault sequence -- chaos runs are *reproducible*, which
is what makes their failures debuggable.  The sleep source is an
injectable :class:`~repro.util.clock.Clock`, so latency scripts can run
on a :class:`~repro.util.clock.ManualClock` in tests.

This is test/ops machinery: nothing in the production client or server
stack imports it, but it lives in the transport package because its
contract (what a "reset" or "truncation" looks like to a
:class:`~repro.util.wire.LineStream`) is a transport-layer contract.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.util.clock import Clock, MonotonicClock

__all__ = [
    "FaultScript",
    "FaultPlan",
    "FaultyListener",
    "RESET",
    "TRUNCATE",
    "STALL",
]

# What happens when a cut threshold is reached.
RESET = "reset"  # SO_LINGER 0 close: the peer sees ECONNRESET
TRUNCATE = "truncate"  # clean FIN: the peer sees a short read / EOF
STALL = "stall"  # forward nothing more, keep the sockets open

_ACTIONS = (RESET, TRUNCATE, STALL)
_CHUNK = 65536


@dataclass
class FaultScript:
    """What to inject into one proxied connection.

    Defaults are full pass-through.  ``cut_after_in`` counts
    client→server bytes, ``cut_after_out`` counts server→client bytes;
    the first threshold reached triggers ``action`` for the whole
    connection.  A threshold of 0 fires before the first byte in that
    direction is forwarded.

    :ivar refuse: reset the connection immediately after accept.
    :ivar accept_delay: seconds to sit on the accepted connection before
        proxying starts (connection-level latency).
    :ivar latency: seconds added before forwarding each chunk, both
        directions (per-byte-stream latency).
    :ivar cut_after_in: act after this many client→server bytes.
    :ivar cut_after_out: act after this many server→client bytes.
    :ivar action: one of :data:`RESET`, :data:`TRUNCATE`, :data:`STALL`.
    :ivar note: free-form tag copied into the event log.
    """

    refuse: bool = False
    accept_delay: float = 0.0
    latency: float = 0.0
    cut_after_in: Optional[int] = None
    cut_after_out: Optional[int] = None
    action: str = RESET
    note: str = ""

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")

    def describe(self) -> str:
        parts = []
        if self.refuse:
            parts.append("refuse")
        if self.accept_delay:
            parts.append(f"accept_delay={self.accept_delay:g}")
        if self.latency:
            parts.append(f"latency={self.latency:g}")
        if self.cut_after_in is not None:
            parts.append(f"{self.action}@in:{self.cut_after_in}")
        if self.cut_after_out is not None:
            parts.append(f"{self.action}@out:{self.cut_after_out}")
        if self.note:
            parts.append(self.note)
        return ",".join(parts) if parts else "pass"


@dataclass
class FaultPlan:
    """The per-connection fault schedule for one listener.

    Explicit mode: queue scripts with :meth:`script`; connection *k*
    consumes the *k*-th queued script, later connections fall back to
    ``default`` (pass-through unless given).

    Probabilistic mode (:meth:`chaos`): each accepted connection draws
    its script from the seeded RNG.  Because the draw happens in accept
    order and the RNG is owned by the plan, a rerun with the same seed
    and the same (sequential) workload replays the identical sequence.
    """

    seed: Optional[int] = None
    default: FaultScript = field(default_factory=FaultScript)
    rng: random.Random = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.rng is None:
            self.rng = random.Random(self.seed)
        self._scripts: list[FaultScript] = []
        self._chaos: Optional[dict] = None
        self._lock = threading.Lock()

    def script(self, fault: FaultScript) -> "FaultPlan":
        """Queue a script for the next not-yet-scripted connection."""
        with self._lock:
            self._scripts.append(fault)
        return self

    @classmethod
    def chaos(
        cls,
        seed: int,
        *,
        refuse_rate: float = 0.0,
        reset_rate: float = 0.0,
        truncate_rate: float = 0.0,
        stall_rate: float = 0.0,
        latency: tuple[float, float] = (0.0, 0.0),
        cut_range: tuple[int, int] = (1, 4096),
    ) -> "FaultPlan":
        """A seeded probabilistic mix; rates are per-connection."""
        plan = cls(seed=seed)
        plan._chaos = {
            "refuse": refuse_rate,
            "reset": reset_rate,
            "truncate": truncate_rate,
            "stall": stall_rate,
            "latency": latency,
            "cut_range": cut_range,
        }
        return plan

    def next_script(self) -> FaultScript:
        """The script for the next accepted connection (consumes RNG)."""
        with self._lock:
            if self._scripts:
                return self._scripts.pop(0)
            if self._chaos is None:
                return self.default
            return self._draw_locked()

    def _draw_locked(self) -> FaultScript:
        cfg = self._chaos
        lat_lo, lat_hi = cfg["latency"]
        latency = self.rng.uniform(lat_lo, lat_hi) if lat_hi > 0 else 0.0
        roll = self.rng.random()
        cut = self.rng.randint(*cfg["cut_range"])
        threshold = 0.0
        for action in ("refuse", "reset", "truncate", "stall"):
            threshold += cfg[action]
            if roll < threshold:
                if action == "refuse":
                    return FaultScript(refuse=True, latency=latency, note="chaos")
                return FaultScript(
                    latency=latency, cut_after_out=cut, action=action, note="chaos"
                )
        return FaultScript(latency=latency, note="chaos")


class FaultyListener:
    """A TCP proxy that forwards to ``upstream`` and injects faults.

    Usable as a context manager; ``address`` is where clients connect.
    Every accept and every injected action is recorded in ``events`` (a
    list of strings in strict accept/injection order), the reproducibility
    witness for seeded chaos runs.
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        plan: Optional[FaultPlan] = None,
        host: str = "127.0.0.1",
        clock: Optional[Clock] = None,
        connect_timeout: float = 5.0,
    ):
        self.upstream = (upstream[0], int(upstream[1]))
        self.plan = plan or FaultPlan()
        self.clock = clock or MonotonicClock()
        self.connect_timeout = connect_timeout
        self.events: list[str] = []
        self._events_lock = threading.Lock()
        self._stop = threading.Event()
        self._refuse_all = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._live: set[socket.socket] = set()
        self._live_lock = threading.Lock()
        self._accepted = 0
        self.address: tuple[str, int] = (host, 0)
        self._host = host

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "FaultyListener":
        if self._listener is not None:
            raise RuntimeError("listener already started")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, 0))
        sock.listen(64)
        sock.settimeout(0.2)
        self._listener = sock
        self.address = sock.getsockname()[:2]
        t = threading.Thread(
            target=self._accept_loop, name=f"fault-accept-{self.address[1]}", daemon=True
        )
        t.start()
        self._threads.append(t)
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        self._kill_live(RESET)
        for t in self._threads:
            t.join(timeout=5)
        self._threads.clear()

    def __enter__(self) -> "FaultyListener":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- runtime control (the "pull the cable now" lever) ----------------

    def break_now(self, refuse_new: bool = True) -> None:
        """Hard-kill every proxied connection; optionally refuse new ones.

        This is the deterministic crash lever: tests sequence a protocol
        to a precise point, then sever the wire exactly there.
        """
        self._record("break_now")
        if refuse_new:
            self._refuse_all.set()
        self._kill_live(RESET)

    def restore(self) -> None:
        """Accept and pass connections again after :meth:`break_now`."""
        self._record("restore")
        self._refuse_all.clear()

    # -- internals -------------------------------------------------------

    def _record(self, event: str) -> None:
        with self._events_lock:
            self.events.append(event)

    def event_log(self) -> tuple[str, ...]:
        with self._events_lock:
            return tuple(self.events)

    def _track(self, *socks: socket.socket) -> None:
        with self._live_lock:
            self._live.update(socks)

    def _untrack(self, *socks: socket.socket) -> None:
        with self._live_lock:
            self._live.difference_update(socks)

    def _kill_live(self, action: str) -> None:
        with self._live_lock:
            socks = list(self._live)
            self._live.clear()
        for s in socks:
            _close(s, action)

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            index = self._accepted
            self._accepted += 1
            if self._refuse_all.is_set():
                self._record(f"conn {index}: refused (break_now)")
                _close(client, RESET)
                continue
            script = self.plan.next_script()
            self._record(f"conn {index}: {script.describe()}")
            t = threading.Thread(
                target=self._proxy_connection,
                args=(index, client, script),
                name=f"fault-conn-{index}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)

    def _proxy_connection(
        self, index: int, client: socket.socket, script: FaultScript
    ) -> None:
        if script.refuse:
            _close(client, RESET)
            return
        if script.accept_delay > 0:
            self.clock.sleep(script.accept_delay)
        try:
            server = socket.create_connection(self.upstream, timeout=self.connect_timeout)
        except OSError:
            self._record(f"conn {index}: upstream unreachable")
            _close(client, RESET)
            return
        for s in (client, server):
            s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            s.settimeout(0.2)
        self._track(client, server)
        # One connection-wide cut latch: whichever direction trips first
        # wins, and both pumps stop forwarding.
        state = _ConnState(index, client, server, script, self)
        pump_in = threading.Thread(
            target=state.pump, args=(client, server, "in", script.cut_after_in),
            name=f"fault-pump-in-{index}", daemon=True,
        )
        pump_out = threading.Thread(
            target=state.pump, args=(server, client, "out", script.cut_after_out),
            name=f"fault-pump-out-{index}", daemon=True,
        )
        pump_in.start()
        pump_out.start()
        pump_in.join()
        pump_out.join()
        self._untrack(client, server)
        if not state.stalled:
            _close(client, TRUNCATE)
            _close(server, TRUNCATE)


class _ConnState:
    """Shared state for the two pump threads of one proxied connection."""

    def __init__(self, index, client, server, script, listener: FaultyListener):
        self.index = index
        self.client = client
        self.server = server
        self.script = script
        self.listener = listener
        self.cut = threading.Event()
        self.stalled = False

    def _trigger(self, direction: str, forwarded: int) -> None:
        if self.cut.is_set():
            return
        self.cut.set()
        action = self.script.action
        self.listener._record(
            f"conn {self.index}: {action} {direction} at byte {forwarded}"
        )
        if action == STALL:
            # Hold the sockets open but forward nothing more; the peers
            # hang until their own timeouts or the listener dies.
            self.stalled = True
            return
        _close(self.client, action)
        _close(self.server, action)

    def pump(self, src: socket.socket, dst: socket.socket, direction: str,
             cut_after: Optional[int]) -> None:
        forwarded = 0
        latency = self.script.latency
        while not self.cut.is_set() and not self.listener._stop.is_set():
            if cut_after is not None and forwarded >= cut_after:
                self._trigger(direction, forwarded)
                return
            want = _CHUNK
            if cut_after is not None:
                want = min(want, cut_after - forwarded)
            try:
                data = src.recv(want)
            except socket.timeout:
                continue
            except OSError:
                return
            if not data:
                # Natural EOF from one side: half-close toward the other
                # so graceful shutdowns pass through unperturbed.
                try:
                    dst.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
                return
            if latency > 0:
                self.listener.clock.sleep(latency)
            if self.cut.is_set():
                return
            try:
                dst.sendall(data)
            except OSError:
                return
            forwarded += len(data)


def _close(sock: socket.socket, action: str) -> None:
    """Close a socket, as an RST (``reset``) or a clean FIN."""
    try:
        if action == RESET:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
