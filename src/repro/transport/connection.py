"""One authenticated wire session to one server.

A :class:`Connection` owns exactly one TCP socket wrapped in a
:class:`~repro.util.wire.LineStream`, speaks the line-oriented RPC
protocol, and records per-verb metrics for every exchange.  It is the
only place in the client stack that touches a socket.

Protocol discipline: one outstanding call per connection -- the lock
serializes exchanges on *this* connection only.  Concurrency across
callers comes from the :class:`~repro.transport.endpoint.Endpoint`
holding several connections, not from pipelining one.

File descriptors returned by :meth:`open_fd` are scoped to this
connection: the server frees them when the connection dies, and a fd
number must never be replayed against a different connection.  The
:class:`~repro.chirp.client.ChirpClient` enforces that by mapping its
public fds to ``(connection, raw fd)`` pairs.

On a mid-exchange failure the stream can never be resynchronized, so the
connection tears itself down (and reports its death to the endpoint via
``on_death``) before the error propagates.
"""

from __future__ import annotations

import io
import socket
import threading
import time
from typing import BinaryIO, Callable, Optional, Union

from repro.auth.acl import Acl, AclEntry, parse_rights
from repro.chirp.protocol import ChirpStat, StatFs
from repro.transport.deadline import Deadline
from repro.transport.metrics import MetricsRegistry, default_registry
from repro.util.errors import (
    DisconnectedError,
    TimedOutError,
    error_from_status,
)
from repro.util.wire import LineStream, pack_line

__all__ = ["Connection"]

_STREAM_CHUNK = 1 << 20


class Connection:
    """An authenticated, metered RPC session over one TCP connection."""

    def __init__(
        self,
        host: str,
        port: int,
        stream: LineStream,
        subject: Optional[str],
        generation: int,
        metrics: Optional[MetricsRegistry] = None,
        on_death: Optional[Callable[["Connection"], None]] = None,
    ):
        self.host = host
        self.port = int(port)
        self.subject = subject
        #: The endpoint generation this connection was dialed under; fds
        #: opened here die with it.
        self.generation = generation
        self.label = f"{host}:{port}"
        self._stream: Optional[LineStream] = stream
        # The timeout the socket was dialed with; deadline-bounded
        # exchanges clamp to min(base, remaining) and restore it after.
        try:
            self._base_timeout: Optional[float] = stream.socket.gettimeout()
        except (AttributeError, OSError):
            self._base_timeout = None
        self._metrics = metrics if metrics is not None else default_registry()
        self._on_death = on_death
        self._lock = threading.RLock()
        #: Outstanding checkouts; maintained by the owning Endpoint under
        #: its own lock.  Purely a routing hint -- mutual exclusion is
        #: this connection's ``_lock``.
        self.busy = 0

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._stream is None

    @property
    def stream(self) -> Optional[LineStream]:
        """Raw wire access; protocol tests poke malformed lines with it."""
        return self._stream

    def close(self) -> None:
        stream, self._stream = self._stream, None
        if stream is not None:
            stream.close()

    def _teardown(self) -> None:
        """Close after a mid-exchange failure and tell the endpoint."""
        self.close()
        if self._on_death is not None:
            self._on_death(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"Connection({self.label}, gen={self.generation}, {state})"

    # -- metered exchange plumbing ---------------------------------------

    def _require_stream(self) -> LineStream:
        if self._stream is None:
            raise DisconnectedError("connection is closed")
        return self._stream

    def _apply_deadline(
        self, stream: LineStream, deadline: Optional[Deadline]
    ) -> None:
        """Clamp the socket timeout to the deadline's remaining budget.

        Called under ``_lock`` at the start of an exchange.  With no
        deadline the dialed timeout is restored (a previous bounded
        exchange may have shrunk it).  A spent deadline raises
        :class:`TimedOutError` before any bytes move.  A timeout firing
        mid-exchange surfaces as :class:`DisconnectedError` from the
        stream, which tears the connection down -- correct, because the
        reply stream can never be resynchronized anyway.
        """
        if deadline is None:
            timeout = self._base_timeout
        else:
            timeout = deadline.bound(self._base_timeout)
        try:
            stream.socket.settimeout(timeout)
        except OSError:
            pass

    def _observe(
        self,
        verb: str,
        start: float,
        bytes_in: int,
        bytes_out: int,
        error: bool,
    ) -> None:
        self._metrics.observe(
            verb,
            time.perf_counter() - start,
            bytes_in=bytes_in,
            bytes_out=bytes_out,
            error=error,
            endpoint=self.label,
        )

    def rpc(
        self,
        verb: str,
        *tokens: object,
        payload: Optional[bytes] = None,
        metric: Optional[str] = None,
        deadline: Optional[Deadline] = None,
    ) -> list[str]:
        """One request line (plus optional payload), one reply line.

        Returns the reply tokens including the leading status; negative
        statuses raise the mapped :class:`~repro.util.errors.ChirpError`.
        On transport failure the connection tears down and
        :class:`DisconnectedError`/:class:`TimedOutError` propagates.
        With a ``deadline`` the socket timeout is clamped to the
        remaining budget for this exchange.
        """
        name = metric or verb
        start = time.perf_counter()
        line = pack_line(verb, *tokens)
        bytes_out = len(line) + (len(payload) if payload else 0)
        bytes_in = 0
        error = True
        with self._lock:
            try:
                stream = self._require_stream()
                self._apply_deadline(stream, deadline)
                try:
                    stream.write(line)
                    if payload:
                        stream.write(payload)
                    reply = stream.read_tokens()
                except (DisconnectedError, socket.timeout) as exc:
                    self._teardown()
                    if isinstance(exc, socket.timeout):
                        raise TimedOutError(verb) from exc
                    raise
                if not reply:
                    self._teardown()
                    raise DisconnectedError("empty reply line")
                bytes_in = sum(len(t) for t in reply) + len(reply)
                status = int(reply[0])
                if status < 0:
                    message = reply[1] if len(reply) > 1 else ""
                    raise error_from_status(status, message)
                error = False
                return reply
            finally:
                self._observe(name, start, bytes_in, bytes_out, error)

    # -- file I/O (raw, connection-scoped fds) ---------------------------

    def open_fd(self, path: str, flags_text: str, mode: int) -> int:
        reply = self.rpc("open", path, flags_text, mode)
        return int(reply[0])

    def close_fd(self, fd: int) -> None:
        self.rpc("close", fd)

    def pread(
        self,
        fd: int,
        length: int,
        offset: int,
        deadline: Optional[Deadline] = None,
    ) -> bytes:
        start = time.perf_counter()
        bytes_in = 0
        error = True
        with self._lock:
            try:
                stream = self._require_stream()
                self._apply_deadline(stream, deadline)
                try:
                    stream.write_line("pread", fd, length, offset)
                    reply = stream.read_tokens()
                    status = int(reply[0])
                    if status < 0:
                        raise error_from_status(
                            status, reply[1] if len(reply) > 1 else ""
                        )
                    data = stream.read_exact(status)
                except DisconnectedError:
                    self._teardown()
                    raise
                bytes_in = len(data)
                error = False
                return data
            finally:
                self._observe("pread", start, bytes_in, 0, error)

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        reply = self.rpc("pwrite", fd, len(data), offset, payload=bytes(data))
        return int(reply[0])

    def fsync(self, fd: int) -> None:
        self.rpc("fsync", fd)

    def fstat(self, fd: int) -> ChirpStat:
        reply = self.rpc("fstat", fd)
        return ChirpStat.from_tokens(reply[1:])

    def ftruncate(self, fd: int, size: int) -> None:
        self.rpc("ftruncate", fd, size)

    # -- namespace -------------------------------------------------------

    def stat(self, path: str, deadline: Optional[Deadline] = None) -> ChirpStat:
        reply = self.rpc("stat", path, deadline=deadline)
        return ChirpStat.from_tokens(reply[1:])

    def lstat(self, path: str) -> ChirpStat:
        reply = self.rpc("lstat", path)
        return ChirpStat.from_tokens(reply[1:])

    def access(self, path: str, rights: str = "l") -> None:
        self.rpc("access", path, rights)

    def unlink(self, path: str) -> None:
        self.rpc("unlink", path)

    def rename(self, old: str, new: str) -> None:
        self.rpc("rename", old, new)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self.rpc("mkdir", path, mode)

    def rmdir(self, path: str) -> None:
        self.rpc("rmdir", path)

    def truncate(self, path: str, size: int) -> None:
        self.rpc("truncate", path, size)

    def utime(self, path: str, atime: int, mtime: int) -> None:
        self.rpc("utime", path, atime, mtime)

    def checksum(self, path: str, deadline: Optional[Deadline] = None) -> str:
        reply = self.rpc("checksum", path, deadline=deadline)
        return reply[1]

    # -- content-addressed verbs (protocol v3; older or non-CAS servers
    # answer InvalidRequestError, which callers catch to fall back) ----

    def lookup(self, key: str) -> bool:
        """Whether the server already holds a sealed blob with this key."""
        reply = self.rpc("lookup", key)
        return len(reply) > 1 and reply[1] == "1"

    def putkey(self, path: str, key: str, mode: int = 0o644) -> int:
        """Bind a path to an existing blob by key: copy-by-reference.

        Returns the blob size.  Raises DoesNotExistError when the key is
        absent (caller falls back to putfile) and InvalidRequestError on
        non-CAS servers.
        """
        reply = self.rpc("putkey", path, mode, key)
        return int(reply[0])

    def keyof(self, path: str) -> str:
        """The content key a path is bound to (metadata-only)."""
        reply = self.rpc("keyof", path)
        return reply[1]

    def getdir(self, path: str, deadline: Optional[Deadline] = None) -> list[str]:
        start = time.perf_counter()
        error = True
        with self._lock:
            try:
                stream = self._require_stream()
                self._apply_deadline(stream, deadline)
                try:
                    stream.write_line("getdir", path)
                    reply = stream.read_tokens()
                    status = int(reply[0])
                    if status < 0:
                        raise error_from_status(
                            status, reply[1] if len(reply) > 1 else ""
                        )
                    names = []
                    for _ in range(status):
                        toks = stream.read_tokens()
                        names.append(toks[0] if toks else "")
                except (DisconnectedError, socket.timeout) as exc:
                    self._teardown()
                    if isinstance(exc, socket.timeout):
                        raise TimedOutError("getdir") from exc
                    raise
                error = False
                return names
            finally:
                self._observe("getdir", start, 0, 0, error)

    # -- streaming whole files -------------------------------------------

    def getfile(
        self, path: str, sink: Optional[BinaryIO] = None
    ) -> Union[bytes, int]:
        start = time.perf_counter()
        bytes_in = 0
        error = True
        with self._lock:
            try:
                stream = self._require_stream()
                try:
                    stream.write_line("getfile", path)
                    reply = stream.read_tokens()
                    status = int(reply[0])
                    if status < 0:
                        raise error_from_status(
                            status, reply[1] if len(reply) > 1 else ""
                        )
                    if sink is None:
                        buf = io.BytesIO()
                        stream.read_into_file(buf, status, _STREAM_CHUNK)
                        bytes_in = status
                        error = False
                        return buf.getvalue()
                    stream.read_into_file(sink, status, _STREAM_CHUNK)
                    bytes_in = status
                    error = False
                    return status
                except DisconnectedError:
                    self._teardown()
                    raise
            finally:
                self._observe("getfile", start, bytes_in, 0, error)

    def putfile(
        self,
        path: str,
        data: Union[bytes, BinaryIO],
        mode: int = 0o644,
        length: Optional[int] = None,
    ) -> int:
        start = time.perf_counter()
        error = True
        with self._lock:
            if isinstance(data, (bytes, bytearray, memoryview)):
                payload: Optional[bytes] = bytes(data)
                total = len(payload)
            else:
                payload = None
                if length is None:
                    pos = data.tell()
                    data.seek(0, io.SEEK_END)
                    length = data.tell() - pos
                    data.seek(pos)
                total = length
            try:
                stream = self._require_stream()
                try:
                    stream.write_line("putfile", path, mode, total)
                    if payload is not None:
                        stream.write(payload)
                    else:
                        stream.write_from_file(data, total, _STREAM_CHUNK)
                    reply = stream.read_tokens()
                    status = int(reply[0])
                    if status < 0:
                        raise error_from_status(
                            status, reply[1] if len(reply) > 1 else ""
                        )
                    error = False
                    return status
                except DisconnectedError:
                    self._teardown()
                    raise
            finally:
                self._observe("putfile", start, 0, total if not error else 0, error)

    # -- ACLs and server state -------------------------------------------

    def getacl(self, path: str) -> Acl:
        start = time.perf_counter()
        error = True
        with self._lock:
            try:
                stream = self._require_stream()
                try:
                    stream.write_line("getacl", path)
                    reply = stream.read_tokens()
                    status = int(reply[0])
                    if status < 0:
                        raise error_from_status(
                            status, reply[1] if len(reply) > 1 else ""
                        )
                    entries = []
                    for _ in range(status):
                        toks = stream.read_tokens()
                        if len(toks) == 2:
                            entries.append(AclEntry(toks[0], parse_rights(toks[1])))
                except DisconnectedError:
                    self._teardown()
                    raise
                error = False
                return Acl(entries)
            finally:
                self._observe("getacl", start, 0, 0, error)

    def setacl(self, path: str, pattern: str, rights: str) -> None:
        self.rpc("setacl", path, pattern, rights)

    def whoami(self) -> str:
        reply = self.rpc("whoami")
        return reply[1]

    def statfs(self) -> StatFs:
        reply = self.rpc("statfs")
        return StatFs.from_tokens(reply[1:])
