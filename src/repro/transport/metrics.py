"""Per-verb RPC metrics for the transport layer.

Every RPC that crosses a :class:`~repro.transport.connection.Connection`
is observed here: one call count, an error flag, bytes in/out, and a
latency sample into a log-scale histogram.  The registry is pluggable --
every transport object accepts one, defaulting to a process-wide
registry -- so an operator can read aggregate behaviour after any run
(``snapshot()``) while tests inject a fresh registry and assert on it.

The Lustre-audit lesson (PAPERS.md): an uninstrumented I/O path is
invisible at scale.  Recording happens under one short lock per sample;
no allocation beyond the first observation of a verb.
"""

from __future__ import annotations

import threading
import weakref
from typing import Optional

__all__ = ["MetricsRegistry", "LatencyHistogram", "default_registry"]

# Log-scale bucket upper bounds in seconds: 1us .. ~17s, then +inf.
_BUCKET_BOUNDS = tuple(1e-6 * 4**i for i in range(13))


class LatencyHistogram:
    """Fixed log-scale latency histogram with cheap percentile estimates.

    Not thread-safe on its own; the owning registry serializes access.
    """

    __slots__ = ("counts", "overflow", "count", "total", "min", "max")

    def __init__(self):
        self.counts = [0] * len(_BUCKET_BOUNDS)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        for i, bound in enumerate(_BUCKET_BOUNDS):
            if seconds <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    def percentile(self, p: float) -> float:
        """Estimated latency at percentile ``p`` (0-100): the upper bound
        of the bucket containing that rank, clamped to the observed max."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(round(self.count * p / 100.0)))
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= rank:
                return min(_BUCKET_BOUNDS[i], self.max)
        return self.max

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min or 0.0,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": {
                **{f"le_{bound:g}": n for bound, n in zip(_BUCKET_BOUNDS, self.counts)},
                "overflow": self.overflow,
            },
        }


class _VerbStats:
    __slots__ = ("calls", "errors", "bytes_in", "bytes_out", "latency")

    def __init__(self):
        self.calls = 0
        self.errors = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.latency = LatencyHistogram()


class MetricsRegistry:
    """Thread-safe per-verb RPC statistics with a ``snapshot()`` API."""

    def __init__(self):
        self._lock = threading.Lock()
        self._verbs: dict[str, _VerbStats] = {}
        self._endpoints: dict[str, dict[str, int]] = {}
        # Health registries report through the metrics snapshot so one
        # read shows both traffic and quarantine state.  Weak references:
        # metrics outlive any particular client stack (the process-wide
        # default registry especially), and must not pin dead ones.
        self._health_sources: list = []  # ordered weakrefs
        # Named snapshot sections from other subsystems (e.g. the GEMS
        # keeper), same weak-reference discipline.
        self._sections: dict[str, object] = {}  # name -> weakref

    def attach_health(self, health) -> None:
        """Include a health registry's breakers in :meth:`snapshot`.

        ``health`` needs only a ``snapshot() -> dict`` method (see
        :class:`~repro.transport.health.HealthRegistry`).  Held weakly,
        in attachment order: when two registries track the same label,
        the later attachment wins deterministically.
        """
        with self._lock:
            if not any(ref() is health for ref in self._health_sources):
                self._health_sources.append(weakref.ref(health))

    def attach_section(self, name: str, source) -> None:
        """Include ``source.snapshot()`` under ``name`` in :meth:`snapshot`.

        The generic form of :meth:`attach_health`: any subsystem with a
        ``snapshot() -> dict`` (the GEMS keeper, for one) can surface its
        counters through the same operator read.  Held weakly; the names
        ``verbs``/``endpoints``/``health`` are reserved.
        """
        if name in ("verbs", "endpoints", "health"):
            raise ValueError(f"section name {name!r} is reserved")
        with self._lock:
            self._sections[name] = weakref.ref(source)

    def observe(
        self,
        verb: str,
        seconds: float,
        *,
        bytes_in: int = 0,
        bytes_out: int = 0,
        error: bool = False,
        endpoint: Optional[str] = None,
    ) -> None:
        """Record one completed RPC (successful or failed)."""
        with self._lock:
            stats = self._verbs.get(verb)
            if stats is None:
                stats = self._verbs[verb] = _VerbStats()
            stats.calls += 1
            if error:
                stats.errors += 1
            stats.bytes_in += bytes_in
            stats.bytes_out += bytes_out
            stats.latency.observe(seconds)
            if endpoint is not None:
                ep = self._endpoints.get(endpoint)
                if ep is None:
                    ep = self._endpoints[endpoint] = {"calls": 0, "errors": 0}
                ep["calls"] += 1
                if error:
                    ep["errors"] += 1

    def snapshot(self) -> dict:
        """Point-in-time copy of everything recorded so far.

        Shape::

            {"verbs": {verb: {"calls", "errors", "bytes_in", "bytes_out",
                              "latency": {"count", "sum", "min", "max",
                                          "mean", "p50", "p95", "p99",
                                          "buckets": {...}}}},
             "endpoints": {"host:port": {"calls", "errors"}},
             "health": {"host:port": {"state", "consecutive_failures",
                                      "failures", "successes",
                                      "opened_count"}}}

        The ``health`` section merges every attached health registry
        (last writer wins on a duplicate label, which only happens when
        two stacks independently track the same server).
        """
        with self._lock:
            self._health_sources = [r for r in self._health_sources if r() is not None]
            sources = [r() for r in self._health_sources]
            self._sections = {
                name: ref for name, ref in self._sections.items() if ref() is not None
            }
            sections = {name: ref() for name, ref in self._sections.items()}
            snap = {
                "verbs": {
                    verb: {
                        "calls": s.calls,
                        "errors": s.errors,
                        "bytes_in": s.bytes_in,
                        "bytes_out": s.bytes_out,
                        "latency": s.latency.snapshot(),
                    }
                    for verb, s in self._verbs.items()
                },
                "endpoints": {ep: dict(v) for ep, v in self._endpoints.items()},
            }
        # Health snapshots take the registries' own locks; do that outside
        # ours to keep lock ordering trivial.
        health: dict = {}
        for source in sources:
            if source is not None:
                health.update(source.snapshot())
        snap["health"] = health
        for name, source in sections.items():
            if source is not None:
                snap[name] = source.snapshot()
        return snap

    def reset(self) -> None:
        """Drop all recorded data (e.g. between benchmark phases)."""
        with self._lock:
            self._verbs.clear()
            self._endpoints.clear()


_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry used when none is injected."""
    return _default
