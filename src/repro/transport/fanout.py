"""Bounded worker pool for fan-out RPCs.

Striping, replication and multi-server aggregation all have the same
shape: issue the same kind of RPC against several servers and wait for
all of them.  With the endpoint layer holding multiple connections per
server, those RPCs genuinely overlap -- the workers here are what issues
them concurrently.

The pool is bounded (never more threads than ``max_workers``), lazy
(threads exist only after the first parallel call), and degrades to
inline execution for single tasks or when sized to one worker -- which
is also the forced-serial configuration the striping ablation measures
against.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Optional, Sequence, TypeVar

from repro.transport.deadline import Deadline
from repro.util.errors import TimedOutError

__all__ = ["FanoutPool"]

T = TypeVar("T")

DEFAULT_FANOUT = 8


class FanoutPool:
    """A small, lazily created thread pool that runs task lists to completion.

    ``run`` preserves task order in its result list and always waits for
    every task before returning (no work left running after an error);
    the first exception, in task order, is re-raised.
    """

    def __init__(self, max_workers: int = DEFAULT_FANOUT):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    @property
    def serial(self) -> bool:
        return self.max_workers == 1

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="tss-fanout",
                )
            return self._executor

    def run(
        self,
        tasks: Sequence[Callable[[], T]],
        deadline: Optional[Deadline] = None,
    ) -> list[T]:
        """Run every task; return their results in task order.

        With a ``deadline``, each result wait is bounded by the remaining
        budget; tasks still queued when it expires are cancelled and
        :class:`TimedOutError` is raised.  Tasks already executing run to
        completion on their own (deadline-clamped) socket timeouts -- the
        pool never abandons a running thread mid-exchange.
        """
        if not tasks:
            return []
        if self.serial or len(tasks) == 1:
            results = []
            for task in tasks:
                if deadline is not None:
                    deadline.check("fan-out")
                results.append(task())
            return results
        executor = self._ensure_executor()
        futures = [executor.submit(task) for task in tasks]
        results: list = [None] * len(futures)
        first_error: Optional[BaseException] = None
        for i, future in enumerate(futures):
            try:
                if deadline is None:
                    results[i] = future.result()
                else:
                    results[i] = future.result(timeout=deadline.bound(None))
            except (FutureTimeoutError, TimedOutError) as exc:
                if deadline is None:
                    # A task timed out on its own; ordinary error path.
                    if first_error is None:
                        first_error = exc
                    continue
                # Budget spent: drop whatever has not started yet and
                # surface the timeout (unless an earlier task failed
                # outright -- task-order precedence still holds).
                for pending in futures[i:]:
                    pending.cancel()
                if first_error is None:
                    first_error = (
                        exc
                        if isinstance(exc, TimedOutError)
                        else TimedOutError(
                            f"fan-out exceeded deadline of {deadline.budget:g}s"
                        )
                    )
                break
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def submit(self, task: Callable[[], T]):
        """Fire one task asynchronously; returns its Future.

        The fire-and-forget counterpart of :meth:`run`, used by the cache
        subsystem's readahead: the caller may wait on the future, or
        ignore it entirely.  Unlike :meth:`run`, a single task still goes
        through the executor -- asynchrony is the point.
        """
        return self._ensure_executor().submit(task)

    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)

    def __enter__(self) -> "FanoutPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
