"""One-shot exchanges for protocols without a session.

The catalog speaks the simplest possible protocol: connect, send one
request line, read the whole reply until EOF.  There is no
authentication and nothing worth keeping warm, so it does not get an
:class:`~repro.transport.endpoint.Endpoint`; it still routes through
the transport layer so that socket construction, error mapping and
metrics stay in one place.
"""

from __future__ import annotations

import socket
import time
from typing import Optional

from repro.transport.metrics import MetricsRegistry, default_registry
from repro.util.errors import DisconnectedError, TimedOutError

__all__ = ["oneshot_exchange"]


def oneshot_exchange(
    host: str,
    port: int,
    request: bytes,
    timeout: float = 10.0,
    metric: str = "oneshot",
    metrics: Optional[MetricsRegistry] = None,
) -> bytes:
    """Dial, send ``request``, read until the peer closes; metered.

    Maps socket failures to :class:`TimedOutError` /
    :class:`DisconnectedError` like every other transport path.
    """
    registry = metrics if metrics is not None else default_registry()
    label = f"{host}:{port}"
    start = time.perf_counter()
    bytes_in = 0
    error = True
    try:
        try:
            with socket.create_connection((host, int(port)), timeout=timeout) as sock:
                sock.sendall(request)
                chunks = []
                while True:
                    data = sock.recv(65536)
                    if not data:
                        break
                    chunks.append(data)
                    bytes_in += len(data)
        except socket.timeout as exc:
            raise TimedOutError(f"{metric} to {label}") from exc
        except OSError as exc:
            raise DisconnectedError(f"{metric} to {label}: {exc}") from exc
        error = False
        return b"".join(chunks)
    finally:
        registry.observe(
            metric,
            time.perf_counter() - start,
            bytes_in=bytes_in,
            bytes_out=len(request),
            error=error,
            endpoint=label,
        )
