"""One-shot exchanges for protocols without a session.

The catalog speaks the simplest possible protocol: connect, send one
request line, read the whole reply until EOF.  There is no
authentication and nothing worth keeping warm, so it does not get an
:class:`~repro.transport.endpoint.Endpoint`; it still routes through
the transport layer so that socket construction, error mapping and
metrics stay in one place.

One-shot exchanges retry once by default (``attempts=2``): a catalog
query is cheap and idempotent, so a single dropped SYN or mid-reply
reset should not fail the whole lookup.  The inter-attempt delay is
jittered so a fleet of clients that all lost the same catalog does not
re-dial it in lockstep.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Optional

from repro.transport.metrics import MetricsRegistry, default_registry
from repro.util.clock import Clock, MonotonicClock
from repro.util.errors import DisconnectedError, TimedOutError

__all__ = ["oneshot_exchange"]

DEFAULT_ONESHOT_ATTEMPTS = 2
DEFAULT_ONESHOT_RETRY_DELAY = 0.1


def oneshot_exchange(
    host: str,
    port: int,
    request: bytes,
    timeout: float = 10.0,
    metric: str = "oneshot",
    metrics: Optional[MetricsRegistry] = None,
    attempts: int = DEFAULT_ONESHOT_ATTEMPTS,
    retry_delay: float = DEFAULT_ONESHOT_RETRY_DELAY,
    rng: Optional[random.Random] = None,
    clock: Optional[Clock] = None,
) -> bytes:
    """Dial, send ``request``, read until the peer closes; metered.

    Maps socket failures to :class:`TimedOutError` /
    :class:`DisconnectedError` like every other transport path.  Each
    attempt is metered separately (failed tries show as errors), and the
    last attempt's failure propagates.  ``rng`` and ``clock`` are
    injectable for deterministic tests.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    clk = clock if clock is not None else MonotonicClock()
    last_exc: Optional[Exception] = None
    for attempt in range(attempts):
        if attempt > 0:
            # Uniform jitter in [delay/2, delay]: enough spread to break
            # lockstep, never more than the configured ceiling.
            r = rng if rng is not None else random
            clk.sleep(r.uniform(retry_delay / 2, retry_delay))
        try:
            return _exchange_once(host, port, request, timeout, metric, metrics)
        except (DisconnectedError, TimedOutError) as exc:
            last_exc = exc
    assert last_exc is not None
    raise last_exc


def _exchange_once(
    host: str,
    port: int,
    request: bytes,
    timeout: float,
    metric: str,
    metrics: Optional[MetricsRegistry],
) -> bytes:
    registry = metrics if metrics is not None else default_registry()
    label = f"{host}:{port}"
    start = time.perf_counter()
    bytes_in = 0
    error = True
    try:
        try:
            with socket.create_connection((host, int(port)), timeout=timeout) as sock:
                sock.sendall(request)
                chunks = []
                while True:
                    data = sock.recv(65536)
                    if not data:
                        break
                    chunks.append(data)
                    bytes_in += len(data)
        except socket.timeout as exc:
            raise TimedOutError(f"{metric} to {label}") from exc
        except OSError as exc:
            raise DisconnectedError(f"{metric} to {label}: {exc}") from exc
        error = False
        return b"".join(chunks)
    finally:
        registry.observe(
            metric,
            time.perf_counter() - start,
            bytes_in=bytes_in,
            bytes_out=len(request),
            error=error,
            endpoint=label,
        )
