"""Clock abstraction so control loops run on real or virtual time.

The GEMS auditor/replicator and the catalog's TTL expiry are time-driven
control loops.  Writing them against this tiny interface lets the same
logic run under pytest (with a :class:`ManualClock` stepped explicitly),
in production (with :class:`MonotonicClock`), and inside the discrete-event
simulator (which adapts its virtual clock to this interface).
"""

from __future__ import annotations

import threading
import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "MonotonicClock", "ManualClock"]


@runtime_checkable
class Clock(Protocol):
    """Minimal clock interface: read the time, sleep for a duration."""

    def now(self) -> float:
        """Current time in seconds (monotonic within one clock)."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block the caller for ``seconds`` of this clock's time."""
        ...


class MonotonicClock:
    """Wall-clock implementation backed by :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock:
    """A clock advanced explicitly by the test harness.

    ``sleep`` advances the clock rather than blocking, so time-driven loops
    can be driven deterministically.  Thread-safe: concurrent sleepers are
    woken when :meth:`advance` moves time past their deadline.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._cond = threading.Condition()

    def now(self) -> float:
        with self._cond:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        with self._cond:
            deadline = self._now + seconds
            while self._now < deadline:
                # Single-threaded callers advance their own clock;
                # multi-threaded callers wait for another thread to advance.
                if not self._cond.wait(timeout=0.001):
                    # No one advanced us: behave as the sole owner of time.
                    self._now = deadline
                    self._cond.notify_all()
                    return

    def advance(self, seconds: float) -> None:
        """Move time forward, waking any sleepers whose deadline passed."""
        if seconds < 0:
            raise ValueError("cannot move time backwards")
        with self._cond:
            self._now += seconds
            self._cond.notify_all()
