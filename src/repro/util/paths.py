"""Software "chroot": confining request paths inside an exported root.

The paper notes that a real ``chroot`` needs root privilege, so the Chirp
server "provides an equivalent facility in software."  This module is that
facility.  Every path arriving over the wire is a *virtual* absolute path
(``/a/b/c``) interpreted relative to the server's root directory.  We
normalize on the virtual side first -- ``..`` components can never climb
above the virtual root because normalization happens before the root is
joined -- and then optionally verify that symlinks inside the tree do not
point outside it.
"""

from __future__ import annotations

import os
import posixpath

__all__ = ["PathEscapeError", "normalize_virtual", "confine", "split_virtual"]


class PathEscapeError(Exception):
    """A request path attempted to escape the exported root."""


def normalize_virtual(path: str) -> str:
    """Normalize a virtual path to a canonical absolute form.

    ``""`` and ``"/"`` both mean the root.  ``..`` components are resolved
    purely lexically and clamp at the root, exactly like a real chroot.
    Backslashes are rejected rather than interpreted (the wire protocol is
    POSIX-only).
    """
    if "\\" in path:
        raise PathEscapeError(f"backslash in path: {path!r}")
    if "\x00" in path:
        raise PathEscapeError(f"NUL byte in path: {path!r}")
    if not path.startswith("/"):
        path = "/" + path
    norm = posixpath.normpath(path)
    # normpath("/../x") == "/x": '..' at the root clamps, as desired.
    # POSIX lets normpath preserve a leading "//"; collapse it -- the
    # virtual namespace has no implementation-defined roots.
    if norm.startswith("//"):
        norm = "/" + norm.lstrip("/")
    return norm


def split_virtual(path: str) -> tuple[str, str]:
    """Split a virtual path into (parent directory, basename)."""
    norm = normalize_virtual(path)
    if norm == "/":
        return "/", ""
    parent, base = posixpath.split(norm)
    return (parent or "/", base)


def confine(root: str, virtual_path: str, *, check_symlinks: bool = True) -> str:
    """Map a virtual path to a real path guaranteed to lie under ``root``.

    :param root: real filesystem directory exported by the server.
    :param virtual_path: client-supplied path, interpreted as absolute
        within the export.
    :param check_symlinks: when true, verify that resolving symlinks does
        not land outside ``root``.  The final component is allowed to be a
        dangling symlink (so ``unlink`` of a broken link works), but it is
        still checked when it resolves.
    :raises PathEscapeError: on any escape attempt.
    """
    norm = normalize_virtual(virtual_path)
    root_real = os.path.realpath(root)
    candidate = os.path.join(root_real, norm.lstrip("/"))
    if not check_symlinks:
        return candidate
    # Resolve the parent fully; the leaf may not exist yet (create paths).
    parent = os.path.dirname(candidate)
    parent_real = os.path.realpath(parent)
    if parent_real != root_real and not parent_real.startswith(root_real + os.sep):
        raise PathEscapeError(f"path {virtual_path!r} escapes export root")
    resolved_leaf = os.path.join(parent_real, os.path.basename(candidate))
    # If the leaf itself is a symlink, make sure its target stays inside.
    if os.path.islink(resolved_leaf):
        target_real = os.path.realpath(resolved_leaf)
        if target_real != root_real and not target_real.startswith(root_real + os.sep):
            raise PathEscapeError(
                f"symlink at {virtual_path!r} points outside export root"
            )
    return resolved_leaf
