"""Graceful-stop signal handling shared by the daemon entry points.

Every long-running process (file server, catalog, keeper, database)
wants the same discipline:

- the first SIGTERM/SIGINT requests a *graceful* stop -- the handler
  sets an event the main thread is waiting on, which returns
  immediately (CPython runs signal handlers on the main thread, so the
  ``Event.wait`` is interrupted rather than riding out its timeout);
- a repeated signal means the operator is done waiting: escalate to
  ``os._exit`` so a wedged drain can never hold the process hostage.

The daemons' worker loops are woken by their ``stop()`` methods closing
the listening socket, which bounds total shutdown latency to one accept
poll tick rather than a full poll interval.
"""

from __future__ import annotations

import os
import signal
import threading

__all__ = ["GracefulSignals"]


class GracefulSignals:
    """Install handlers that stop gracefully once, forcefully twice."""

    def __init__(self, escalate_status: int = 1):
        self.stop = threading.Event()
        self.escalate_status = escalate_status
        self._hits = 0

    def install(self) -> "GracefulSignals":
        signal.signal(signal.SIGINT, self._handle)
        signal.signal(signal.SIGTERM, self._handle)
        return self

    def _handle(self, signum, frame) -> None:
        self._hits += 1
        if self._hits > 1:
            # Second signal: the graceful path is taking too long (or is
            # stuck).  _exit skips atexit/finally machinery on purpose --
            # anything durable was already made durable by the first
            # pass, and the operator asked twice.
            os._exit(self.escalate_status)
        self.stop.set()

    def wait(self) -> None:
        """Block the main thread until the first stop signal."""
        self.stop.wait()
