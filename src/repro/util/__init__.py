"""Shared low-level utilities for the Tactical Storage System reproduction.

This package contains the pieces every other layer leans on:

- :mod:`repro.util.errors` -- the error model shared by client, server, and
  wire protocol (Chirp-style negative status codes mapped to/from ``errno``).
- :mod:`repro.util.wire` -- the line-oriented wire codec used by the Chirp
  protocol and the catalog/database servers.
- :mod:`repro.util.paths` -- software "chroot": safe confinement of request
  paths inside a server's exported root directory.
- :mod:`repro.util.checksum` -- streaming file checksums used by the GEMS
  auditor to verify replica integrity.
- :mod:`repro.util.clock` -- a small clock abstraction so control loops
  (e.g. the GEMS auditor/replicator) run identically on wall-clock time and
  on the discrete-event simulator's virtual time.
"""

from repro.util.errors import (
    ChirpError,
    StatusCode,
    error_from_status,
    status_from_exception,
)
from repro.util.paths import PathEscapeError, confine, normalize_virtual
from repro.util.checksum import file_checksum, data_checksum
from repro.util.clock import Clock, MonotonicClock, ManualClock

__all__ = [
    "ChirpError",
    "StatusCode",
    "error_from_status",
    "status_from_exception",
    "PathEscapeError",
    "confine",
    "normalize_virtual",
    "file_checksum",
    "data_checksum",
    "Clock",
    "MonotonicClock",
    "ManualClock",
]
