"""Streaming checksums used by the GEMS auditor to verify replicas."""

from __future__ import annotations

import hashlib
from typing import BinaryIO

__all__ = ["data_checksum", "file_checksum", "new_hash", "stream_checksum"]

_ALGORITHM = "sha1"  # matches the vintage of the paper; stable and fast


def new_hash():
    """A fresh hash object of the repo-wide checksum algorithm (for
    callers that hash incrementally, e.g. verified streaming reads)."""
    return hashlib.new(_ALGORITHM)


def data_checksum(data: bytes) -> str:
    """Checksum of an in-memory byte string (hex digest)."""
    h = hashlib.new(_ALGORITHM)
    h.update(data)
    return h.hexdigest()


def stream_checksum(fobj: BinaryIO, chunk_size: int = 1 << 20) -> str:
    """Checksum a readable binary stream without loading it in memory."""
    h = hashlib.new(_ALGORITHM)
    while True:
        chunk = fobj.read(chunk_size)
        if not chunk:
            break
        h.update(chunk)
    return h.hexdigest()


def file_checksum(path: str, chunk_size: int = 1 << 20) -> str:
    """Checksum a file on the local filesystem."""
    with open(path, "rb") as f:
        return stream_checksum(f, chunk_size)
