"""Error model shared by the Chirp client, server, and wire protocol.

The Chirp protocol reports failures as small negative integers on the wire,
in the style of the original cctools implementation.  Locally those map to
a :class:`ChirpError` exception hierarchy, and at the server they are
produced from ordinary :class:`OSError` values raised by the host
filesystem.  Keeping the mapping in one module guarantees the client sees
the same error class regardless of whether the failure happened in the
server's access-control check or deep in the host kernel.
"""

from __future__ import annotations

import errno
from enum import IntEnum

__all__ = [
    "StatusCode",
    "ChirpError",
    "NotAuthenticatedError",
    "NotAuthorizedError",
    "DoesNotExistError",
    "AlreadyExistsError",
    "TooBigError",
    "NoSpaceError",
    "InvalidRequestError",
    "TooManyOpenError",
    "BusyError",
    "TryAgainError",
    "BadFileDescriptorError",
    "IsADirectoryError_",
    "NotADirectoryError_",
    "NotEmptyError",
    "CrossDeviceLinkError",
    "DisconnectedError",
    "CircuitOpenError",
    "PartialFailureError",
    "TimedOutError",
    "StaleHandleError",
    "IntegrityError",
    "UnknownError",
    "status_from_exception",
    "error_from_status",
    "busy_message",
    "parse_retry_after",
]


class StatusCode(IntEnum):
    """Negative wire status codes, one per failure class.

    A non-negative wire status is a successful result value (for example a
    file descriptor from ``open`` or a byte count from ``pread``), so all
    failure codes are strictly negative.
    """

    NOT_AUTHENTICATED = -1
    NOT_AUTHORIZED = -2
    DOESNT_EXIST = -3
    ALREADY_EXISTS = -4
    TOO_BIG = -5
    NO_SPACE = -6
    NO_MEMORY = -7
    INVALID_REQUEST = -8
    TOO_MANY_OPEN = -9
    BUSY = -10
    TRY_AGAIN = -11
    BAD_FD = -12
    IS_DIR = -13
    NOT_DIR = -14
    NOT_EMPTY = -15
    CROSS_DEVICE_LINK = -16
    DISCONNECTED = -17
    TIMED_OUT = -18
    STALE = -19
    UNKNOWN = -127


class ChirpError(Exception):
    """Base class for every protocol-visible failure.

    :ivar status: the :class:`StatusCode` carried on the wire.
    """

    status: StatusCode = StatusCode.UNKNOWN

    def __init__(self, message: str = ""):
        super().__init__(message or self.status.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.status.name}: {self})"


class NotAuthenticatedError(ChirpError):
    status = StatusCode.NOT_AUTHENTICATED


class NotAuthorizedError(ChirpError):
    status = StatusCode.NOT_AUTHORIZED


class DoesNotExistError(ChirpError):
    status = StatusCode.DOESNT_EXIST


class AlreadyExistsError(ChirpError):
    status = StatusCode.ALREADY_EXISTS


class TooBigError(ChirpError):
    status = StatusCode.TOO_BIG


class NoSpaceError(ChirpError):
    status = StatusCode.NO_SPACE


class NoMemoryError(ChirpError):
    status = StatusCode.NO_MEMORY


class InvalidRequestError(ChirpError):
    status = StatusCode.INVALID_REQUEST


class TooManyOpenError(ChirpError):
    status = StatusCode.TOO_MANY_OPEN


class BusyError(ChirpError):
    """The server refused the work because it is saturated or draining.

    Unlike every other refusal this one is *server-driven backoff*: the
    message may carry a ``retry_after_ms=<int>`` token (see
    :func:`busy_message`), surfaced here as ``retry_after_s``.  Clients
    honor the hint instead of their own backoff schedule, and a BUSY
    refusal never moves the circuit breaker -- a shedding server is the
    server *working*, not the transport failing.
    """

    status = StatusCode.BUSY

    def __init__(self, message: str = "", retry_after_s: "float | None" = None):
        super().__init__(message)
        if retry_after_s is None:
            retry_after_s = parse_retry_after(message)
        self.retry_after_s = retry_after_s


class TryAgainError(ChirpError):
    status = StatusCode.TRY_AGAIN


class BadFileDescriptorError(ChirpError):
    status = StatusCode.BAD_FD


class IsADirectoryError_(ChirpError):
    status = StatusCode.IS_DIR


class NotADirectoryError_(ChirpError):
    status = StatusCode.NOT_DIR


class NotEmptyError(ChirpError):
    status = StatusCode.NOT_EMPTY


class CrossDeviceLinkError(ChirpError):
    status = StatusCode.CROSS_DEVICE_LINK


class DisconnectedError(ChirpError):
    """The TCP connection to the server was lost.

    Raised locally by the client; never carried on the wire.  Per the
    paper's failure semantics, the server frees all state (open files) on
    disconnect, so recovery is the adapter's job (reconnect, re-open,
    verify inode).
    """

    status = StatusCode.DISCONNECTED


class CircuitOpenError(DisconnectedError):
    """The endpoint's circuit breaker is open: recent consecutive transport
    failures exceeded the threshold, so calls fail fast without dialing
    until the cooldown elapses (see :mod:`repro.transport.health`).

    Subclasses :class:`DisconnectedError` so every existing recovery and
    failover path treats a breaker-rejected endpoint exactly like a dead
    one -- just without paying for the doomed TCP handshake.
    """


class PartialFailureError(DisconnectedError):
    """A multi-server operation lost *some* of its servers.

    Raised by striped I/O so the caller learns exactly which stripes died
    instead of a bare disconnect.  ``failures`` is a tuple of
    ``(index, "host:port", reason)`` triples, one per failed participant.
    """

    def __init__(self, message: str = "", failures: tuple = ()):
        self.failures = tuple(failures)
        if self.failures and message:
            names = ", ".join(f"#{i}@{ep}" for i, ep, _ in self.failures)
            message = f"{message} [{names}]"
        super().__init__(message)

    @property
    def endpoints(self) -> tuple[str, ...]:
        """The distinct ``host:port`` labels that failed."""
        seen = []
        for _, ep, _ in self.failures:
            if ep not in seen:
                seen.append(ep)
        return tuple(seen)


class TimedOutError(ChirpError):
    status = StatusCode.TIMED_OUT


class StaleHandleError(ChirpError):
    """The file changed identity across a reconnect (renamed or deleted).

    This mirrors the NFS "stale file handle" behaviour the paper adopts:
    after reconnecting, the adapter ``stat``\\ s the re-opened file, and if
    the inode differs the original handle is declared stale.
    """

    status = StatusCode.STALE


class UnknownError(ChirpError):
    status = StatusCode.UNKNOWN


class IntegrityError(ChirpError):
    """Fetched bytes do not hash to the expected content digest.

    Raised locally by checksum-verified readers (client, DSDB, replfs);
    never carried on the wire.  The server that produced the bytes is a
    *lying* replica -- readers treat this like a replica failure: fail
    over, mark the replica suspect/damaged, and let repair machinery
    re-replicate from an intact copy.
    """

    status = StatusCode.UNKNOWN


_ERRNO_TO_STATUS = {
    errno.ENOENT: StatusCode.DOESNT_EXIST,
    # EIO deliberately maps to UNKNOWN (and UNKNOWN maps back to EIO in
    # _STATUS_TO_ERRNO): a disk I/O error carries no more protocol
    # meaning than "the resource failed", and readers must not confuse
    # it with a policy refusal like NO_SPACE.
    errno.EIO: StatusCode.UNKNOWN,
    errno.EEXIST: StatusCode.ALREADY_EXISTS,
    errno.EACCES: StatusCode.NOT_AUTHORIZED,
    errno.EPERM: StatusCode.NOT_AUTHORIZED,
    errno.EFBIG: StatusCode.TOO_BIG,
    errno.ENOSPC: StatusCode.NO_SPACE,
    errno.EDQUOT: StatusCode.NO_SPACE,
    errno.ENOMEM: StatusCode.NO_MEMORY,
    errno.EINVAL: StatusCode.INVALID_REQUEST,
    errno.EMFILE: StatusCode.TOO_MANY_OPEN,
    errno.ENFILE: StatusCode.TOO_MANY_OPEN,
    errno.EBUSY: StatusCode.BUSY,
    errno.EAGAIN: StatusCode.TRY_AGAIN,
    errno.EBADF: StatusCode.BAD_FD,
    errno.EISDIR: StatusCode.IS_DIR,
    errno.ENOTDIR: StatusCode.NOT_DIR,
    errno.ENOTEMPTY: StatusCode.NOT_EMPTY,
    errno.EXDEV: StatusCode.CROSS_DEVICE_LINK,
    errno.ETIMEDOUT: StatusCode.TIMED_OUT,
    errno.ESTALE: StatusCode.STALE,
    errno.ENAMETOOLONG: StatusCode.INVALID_REQUEST,
    errno.ELOOP: StatusCode.INVALID_REQUEST,
}

_STATUS_TO_ERROR: dict[int, type[ChirpError]] = {
    StatusCode.NOT_AUTHENTICATED: NotAuthenticatedError,
    StatusCode.NOT_AUTHORIZED: NotAuthorizedError,
    StatusCode.DOESNT_EXIST: DoesNotExistError,
    StatusCode.ALREADY_EXISTS: AlreadyExistsError,
    StatusCode.TOO_BIG: TooBigError,
    StatusCode.NO_SPACE: NoSpaceError,
    StatusCode.NO_MEMORY: NoMemoryError,
    StatusCode.INVALID_REQUEST: InvalidRequestError,
    StatusCode.TOO_MANY_OPEN: TooManyOpenError,
    StatusCode.BUSY: BusyError,
    StatusCode.TRY_AGAIN: TryAgainError,
    StatusCode.BAD_FD: BadFileDescriptorError,
    StatusCode.IS_DIR: IsADirectoryError_,
    StatusCode.NOT_DIR: NotADirectoryError_,
    StatusCode.NOT_EMPTY: NotEmptyError,
    StatusCode.CROSS_DEVICE_LINK: CrossDeviceLinkError,
    StatusCode.DISCONNECTED: DisconnectedError,
    StatusCode.TIMED_OUT: TimedOutError,
    StatusCode.STALE: StaleHandleError,
    StatusCode.UNKNOWN: UnknownError,
}

_STATUS_TO_ERRNO = {
    StatusCode.NOT_AUTHENTICATED: errno.EACCES,
    StatusCode.NOT_AUTHORIZED: errno.EACCES,
    StatusCode.DOESNT_EXIST: errno.ENOENT,
    StatusCode.ALREADY_EXISTS: errno.EEXIST,
    StatusCode.TOO_BIG: errno.EFBIG,
    StatusCode.NO_SPACE: errno.ENOSPC,
    StatusCode.NO_MEMORY: errno.ENOMEM,
    StatusCode.INVALID_REQUEST: errno.EINVAL,
    StatusCode.TOO_MANY_OPEN: errno.EMFILE,
    StatusCode.BUSY: errno.EBUSY,
    StatusCode.TRY_AGAIN: errno.EAGAIN,
    StatusCode.BAD_FD: errno.EBADF,
    StatusCode.IS_DIR: errno.EISDIR,
    StatusCode.NOT_DIR: errno.ENOTDIR,
    StatusCode.NOT_EMPTY: errno.ENOTEMPTY,
    StatusCode.CROSS_DEVICE_LINK: errno.EXDEV,
    StatusCode.DISCONNECTED: errno.EIO,
    StatusCode.TIMED_OUT: errno.ETIMEDOUT,
    StatusCode.STALE: errno.ESTALE,
    StatusCode.UNKNOWN: errno.EIO,
}


def busy_message(retry_after_ms: int, reason: str = "") -> str:
    """Format the message token of a ``BUSY`` refusal.

    The whole message is one percent-escaped wire token, so the hint is
    embedded as ``retry_after_ms=<int>`` where :func:`parse_retry_after`
    can recover it on the client side.
    """
    hint = f"retry_after_ms={max(0, int(retry_after_ms))}"
    return f"{reason} {hint}" if reason else hint


def parse_retry_after(message: str) -> float | None:
    """Extract the ``retry_after_ms=<int>`` hint from a refusal message.

    Returns the hint in *seconds*, or ``None`` when the message carries
    none (an old server, or a BUSY produced from a host ``EBUSY``).
    """
    for word in message.split():
        if word.startswith("retry_after_ms="):
            try:
                return max(0, int(word.partition("=")[2])) / 1000.0
            except ValueError:
                return None
    return None


def status_from_exception(exc: BaseException) -> StatusCode:
    """Map a local exception to the wire status the server should send."""
    if isinstance(exc, ChirpError):
        return exc.status
    if isinstance(exc, OSError) and exc.errno is not None:
        return _ERRNO_TO_STATUS.get(exc.errno, StatusCode.UNKNOWN)
    return StatusCode.UNKNOWN


def error_from_status(status: int, message: str = "") -> ChirpError:
    """Construct the :class:`ChirpError` subclass for a wire status code."""
    try:
        code = StatusCode(status)
    except ValueError:
        return UnknownError(message or f"unknown status {status}")
    cls = _STATUS_TO_ERROR.get(code, UnknownError)
    return cls(message)


def oserror_from_status(status: int, message: str = "", path: str | None = None) -> OSError:
    """Construct an :class:`OSError` for POSIX-surface callers (the adapter).

    The adapter re-implements the Unix syscall surface, so errors that cross
    it must look like the kernel's: ``OSError`` with a correct ``errno``.
    """
    try:
        code = StatusCode(status)
    except ValueError:
        code = StatusCode.UNKNOWN
    num = _STATUS_TO_ERRNO.get(code, errno.EIO)
    err = OSError(num, message or code.name)
    if path is not None:
        err.filename = path
    return err
