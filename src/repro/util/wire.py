"""Line-oriented wire codec shared by the Chirp, catalog, and DB protocols.

The Chirp protocol is deliberately simple: each request is one text line of
space-separated tokens terminated by ``\\n``, optionally followed by a
binary payload of a length stated in the line.  Responses are a status line
(an integer, negative on failure) optionally followed by payload.  Control
and data share a single TCP connection so the congestion window stays open
across files -- the property the paper contrasts with FTP's separate data
connections.

Tokens that may contain spaces or newlines (paths, subject names) are
percent-escaped with :func:`encode_token` / :func:`decode_token`.
"""

from __future__ import annotations

import socket
from typing import Iterable

from repro.util.errors import DisconnectedError, InvalidRequestError

__all__ = [
    "encode_token",
    "decode_token",
    "pack_line",
    "unpack_line",
    "LineStream",
    "MAX_LINE",
]

MAX_LINE = 64 * 1024  # longest request/response line we will accept
_SAFE = set(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789"
    "-_.~/:@+=,*()[]{}!$&'#^|"
)


def encode_token(token: str) -> str:
    """Percent-escape a token so it survives space-separated framing.

    The empty string encodes to ``%``, so every token occupies at least one
    character on the wire and splitting on spaces round-trips.
    """
    if token == "":
        return "%"
    out = []
    for ch in token:
        if ch in _SAFE:
            out.append(ch)
        else:
            out.extend(f"%{b:02X}" for b in ch.encode("utf-8"))
    return "".join(out)


def decode_token(token: str) -> str:
    """Invert :func:`encode_token`."""
    if token == "%":
        return ""
    raw = bytearray()
    i = 0
    n = len(token)
    while i < n:
        ch = token[i]
        if ch == "%":
            if i + 3 > n:
                raise InvalidRequestError(f"truncated escape in token: {token!r}")
            try:
                raw.append(int(token[i + 1 : i + 3], 16))
            except ValueError as exc:
                raise InvalidRequestError(f"bad escape in token: {token!r}") from exc
            i += 3
        else:
            raw.extend(ch.encode("utf-8"))
            i += 1
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise InvalidRequestError(f"token is not valid UTF-8: {token!r}") from exc


def pack_line(*tokens: object) -> bytes:
    """Build one wire line from tokens.

    Integers are rendered in decimal; strings are percent-escaped.
    """
    parts = []
    for tok in tokens:
        if isinstance(tok, bool):
            parts.append("1" if tok else "0")
        elif isinstance(tok, int):
            parts.append(str(tok))
        elif isinstance(tok, str):
            parts.append(encode_token(tok))
        else:
            raise TypeError(f"cannot encode token of type {type(tok).__name__}")
    line = " ".join(parts)
    data = line.encode("ascii") + b"\n"
    if len(data) > MAX_LINE:
        raise InvalidRequestError("wire line too long")
    return data


def unpack_line(line: bytes) -> list[str]:
    """Split a raw wire line into decoded tokens."""
    text = line.decode("ascii", errors="strict").rstrip("\r\n")
    if not text:
        return []
    return [decode_token(t) for t in text.split(" ") if t]


class LineStream:
    """Buffered reader/writer over a connected socket.

    Provides exactly the primitives the protocols need: read one line, read
    an exact byte count, write bytes.  A closed or reset peer surfaces as
    :class:`DisconnectedError` so callers never see raw socket errors.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buf = bytearray()
        self._closed = False

    @property
    def socket(self) -> socket.socket:
        return self._sock

    def read_line(self, max_len: int = MAX_LINE) -> bytes:
        """Read up to and including the next ``\\n``; raise on EOF."""
        while True:
            idx = self._buf.find(b"\n")
            if idx >= 0:
                line = bytes(self._buf[: idx + 1])
                del self._buf[: idx + 1]
                return line
            if len(self._buf) > max_len:
                raise InvalidRequestError("line exceeds maximum length")
            chunk = self._recv(65536)
            if not chunk:
                raise DisconnectedError("connection closed while reading line")
            self._buf.extend(chunk)

    def read_tokens(self) -> list[str]:
        """Read one line and split it into decoded tokens."""
        return unpack_line(self.read_line())

    def read_exact(self, length: int) -> bytes:
        """Read exactly ``length`` payload bytes."""
        if length < 0:
            raise InvalidRequestError(f"negative payload length {length}")
        while len(self._buf) < length:
            want = min(1 << 20, max(65536, length - len(self._buf)))
            chunk = self._recv(want)
            if not chunk:
                raise DisconnectedError("connection closed mid-payload")
            self._buf.extend(chunk)
        data = bytes(self._buf[:length])
        del self._buf[:length]
        return data

    def read_into_file(self, fobj, length: int, chunk_size: int = 1 << 20) -> None:
        """Stream ``length`` payload bytes directly into a file object.

        Used by ``putfile`` so large uploads never materialize in memory --
        the streaming discipline the HPC guides call for on hot paths.
        """
        remaining = length
        if self._buf:
            # Consume from the buffer *before* writing: if fobj.write
            # raises mid-payload (a store fault), the bytes must count
            # as read off the wire or the caller's drain of the unread
            # tail leaves them behind and desyncs the stream.
            take = min(len(self._buf), remaining)
            chunk = bytes(self._buf[:take])
            del self._buf[:take]
            remaining -= take
            fobj.write(chunk)
        while remaining > 0:
            chunk = self._recv(min(chunk_size, remaining))
            if not chunk:
                raise DisconnectedError("connection closed mid-payload")
            fobj.write(chunk)
            remaining -= len(chunk)

    def write(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            self._closed = True
            raise DisconnectedError(f"send failed: {exc}") from exc

    def write_line(self, *tokens: object) -> None:
        self.write(pack_line(*tokens))

    def write_lines(self, lines) -> None:
        """Send many token-tuples as one ``sendall``.

        Multi-line responses (directory listings, ACL dumps) coalesce
        into a single syscall and, with Nagle disabled, a single segment
        burst -- instead of one ``send`` per entry.
        """
        self.write(b"".join(pack_line(*tokens) for tokens in lines))

    def write_from_file(self, fobj, length: int, chunk_size: int = 1 << 20) -> None:
        """Stream ``length`` bytes from a file object to the peer."""
        remaining = length
        while remaining > 0:
            chunk = fobj.read(min(chunk_size, remaining))
            if not chunk:
                raise DisconnectedError("source file truncated during send")
            self.write(chunk)
            remaining -= len(chunk)

    def _recv(self, n: int) -> bytes:
        if self._closed:
            raise DisconnectedError("stream already closed")
        try:
            return self._sock.recv(n)
        except (ConnectionError, OSError) as exc:
            self._closed = True
            raise DisconnectedError(f"recv failed: {exc}") from exc

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass
