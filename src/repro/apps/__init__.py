"""Synthetic stand-ins for the paper's scientific applications.

- :mod:`repro.apps.sp5` -- a runnable program with SP5's I/O profile
  (staged initialization reading scripts/libraries/configuration, then an
  event loop producing output), written against *plain Python file I/O*
  so it can run unmodified under adapter interposition -- exactly how the
  real SP5 ran unmodified under Parrot.
- :mod:`repro.apps.protomol` -- a generator of PROTOMOL-like simulation
  outputs (deterministic pseudo-random trajectory/energy files plus
  metadata), the dataset GEMS preserves.
"""

from repro.apps.sp5 import SyntheticSP5, SP5RunStats
from repro.apps.protomol import ProtomolRun, generate_runs

__all__ = ["SyntheticSP5", "SP5RunStats", "ProtomolRun", "generate_runs"]
