"""Synthetic PROTOMOL simulation outputs: the dataset GEMS preserves.

"A single user of a simulation tool such as PROTOMOL can easily generate
so many simulation outputs that a database is needed simply to keep track
of the work accomplished."  This module generates deterministic
pseudo-random stand-ins for those outputs -- trajectory and energy files
with rich queryable metadata -- sized to taste.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["ProtomolRun", "generate_runs"]

_MOLECULES = ("alanine", "bpti", "villin", "ww-domain", "lysozyme")
_INTEGRATORS = ("leapfrog", "langevin", "nose-hoover")


@dataclass
class ProtomolRun:
    """One simulation run: a few output files plus their metadata."""

    run_id: int
    molecule: str
    integrator: str
    temperature: float
    steps: int
    trajectory_bytes: int
    energy_bytes: int
    seed: int = 7

    def metadata(self) -> dict:
        return {
            "project": "protomol",
            "run": self.run_id,
            "molecule": self.molecule,
            "integrator": self.integrator,
            "temperature": self.temperature,
            "steps": self.steps,
        }

    def _blob(self, tag: str, size: int) -> bytes:
        h = hashlib.sha256(f"{self.seed}:{self.run_id}:{tag}".encode()).digest()
        return (h * (size // len(h) + 1))[:size]

    def files(self) -> list[tuple[str, bytes, dict]]:
        """(name, content, metadata) triples, ready for DSDB ingest."""
        base = f"run{self.run_id:04d}"
        meta = self.metadata()
        return [
            (
                f"{base}/trajectory.dcd",
                self._blob("traj", self.trajectory_bytes),
                {**meta, "kind": "trajectory"},
            ),
            (
                f"{base}/energies.dat",
                self._blob("energy", self.energy_bytes),
                {**meta, "kind": "energy"},
            ),
        ]


def generate_runs(
    n_runs: int,
    trajectory_bytes: int = 200_000,
    energy_bytes: int = 20_000,
    seed: int = 7,
) -> list[ProtomolRun]:
    """A parameter sweep like a real study: molecules x integrators x T."""
    runs = []
    for i in range(n_runs):
        runs.append(
            ProtomolRun(
                run_id=i,
                molecule=_MOLECULES[i % len(_MOLECULES)],
                integrator=_INTEGRATORS[(i // len(_MOLECULES)) % len(_INTEGRATORS)],
                temperature=280.0 + 10.0 * (i % 6),
                steps=100_000 + 50_000 * (i % 4),
                trajectory_bytes=trajectory_bytes,
                energy_bytes=energy_bytes,
                seed=seed,
            )
        )
    return runs
