"""A runnable synthetic SP5.

The real SP5 "is not a single static executable, but a collection of
scripts, executables, and dynamic libraries" whose data sits behind a
commercial I/O library.  This synthetic version preserves what matters to
the storage system:

- **install()** lays down the application tree (scripts, libraries,
  conditions data) on any storage reachable through ordinary file I/O;
- **initialize()** walks and reads that tree, the way a dynamic loader
  and configuration system would;
- **process_events(n)** reads per-event configuration, does a little
  arithmetic (the "physics"), and writes an output file per event.

Crucially the class uses only ``open``/``os`` calls, so the same
unmodified code runs on local disk, or on a TSS via
:func:`repro.adapter.interpose.interposed` -- reproducing the paper's
claim that SP5 deploys onto a grid "without changing any of the
application code."
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field

__all__ = ["SyntheticSP5", "SP5RunStats"]


@dataclass
class SP5RunStats:
    """Counters the demo and tests assert against."""

    files_installed: int = 0
    bytes_installed: int = 0
    files_read: int = 0
    bytes_read: int = 0
    events_processed: int = 0
    bytes_written: int = 0
    init_seconds: float = 0.0
    event_seconds: float = 0.0
    digests: list[str] = field(default_factory=list)


class SyntheticSP5:
    """The synthetic experiment, rooted anywhere file I/O works.

    :param root: installation root -- a local directory, or a TSS path
        like ``/cfs/host:port/sp5`` when run under interposition.
    :param scale: shrinks the stock layout for quick tests (1.0 = the
        default ~100-file tree).
    """

    def __init__(self, root: str, scale: float = 1.0, seed: int = 5):
        self.root = root.rstrip("/")
        self.scale = scale
        self.seed = seed
        self.stats = SP5RunStats()

    # -- layout ------------------------------------------------------------

    def _layout(self) -> list[tuple[str, int]]:
        """(path, size) pairs for the application tree."""
        n_scripts = max(2, int(20 * self.scale))
        n_libs = max(2, int(30 * self.scale))
        n_cond = max(2, int(40 * self.scale))
        out = [("bin/sp5", 200_000)]
        out += [(f"scripts/setup{i:03d}.sh", 2_000) for i in range(n_scripts)]
        out += [(f"lib/libbabar{i:03d}.so", 150_000) for i in range(n_libs)]
        out += [(f"conditions/cond{i:03d}.db", 80_000) for i in range(n_cond)]
        out += [("config/sp5.cfg", 10_000), ("config/locks.cfg", 1_000)]
        return out

    def _content(self, path: str, size: int) -> bytes:
        h = hashlib.sha256(f"{self.seed}:{path}".encode()).digest()
        reps = size // len(h) + 1
        return (h * reps)[:size]

    # -- phases ------------------------------------------------------------

    def install(self) -> SP5RunStats:
        """Lay down the application tree (done once, by the experimenter)."""
        made = set()
        for rel, size in self._layout():
            d = self.root + "/" + os.path.dirname(rel)
            if d not in made:
                self._makedirs(d)
                made.add(d)
            data = self._content(rel, size)
            with open(self.root + "/" + rel, "wb") as f:
                f.write(data)
            self.stats.files_installed += 1
            self.stats.bytes_installed += size
        self._makedirs(self.root + "/output")
        return self.stats

    def _makedirs(self, path: str) -> None:
        parts = path.strip("/").split("/")
        current = ""
        for part in parts:
            current += "/" + part
            try:
                os.mkdir(current)
            except FileExistsError:
                continue
            except PermissionError:
                continue  # parents outside our namespace already exist

    def initialize(self) -> SP5RunStats:
        """Load every script, library and conditions file, verifying it."""
        start = time.monotonic()
        for rel, size in self._layout():
            path = self.root + "/" + rel
            st = os.stat(path)
            if st.st_size != size:
                raise RuntimeError(f"{path}: expected {size} bytes, saw {st.st_size}")
            with open(path, "rb") as f:
                data = f.read()
            if data != self._content(rel, size):
                raise RuntimeError(f"{path}: content corrupted in transit")
            self.stats.files_read += 1
            self.stats.bytes_read += len(data)
        self.stats.init_seconds = time.monotonic() - start
        return self.stats

    def process_events(self, n_events: int) -> SP5RunStats:
        """The event loop: read config, compute, write one output each."""
        start = time.monotonic()
        with open(self.root + "/config/sp5.cfg", "rb") as f:
            config = f.read()
        for i in range(n_events):
            digest = hashlib.sha256(config + i.to_bytes(8, "big")).hexdigest()
            payload = (digest.encode() * 300)[:16_000]
            out = f"{self.root}/output/event{i:06d}.out"
            with open(out, "wb") as f:
                f.write(payload)
            self.stats.digests.append(digest)
            self.stats.events_processed += 1
            self.stats.bytes_written += len(payload)
        self.stats.event_seconds = time.monotonic() - start
        return self.stats

    def verify_outputs(self) -> int:
        """Re-read outputs and check them; returns the verified count."""
        count = 0
        with open(self.root + "/config/sp5.cfg", "rb") as f:
            config = f.read()
        for i, digest in enumerate(self.stats.digests):
            expected = hashlib.sha256(config + i.to_bytes(8, "big")).hexdigest()
            if expected != digest:
                raise RuntimeError(f"event {i}: digest mismatch")
            with open(f"{self.root}/output/event{i:06d}.out", "rb") as f:
                if not f.read().startswith(digest.encode()):
                    raise RuntimeError(f"event {i}: output corrupted")
            count += 1
        return count
