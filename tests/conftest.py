"""Shared fixtures: live servers on loopback, pools, credentials.

Everything binds to port 0 (ephemeral) so tests parallelize and never
collide with real services.  The ``unix`` auth method is used by default
because it works hermetically on one host (the challenge file lands in a
per-test temp directory).
"""

from __future__ import annotations

import os
import socket
import threading

import pytest

from repro.auth.methods import AuthContext, ClientCredentials
from repro.chirp.client import ChirpClient
from repro.chirp.server import FileServer, ServerConfig
from repro.core.pool import ClientPool

OWNER = "unix:root"  # tests run as root in CI containers


def _current_unix_subject() -> str:
    import getpass

    return f"unix:{getpass.getuser()}"


@pytest.fixture()
def owner_subject() -> str:
    return _current_unix_subject()


@pytest.fixture()
def auth_context(tmp_path) -> AuthContext:
    challenge_dir = tmp_path / "challenges"
    challenge_dir.mkdir()
    return AuthContext(enabled=("unix", "hostname"), unix_challenge_dir=str(challenge_dir))


@pytest.fixture()
def credentials() -> ClientCredentials:
    return ClientCredentials(methods=("unix",))


class ServerFactory:
    """Creates live file servers rooted in per-test temp directories."""

    def __init__(self, tmp_path, auth: AuthContext, owner: str):
        self.tmp_path = tmp_path
        self.auth = auth
        self.owner = owner
        self.servers: list[FileServer] = []
        self._counter = 0

    def new(self, **overrides) -> FileServer:
        self._counter += 1
        root = self.tmp_path / f"export{self._counter}"
        root.mkdir(exist_ok=True)
        config = ServerConfig(
            root=str(root),
            owner=overrides.pop("owner", self.owner),
            auth=overrides.pop("auth", self.auth),
            # The CI backend matrix sets TSS_TEST_STORE to re-run the
            # integration tests over each store kind.
            store=overrides.pop("store", os.environ.get("TSS_TEST_STORE", "local")),
            **overrides,
        )
        server = FileServer(config).start()
        self.servers.append(server)
        return server

    def stop_all(self) -> None:
        for server in self.servers:
            server.stop()
        self.servers.clear()


@pytest.fixture()
def server_factory(tmp_path, auth_context, owner_subject):
    factory = ServerFactory(tmp_path, auth_context, owner_subject)
    yield factory
    factory.stop_all()


@pytest.fixture()
def file_server(server_factory) -> FileServer:
    return server_factory.new()


@pytest.fixture()
def pool(credentials):
    p = ClientPool(credentials, timeout=10.0)
    yield p
    p.close()


@pytest.fixture()
def client(file_server, credentials):
    c = ChirpClient(*file_server.address, credentials=credentials, timeout=10.0)
    yield c
    c.close()


@pytest.fixture()
def socket_pair():
    """A connected TCP socket pair on loopback (for wire-level tests)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    client_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    client_sock.connect(listener.getsockname())
    server_sock, _ = listener.accept()
    listener.close()
    yield client_sock, server_sock
    for s in (client_sock, server_sock):
        try:
            s.close()
        except OSError:
            pass


def run_in_thread(fn, *args, **kwargs):
    """Run fn in a thread, returning a handle whose .result() joins."""
    box = {}

    def runner():
        try:
            box["value"] = fn(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - surfaced via result()
            box["error"] = exc

    t = threading.Thread(target=runner, daemon=True)
    t.start()

    class Handle:
        @staticmethod
        def result(timeout=10.0):
            t.join(timeout)
            if t.is_alive():
                raise TimeoutError("thread did not finish")
            if "error" in box:
                raise box["error"]
            return box.get("value")

    return Handle()
