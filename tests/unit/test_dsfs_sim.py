"""Unit tests for the DSFS scalability experiment and GEMS simulation."""

import pytest

from repro.gems.policy import FixedCountPolicy
from repro.sim.dsfs_sim import DsfsExperiment
from repro.sim.gems_sim import GemsSimulation
from repro.sim.params import MB, GB


class TestDsfsExperiment:
    def test_result_fields(self):
        r = DsfsExperiment(
            n_servers=2, n_files=16, file_bytes=MB, duration=5, warmup=2
        ).run()
        assert r.n_servers == 2
        assert r.bytes_delivered > 0
        assert r.throughput_mb_s == r.bytes_delivered / r.duration / MB
        assert 0 <= r.cache_hit_rate <= 1

    def test_deterministic_under_seed(self):
        kwargs = dict(n_servers=2, n_files=16, file_bytes=MB, duration=5, warmup=2)
        a = DsfsExperiment(seed=1, **kwargs).run()
        b = DsfsExperiment(seed=1, **kwargs).run()
        assert a.bytes_delivered == b.bytes_delivered

    def test_more_clients_saturate_harder(self):
        kwargs = dict(n_servers=1, n_files=16, file_bytes=MB, duration=5, warmup=2)
        few = DsfsExperiment(n_clients=1, **kwargs).run()
        many = DsfsExperiment(n_clients=8, **kwargs).run()
        assert many.throughput_mb_s > few.throughput_mb_s

    def test_cached_single_server_near_port_speed(self):
        r = DsfsExperiment(
            n_servers=1, n_files=16, file_bytes=MB, duration=10, warmup=5
        ).run()
        assert 80 <= r.throughput_mb_s <= 105

    def test_uncachable_workload_is_disk_bound(self):
        r = DsfsExperiment(
            n_servers=1, n_files=200, file_bytes=10 * MB, duration=20, warmup=10
        ).run()
        assert r.throughput_mb_s < 25
        assert r.cache_hit_rate < 0.5


class TestGemsSimulation:
    def small(self, **overrides):
        kwargs = dict(
            n_files=20,
            file_bytes=100 * MB,
            budget_bytes=5 * GB,
            n_servers=10,
            failures=((600.0, 2),),
            duration=1800.0,
            audit_interval=60.0,
        )
        kwargs.update(overrides)
        return GemsSimulation(**kwargs)

    def test_fills_budget(self):
        sim = self.small()
        sim.run()
        peak = max(p.stored_bytes for p in sim.timeline)
        assert 0.95 * 5 * GB <= peak <= 5 * GB

    def test_budget_never_exceeded(self):
        sim = self.small()
        sim.run()
        assert all(p.stored_bytes <= 5 * GB for p in sim.timeline)

    def test_failure_dips_and_recovers(self):
        sim = self.small()
        sim.run()
        before = sim.value_at(590)
        dip = sim.min_after(600, window=120)
        after = sim.value_at(1700)
        assert dip < before
        assert after >= 0.95 * before

    def test_audit_lag_is_visible(self):
        """Between a failure and the next audit, the DB still *believes*
        the lost replicas exist -- the paper's discovery delay."""
        # audits land at t=10, 310, 610, 910...; failing at 620 leaves a
        # ~290 s window in which belief and reality diverge
        sim = self.small(audit_interval=300.0, failures=((620.0, 2),))
        sim.run()
        just_after = next(p for p in sim.timeline if p.time == 630.0)
        assert just_after.believed_bytes > just_after.stored_bytes

    def test_replication_rate_paces_growth(self):
        fast = self.small(replication_rate=100 * MB, failures=())
        slow = self.small(replication_rate=5 * MB, failures=())
        fast.run()
        slow.run()
        t_fast = next(p.time for p in fast.timeline if p.stored_bytes >= 4 * GB)
        t_slow = next(
            (p.time for p in slow.timeline if p.stored_bytes >= 4 * GB),
            float("inf"),
        )
        assert t_fast < t_slow

    def test_custom_policy_is_used(self):
        sim = self.small(policy=FixedCountPolicy(2), failures=())
        sim.run()
        # 20 files x 2 copies x 100 MB = 4 GB exactly, under the budget
        assert sim.timeline[-1].stored_bytes == 20 * 2 * 100 * MB

    def test_deterministic(self):
        a = self.small(seed=5)
        b = self.small(seed=5)
        a.run()
        b.run()
        assert [p.stored_bytes for p in a.timeline] == [
            p.stored_bytes for p in b.timeline
        ]

    def test_stored_series_units(self):
        sim = self.small()
        sim.run()
        series = sim.stored_series_gb()
        assert series[0][1] == pytest.approx(2.0)  # 20 x 100 MB ingested
