"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import Environment, Resource


class TestTimeouts:
    def test_clock_advances_to_events(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5, 7.5]

    def test_zero_delay_allowed(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(0)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [0]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_run_until_stops_the_clock(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(10)
            log.append("late")

        env.process(proc())
        env.run(until=5)
        assert log == []
        assert env.now == 5

    def test_timeout_value_delivered(self):
        env = Environment()
        seen = []

        def proc():
            value = yield env.timeout(1, value="payload")
            seen.append(value)

        env.process(proc())
        env.run()
        assert seen == ["payload"]

    def test_ordering_ties_are_fifo(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestProcesses:
    def test_process_join(self):
        env = Environment()
        log = []

        def child():
            yield env.timeout(3)
            return "child-result"

        def parent():
            result = yield env.process(child())
            log.append((env.now, result))

        env.process(parent())
        env.run()
        assert log == [(3, "child-result")]

    def test_yield_from_subroutine(self):
        env = Environment()
        log = []

        def sub():
            yield env.timeout(2)

        def proc():
            yield from sub()
            yield from sub()
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [4]

    def test_yielding_non_event_is_an_error(self):
        env = Environment()

        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(TypeError):
            env.run()

    def test_joining_completed_process(self):
        env = Environment()
        log = []

        def quick():
            return "done"
            yield  # pragma: no cover

        def parent():
            p = env.process(quick())
            yield env.timeout(5)
            result = yield p  # already triggered
            log.append((env.now, result))

        env.process(parent())
        env.run()
        assert log == [(5, "done")]


class TestResource:
    def test_capacity_limits_concurrency(self):
        env = Environment()
        peak = {"now": 0, "max": 0}
        res = Resource(env, capacity=2)

        def worker():
            req = res.request()
            yield req
            peak["now"] += 1
            peak["max"] = max(peak["max"], peak["now"])
            yield env.timeout(1)
            peak["now"] -= 1
            res.release()

        for _ in range(6):
            env.process(worker())
        env.run()
        assert peak["max"] == 2
        assert env.now == 3  # 6 jobs, 2 at a time, 1s each

    def test_fifo_ordering(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(tag):
            req = res.request()
            yield req
            order.append(tag)
            yield env.timeout(1)
            res.release()

        for tag in range(5):
            env.process(worker(tag))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_release_without_request_is_an_error(self):
        env = Environment()
        res = Resource(env, capacity=1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_bad_capacity_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_utilization_accounting(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def worker():
            req = res.request()
            yield req
            yield env.timeout(4)
            res.release()
            yield env.timeout(6)  # idle tail

        env.process(worker())
        env.run()
        assert res.utilization() == pytest.approx(0.4)

    def test_throughput_of_saturated_station(self):
        """A saturated resource serves work at exactly its rate -- the
        property Figures 6-8 rely on (port/backplane saturation)."""
        env = Environment()
        res = Resource(env, capacity=1)
        done = {"jobs": 0}

        def worker():
            while True:
                req = res.request()
                yield req
                yield env.timeout(0.1)
                res.release()
                done["jobs"] += 1

        for _ in range(4):
            env.process(worker())
        env.run(until=100)
        assert done["jobs"] == pytest.approx(1000, abs=5)
