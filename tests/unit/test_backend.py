"""Unit tests for the file server backend: confinement + ACL enforcement.

These drive :class:`LocalBackend` directly (no sockets) so every
permission rule from the paper's section 4 is pinned down precisely.
"""

import os

import pytest

from repro.auth.acl import ACL_FILE_NAME, Acl
from repro.chirp.backend import LocalBackend
from repro.chirp.protocol import OpenFlags
from repro.util import errors as E

OWNER = "unix:owner"
ALICE = "hostname:alice.cse.nd.edu"
BOB = "globus:/O=ND/CN=bob"

R = OpenFlags(read=True)
W = OpenFlags(write=True, create=True)
WX = OpenFlags(write=True, create=True, exclusive=True)


@pytest.fixture()
def backend(tmp_path):
    return LocalBackend(str(tmp_path), OWNER)


def write(backend, subject, path, data):
    fd = backend.open(subject, path, W, 0o644)
    try:
        backend.pwrite(fd, data, 0)
    finally:
        backend.close(fd)


def read(backend, subject, path):
    fd = backend.open(subject, path, R, 0)
    try:
        return backend.pread(fd, 1 << 20, 0)
    finally:
        backend.close(fd)


class TestBasicIO:
    def test_write_then_read(self, backend):
        write(backend, OWNER, "/f.txt", b"hello")
        assert read(backend, OWNER, "/f.txt") == b"hello"

    def test_pread_with_offset(self, backend):
        write(backend, OWNER, "/f", b"0123456789")
        fd = backend.open(OWNER, "/f", R, 0)
        assert backend.pread(fd, 3, 4) == b"456"
        backend.close(fd)

    def test_pwrite_with_offset(self, backend):
        write(backend, OWNER, "/f", b"aaaaaaaa")
        fd = backend.open(OWNER, "/f", OpenFlags(write=True), 0)
        backend.pwrite(fd, b"BB", 3)
        backend.close(fd)
        assert read(backend, OWNER, "/f") == b"aaaBBaaa"

    def test_exclusive_create_conflicts(self, backend):
        fd = backend.open(OWNER, "/x", WX, 0o644)
        backend.close(fd)
        with pytest.raises(E.AlreadyExistsError):
            backend.open(OWNER, "/x", WX, 0o644)

    def test_open_missing_file(self, backend):
        with pytest.raises(E.DoesNotExistError):
            backend.open(OWNER, "/missing", R, 0)

    def test_open_directory_rejected(self, backend):
        backend.mkdir(OWNER, "/d", 0o755)
        with pytest.raises(E.IsADirectoryError_):
            backend.open(OWNER, "/d", R, 0)

    def test_fstat_and_ftruncate(self, backend):
        write(backend, OWNER, "/f", b"0123456789")
        fd = backend.open(OWNER, "/f", OpenFlags(read=True, write=True), 0)
        assert backend.fstat(fd).size == 10
        backend.ftruncate(fd, 4)
        assert backend.fstat(fd).size == 4
        backend.close(fd)

    def test_bad_fd_operations(self, backend):
        with pytest.raises((E.BadFileDescriptorError, E.ChirpError)):
            backend.close(999999)

    def test_negative_pread_rejected(self, backend):
        write(backend, OWNER, "/f", b"x")
        fd = backend.open(OWNER, "/f", R, 0)
        with pytest.raises(E.InvalidRequestError):
            backend.pread(fd, -1, 0)
        backend.close(fd)


class TestNamespace:
    def test_mkdir_listdir_rmdir(self, backend):
        backend.mkdir(OWNER, "/sub", 0o755)
        write(backend, OWNER, "/sub/a", b"1")
        assert backend.getdir(OWNER, "/") == ["sub"]
        assert backend.getdir(OWNER, "/sub") == ["a"]
        backend.unlink(OWNER, "/sub/a")
        backend.rmdir(OWNER, "/sub")
        assert backend.getdir(OWNER, "/") == []

    def test_rmdir_non_empty_fails(self, backend):
        backend.mkdir(OWNER, "/sub", 0o755)
        write(backend, OWNER, "/sub/a", b"1")
        with pytest.raises(E.NotEmptyError):
            backend.rmdir(OWNER, "/sub")

    def test_rmdir_with_only_acl_file_succeeds(self, backend, tmp_path):
        backend.mkdir(OWNER, "/sub", 0o755)
        backend.setacl(OWNER, "/sub", ALICE, "rwl")  # materializes the ACL file
        assert os.path.exists(str(tmp_path / "sub" / ACL_FILE_NAME))
        backend.rmdir(OWNER, "/sub")
        assert backend.getdir(OWNER, "/") == []

    def test_rename(self, backend):
        write(backend, OWNER, "/a", b"1")
        backend.rename(OWNER, "/a", "/b")
        assert read(backend, OWNER, "/b") == b"1"
        with pytest.raises(E.DoesNotExistError):
            backend.stat(OWNER, "/a")

    def test_rename_root_rejected(self, backend):
        with pytest.raises(E.InvalidRequestError):
            backend.rename(OWNER, "/", "/x")

    def test_stat_and_access(self, backend):
        write(backend, OWNER, "/f", b"abcd")
        st = backend.stat(OWNER, "/f")
        assert st.size == 4 and st.is_file
        backend.access(OWNER, "/f", "rl")
        with pytest.raises(E.DoesNotExistError):
            backend.access(OWNER, "/nope", "r")

    def test_truncate_and_utime(self, backend):
        write(backend, OWNER, "/f", b"0123456789")
        backend.truncate(OWNER, "/f", 3)
        assert backend.stat(OWNER, "/f").size == 3
        backend.utime(OWNER, "/f", 1000, 2000)
        st = backend.stat(OWNER, "/f")
        assert (st.atime, st.mtime) == (1000, 2000)

    def test_checksum(self, backend):
        from repro.util.checksum import data_checksum

        write(backend, OWNER, "/f", b"payload")
        assert backend.checksum(OWNER, "/f") == data_checksum(b"payload")

    def test_getdir_hides_acl_file(self, backend):
        write(backend, OWNER, "/visible", b"1")
        names = backend.getdir(OWNER, "/")
        assert ACL_FILE_NAME not in names
        assert "visible" in names

    def test_acl_file_not_directly_accessible(self, backend):
        for op in (
            lambda: backend.open(OWNER, "/" + ACL_FILE_NAME, R, 0),
            lambda: backend.stat(OWNER, "/" + ACL_FILE_NAME),
            lambda: backend.unlink(OWNER, "/" + ACL_FILE_NAME),
            lambda: backend.rename(OWNER, "/" + ACL_FILE_NAME, "/x"),
        ):
            with pytest.raises(E.NotAuthorizedError):
                op()

    def test_path_escape_is_confined(self, backend, tmp_path):
        # '..' clamps at the export root rather than escaping it.
        write(backend, OWNER, "/../../evil", b"x")
        assert os.path.exists(str(tmp_path / "evil"))


class TestAclEnforcement:
    @pytest.fixture()
    def shared(self, tmp_path):
        backend = LocalBackend(str(tmp_path), OWNER)
        backend.setacl(OWNER, "/", "hostname:*.cse.nd.edu", "rwl")
        backend.setacl(OWNER, "/", "globus:/O=ND/*", "rl")
        return backend

    def test_reader_writer_can_write(self, shared):
        write(shared, ALICE, "/a.txt", b"1")
        assert read(shared, ALICE, "/a.txt") == b"1"

    def test_read_only_subject_cannot_write(self, shared):
        with pytest.raises(E.NotAuthorizedError):
            write(shared, BOB, "/b.txt", b"1")

    def test_read_only_subject_can_read_and_list(self, shared):
        write(shared, ALICE, "/a.txt", b"1")
        assert read(shared, BOB, "/a.txt") == b"1"
        assert shared.getdir(BOB, "/") == ["a.txt"]

    def test_stranger_gets_nothing(self, shared):
        with pytest.raises(E.NotAuthorizedError):
            shared.getdir("unix:mallory", "/")
        with pytest.raises(E.NotAuthorizedError):
            read(shared, "unix:mallory", "/a.txt")

    def test_owner_always_retains_access(self, shared):
        """The owner of a file server retains access to all data."""
        write(shared, ALICE, "/a.txt", b"1")
        assert read(shared, OWNER, "/a.txt") == b"1"
        shared.unlink(OWNER, "/a.txt")  # owner may evict any data

    def test_delete_needs_w_or_d(self, shared):
        write(shared, ALICE, "/a.txt", b"1")
        with pytest.raises(E.NotAuthorizedError):
            shared.unlink(BOB, "/a.txt")  # bob holds only rl
        shared.unlink(ALICE, "/a.txt")  # alice holds w

    def test_d_right_alone_allows_delete_but_not_write(self, tmp_path):
        backend = LocalBackend(str(tmp_path), OWNER)
        backend.setacl(OWNER, "/", "unix:janitor", "ld")
        write(backend, OWNER, "/junk", b"1")
        with pytest.raises(E.NotAuthorizedError):
            write(backend, "unix:janitor", "/new", b"1")
        backend.unlink("unix:janitor", "/junk")

    def test_getacl_needs_l(self, shared):
        assert shared.getacl(ALICE, "/").check("globus:/O=ND/*", "r")
        with pytest.raises(E.NotAuthorizedError):
            shared.getacl("unix:mallory", "/")

    def test_setacl_needs_a(self, shared):
        with pytest.raises(E.NotAuthorizedError):
            shared.setacl(ALICE, "/", ALICE, "rwla")

    def test_subdirectory_inherits_acl_dynamically(self, shared):
        shared.mkdir(ALICE, "/sub", 0o755)
        write(shared, ALICE, "/sub/f", b"1")
        assert read(shared, BOB, "/sub/f") == b"1"
        # Tightening the parent later affects the child too (inheritance
        # is dynamic until the child gets its own ACL).
        shared.setacl(OWNER, "/", "globus:/O=ND/*", "none")
        with pytest.raises(E.NotAuthorizedError):
            read(shared, BOB, "/sub/f")

    def test_setacl_copy_on_write_scopes_to_subtree(self, shared):
        shared.mkdir(ALICE, "/sub", 0o755)
        shared.setacl(OWNER, "/sub", "unix:carol", "rwl")
        write(shared, "unix:carol", "/sub/c", b"1")
        with pytest.raises(E.NotAuthorizedError):
            write(shared, "unix:carol", "/c", b"1")  # root unchanged

    def test_rename_needs_rights_on_both_directories(self, tmp_path):
        backend = LocalBackend(str(tmp_path), OWNER)
        backend.mkdir(OWNER, "/src", 0o755)
        backend.mkdir(OWNER, "/dst", 0o755)
        backend.setacl(OWNER, "/src", ALICE, "rwl")
        # alice has no rights on /dst
        write(backend, ALICE, "/src/f", b"1")
        with pytest.raises(E.NotAuthorizedError):
            backend.rename(ALICE, "/src/f", "/dst/f")


class TestReserveRight:
    @pytest.fixture()
    def visitors(self, tmp_path):
        backend = LocalBackend(str(tmp_path), OWNER)
        backend.setacl(OWNER, "/", "hostname:*.cse.nd.edu", "v(rwl)")
        backend.setacl(OWNER, "/", "globus:/O=ND/*", "v(rwla)")
        return backend

    def test_paper_worked_example(self, visitors):
        """mkdir(/backup) by hostname:laptop... yields an ACL with exactly
        'hostname:laptop.cse.nd.edu rwl' (section 4)."""
        subject = "hostname:laptop.cse.nd.edu"
        visitors.mkdir(subject, "/backup", 0o755)
        acl = visitors.getacl(subject, "/backup")
        assert len(acl) == 1
        assert acl.rights_for(subject).flags == frozenset("rwl")

    def test_reserved_dir_is_private(self, visitors):
        visitors.mkdir(ALICE, "/mine", 0o755)
        write(visitors, ALICE, "/mine/f", b"1")
        with pytest.raises(E.NotAuthorizedError):
            read(visitors, "hostname:other.cse.nd.edu", "/mine/f")

    def test_visitor_without_a_cannot_extend_access(self, visitors):
        visitors.mkdir(ALICE, "/mine", 0o755)
        with pytest.raises(E.NotAuthorizedError):
            visitors.setacl(ALICE, "/mine", BOB, "rwl")

    def test_visitor_with_a_can_extend_access(self, visitors):
        visitors.mkdir(BOB, "/bobs", 0o755)
        visitors.setacl(BOB, "/bobs", ALICE, "rl")
        write(visitors, BOB, "/bobs/f", b"1")
        assert read(visitors, ALICE, "/bobs/f") == b"1"

    def test_v_without_w_cannot_create_files_at_top(self, visitors):
        with pytest.raises(E.NotAuthorizedError):
            write(visitors, ALICE, "/toplevel.txt", b"1")

    def test_no_rights_cannot_mkdir(self, visitors):
        with pytest.raises(E.NotAuthorizedError):
            visitors.mkdir("unix:mallory", "/nope", 0o755)

    def test_owner_mkdir_is_not_reserved(self, visitors, tmp_path):
        visitors.mkdir(OWNER, "/ownerdir", 0o755)
        assert not os.path.exists(str(tmp_path / "ownerdir" / ACL_FILE_NAME))


class TestQuota:
    def test_putfile_path_quota(self, tmp_path):
        backend = LocalBackend(str(tmp_path), OWNER, quota_bytes=10_000)
        write(backend, OWNER, "/small", b"x" * 1000)
        with pytest.raises(E.NoSpaceError):
            backend._charge_quota(20_000)
        backend._charge_quota(1_000)  # still room

    def test_statfs_reflects_quota(self, tmp_path):
        backend = LocalBackend(str(tmp_path), OWNER, quota_bytes=10_000)
        write(backend, OWNER, "/f", b"x" * 4_000)
        fs = backend.statfs()
        assert fs.total_bytes == 10_000
        assert fs.free_bytes <= 6_100  # ACL file consumes a few bytes too

    def test_statfs_without_quota_uses_statvfs(self, tmp_path):
        backend = LocalBackend(str(tmp_path), OWNER)
        fs = backend.statfs()
        assert fs.total_bytes > 0
        assert 0 <= fs.free_bytes <= fs.total_bytes

    def test_pwrite_respects_quota(self, tmp_path):
        backend = LocalBackend(str(tmp_path), OWNER, quota_bytes=5_000)
        fd = backend.open(OWNER, "/f", W, 0o644)
        with pytest.raises(E.NoSpaceError):
            backend.pwrite(fd, b"x" * 6_000, 0)
        backend.close(fd)
