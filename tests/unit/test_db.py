"""Unit tests for the metadata database engine and query language."""

import json
import os

import pytest

from repro.db.engine import MetadataDB
from repro.db.query import Condition, Query


class TestQueryLanguage:
    def test_equality(self):
        q = Query.where(kind="traj", run=5)
        assert q.matches({"kind": "traj", "run": 5, "extra": 1})
        assert not q.matches({"kind": "traj", "run": 6})

    def test_empty_query_matches_everything(self):
        assert Query().matches({"anything": 1})

    @pytest.mark.parametrize(
        "op,value,good,bad",
        [
            ("ne", 5, {"x": 6}, {"x": 5}),
            ("lt", 5, {"x": 4}, {"x": 5}),
            ("le", 5, {"x": 5}, {"x": 6}),
            ("gt", 5, {"x": 6}, {"x": 5}),
            ("ge", 5, {"x": 5}, {"x": 4}),
            ("contains", "bc", {"x": "abcd"}, {"x": "xyz"}),
            ("glob", "run*/t.dcd", {"x": "run5/t.dcd"}, {"x": "other"}),
        ],
    )
    def test_operators(self, op, value, good, bad):
        q = Query((Condition("x", op, value),))
        assert q.matches(good)
        assert not q.matches(bad)

    def test_exists(self):
        q = Query((Condition("x", "exists"),))
        assert q.matches({"x": 1})
        assert not q.matches({"y": 1})

    def test_missing_field_fails_comparison(self):
        q = Query((Condition("x", "lt", 5),))
        assert not q.matches({})

    def test_type_mismatch_is_false_not_error(self):
        q = Query((Condition("x", "lt", 5),))
        assert not q.matches({"x": "string"})

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Condition("x", "regex", ".*")

    def test_json_roundtrip(self):
        q = Query.where(a=1).and_("b", "glob", "x*")
        assert Query.from_json_obj(q.to_json_obj()) == q

    def test_and_chaining(self):
        q = Query.where(kind="traj").and_("size", "gt", 100)
        assert q.matches({"kind": "traj", "size": 200})
        assert not q.matches({"kind": "traj", "size": 50})


class TestEngineInMemory:
    def test_insert_get(self):
        db = MetadataDB(None)
        rid = db.insert({"name": "a"})
        assert db.get(rid)["name"] == "a"

    def test_insert_assigns_unique_ids(self):
        db = MetadataDB(None)
        ids = {db.insert({"n": i}) for i in range(100)}
        assert len(ids) == 100

    def test_explicit_id_respected(self):
        db = MetadataDB(None)
        assert db.insert({"id": "custom", "x": 1}) == "custom"
        assert db.get("custom")["x"] == 1

    def test_bad_id_rejected(self):
        db = MetadataDB(None)
        with pytest.raises(ValueError):
            db.insert({"id": 42})

    def test_update_merges(self):
        db = MetadataDB(None)
        rid = db.insert({"a": 1, "b": 2})
        db.update(rid, {"b": 3, "c": 4})
        assert db.get(rid) == {"id": rid, "a": 1, "b": 3, "c": 4}

    def test_update_missing_raises(self):
        db = MetadataDB(None)
        with pytest.raises(KeyError):
            db.update("nope", {})

    def test_delete(self):
        db = MetadataDB(None)
        rid = db.insert({"a": 1})
        assert db.delete(rid)
        assert db.get(rid) is None
        assert not db.delete(rid)

    def test_query_and_count(self):
        db = MetadataDB(None)
        for i in range(10):
            db.insert({"kind": "even" if i % 2 == 0 else "odd", "i": i})
        evens = db.query(Query.where(kind="even"))
        assert sorted(r["i"] for r in evens) == [0, 2, 4, 6, 8]
        assert db.count(Query.where(kind="odd")) == 5

    def test_query_limit(self):
        db = MetadataDB(None)
        for i in range(10):
            db.insert({"k": 1})
        assert len(db.query(Query.where(k=1), limit=3)) == 3

    def test_returned_records_are_copies(self):
        db = MetadataDB(None)
        rid = db.insert({"a": 1})
        rec = db.get(rid)
        rec["a"] = 999
        assert db.get(rid)["a"] == 1

    def test_len(self):
        db = MetadataDB(None)
        db.insert({})
        db.insert({})
        assert len(db) == 2


class TestIndexes:
    def test_indexed_query_equals_scan(self):
        indexed = MetadataDB(None, indexes=("kind",))
        plain = MetadataDB(None)
        rows = [{"id": f"r{i}", "kind": f"k{i % 3}", "i": i} for i in range(30)]
        for row in rows:
            indexed.insert(row)
            plain.insert(row)
        q = Query.where(kind="k1")
        assert sorted(r["id"] for r in indexed.query(q)) == sorted(
            r["id"] for r in plain.query(q)
        )

    def test_index_updated_on_update(self):
        db = MetadataDB(None, indexes=("state",))
        rid = db.insert({"state": "ok"})
        db.update(rid, {"state": "bad"})
        assert db.count(Query.where(state="ok")) == 0
        assert db.count(Query.where(state="bad")) == 1

    def test_index_updated_on_delete(self):
        db = MetadataDB(None, indexes=("state",))
        rid = db.insert({"state": "ok"})
        db.delete(rid)
        assert db.count(Query.where(state="ok")) == 0

    def test_id_shortcut(self):
        db = MetadataDB(None)
        rid = db.insert({"x": 1})
        assert db.query(Query.where(id=rid))[0]["x"] == 1
        assert db.query(Query.where(id="missing")) == []

    def test_unindexable_value_still_queryable(self):
        db = MetadataDB(None, indexes=("tags",))
        db.insert({"tags": ["a", "b"]})  # lists are not indexed
        q = Query((Condition("tags", "contains", "a"),))
        assert db.count(q) == 1


class TestDurability:
    def test_reopen_preserves_records(self, tmp_path):
        path = str(tmp_path / "db")
        with MetadataDB(path) as db:
            rid = db.insert({"name": "persist"})
            db.insert({"name": "other"})
            db.delete(db.insert({"name": "temp"}))
        with MetadataDB(path) as db2:
            assert len(db2) == 2
            assert db2.get(rid)["name"] == "persist"

    def test_update_survives_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        with MetadataDB(path) as db:
            rid = db.insert({"v": 1})
            db.update(rid, {"v": 2})
        with MetadataDB(path) as db2:
            assert db2.get(rid)["v"] == 2

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = str(tmp_path / "db")
        with MetadataDB(path) as db:
            rid = db.insert({"ok": True})
        with open(os.path.join(path, "db.log"), "a") as f:
            f.write('["put", {"id": "torn", "par')  # crash mid-write
        with MetadataDB(path) as db2:
            assert db2.get(rid) is not None
            assert db2.get("torn") is None

    def test_compaction_preserves_state(self, tmp_path):
        path = str(tmp_path / "db")
        with MetadataDB(path, indexes=("k",)) as db:
            rid = db.insert({"k": "keep"})
            for _ in range(3000):  # churn to trigger compaction
                tmp = db.insert({"k": "churn"})
                db.delete(tmp)
            log_size = os.path.getsize(os.path.join(path, "db.log"))
            # compaction must have collapsed ~6000 ops to ~1 record
            assert log_size < 100_000
        with MetadataDB(path, indexes=("k",)) as db2:
            assert db2.get(rid)["k"] == "keep"
            assert len(db2) == 1

    def test_log_is_json_lines(self, tmp_path):
        path = str(tmp_path / "db")
        with MetadataDB(path) as db:
            db.insert({"a": 1})
        with open(os.path.join(path, "db.log")) as f:
            for line in f:
                op, payload = json.loads(line)
                assert op in ("put", "del")
