"""Unit tests for mountlists (private namespaces)."""

import pytest

from repro.adapter.mountlist import Mountlist


class TestMountlist:
    def test_paper_example(self):
        """The exact mountlist printed in section 6 of the paper."""
        ml = Mountlist.from_text(
            "/usr/local /cfs/shared.cse.nd.edu:9094/software\n"
            "/data /dsfs/archive.cse.nd.edu:9094@run5/data\n"
        )
        assert (
            ml.translate("/usr/local/bin/sp5")
            == "/cfs/shared.cse.nd.edu:9094/software/bin/sp5"
        )
        assert ml.translate("/data/f") == "/dsfs/archive.cse.nd.edu:9094@run5/data/f"

    def test_exact_prefix_match(self):
        ml = Mountlist()
        ml.add("/data", "/cfs/h:1/data")
        assert ml.translate("/data") == "/cfs/h:1/data"

    def test_component_boundary_respected(self):
        ml = Mountlist()
        ml.add("/data", "/cfs/h:1/data")
        # /database is NOT under /data
        assert ml.translate("/database/x") == "/database/x"

    def test_longest_prefix_wins(self):
        ml = Mountlist()
        ml.add("/a", "/cfs/h:1/a")
        ml.add("/a/b", "/cfs/h:2/b")
        assert ml.translate("/a/b/f") == "/cfs/h:2/b/f"
        assert ml.translate("/a/c/f") == "/cfs/h:1/a/c/f"

    def test_untranslated_path_unchanged(self):
        ml = Mountlist()
        ml.add("/data", "/cfs/h:1/d")
        assert ml.translate("/etc/passwd") == "/etc/passwd"

    def test_chained_rules(self):
        ml = Mountlist()
        ml.add("/alias", "/data")
        ml.add("/data", "/cfs/h:1/d")
        assert ml.translate("/alias/f") == "/cfs/h:1/d/f"

    def test_loop_detected(self):
        ml = Mountlist()
        ml.add("/a", "/b")
        ml.add("/b", "/a")
        with pytest.raises(ValueError):
            ml.translate("/a/x")

    def test_cannot_remap_root(self):
        with pytest.raises(ValueError):
            Mountlist().add("/", "/cfs/h:1")

    def test_text_roundtrip(self):
        ml = Mountlist.from_text("/a /cfs/h:1/a\n/b /cfs/h:2/b\n")
        again = Mountlist.from_text(ml.to_text())
        assert again.translate("/a/x") == ml.translate("/a/x")

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            Mountlist.from_text("/only-one-column\n")

    def test_comments_ignored(self):
        ml = Mountlist.from_text("# private namespace\n/a /b\n")
        assert len(ml) == 1

    def test_normalization_of_logical_names(self):
        ml = Mountlist()
        ml.add("/a/", "/cfs/h:1/a")
        assert ml.translate("/a/f") == "/cfs/h:1/a/f"
