"""Backend-conformance battery: one contract, three storage resources.

Every test in ``TestStoreConformance`` runs against the local, memory
and CAS stores through the same :class:`~repro.chirp.backend.Backend`
the server uses -- the executable form of the paper's claim that the
abstraction is independent of the resource serving it.  Each store is
also exercised wrapped in the disk-fault injector with an empty fault
plan (``faulty+<kind>``), pinning down that the decorator is fully
transparent when no fault fires.  CAS-specific invariants (dedup
refcounts, immutability, GC, scrub) follow in their own class.
"""

from __future__ import annotations

import getpass
import os

import pytest

from repro.chirp.backend import Backend
from repro.chirp.protocol import OpenFlags
from repro.store import make_store
from repro.store.cas import CasStore
from repro.util import errors as E
from repro.util.checksum import data_checksum

OWNER = f"unix:{getpass.getuser()}"

STORE_KINDS = ("local", "memory", "cas")
# The same battery over FaultyStore(plan with no faults) wrapping each
# store: the injector must be invisible until a fault is scripted.
ALL_KINDS = STORE_KINDS + tuple("faulty+" + kind for kind in STORE_KINDS)


def _make_backend(kind: str, tmp_path, **kwargs) -> Backend:
    root = tmp_path / f"store-{kind}"
    root.mkdir(exist_ok=True)
    return Backend(make_store(kind, str(root)), OWNER, **kwargs)


@pytest.fixture(params=ALL_KINDS)
def backend(request, tmp_path) -> Backend:
    return _make_backend(request.param, tmp_path)


def write_file(backend, path, data, mode=0o644):
    flags = OpenFlags(write=True, create=True, truncate=True)
    h = backend.open(OWNER, path, flags, mode)
    backend.pwrite(h, data, 0)
    backend.close(h)


def read_file(backend, path):
    h = backend.open(OWNER, path, OpenFlags(read=True), 0)
    out = b""
    while True:
        chunk = backend.pread(h, 1 << 16, len(out))
        if not chunk:
            break
        out += chunk
    backend.close(h)
    return out


class TestStoreConformance:
    def test_write_read_roundtrip(self, backend):
        write_file(backend, "/f.txt", b"hello store")
        assert read_file(backend, "/f.txt") == b"hello store"

    def test_pwrite_at_offset_into_existing_file(self, backend):
        write_file(backend, "/f", b"aaaaaaaa")
        h = backend.open(OWNER, "/f", OpenFlags(write=True), 0o644)
        backend.pwrite(h, b"BB", 3)
        backend.close(h)
        assert read_file(backend, "/f") == b"aaaBBaaa"

    def test_append_flag_writes_at_end(self, backend):
        write_file(backend, "/log", b"one")
        h = backend.open(OWNER, "/log", OpenFlags(write=True, append=True), 0o644)
        backend.pwrite(h, b"two", 0)
        backend.close(h)
        assert read_file(backend, "/log") == b"onetwo"

    def test_zero_length_write_past_eof_is_a_noop(self, backend):
        # POSIX: pwrite(fd, "", 0) never extends the file, at any offset.
        write_file(backend, "/f", b"")
        h = backend.open(OWNER, "/f", OpenFlags(write=True), 0o644)
        assert backend.pwrite(h, b"", 5) == 0
        backend.close(h)
        assert backend.stat(OWNER, "/f").size == 0
        assert read_file(backend, "/f") == b""

    def test_sparse_write_zero_fills(self, backend):
        h = backend.open(
            OWNER, "/sparse", OpenFlags(write=True, create=True), 0o644
        )
        backend.pwrite(h, b"x", 4)
        backend.close(h)
        assert read_file(backend, "/sparse") == b"\x00\x00\x00\x00x"

    def test_exclusive_create_refuses_existing(self, backend):
        write_file(backend, "/f", b"x")
        flags = OpenFlags(write=True, create=True, exclusive=True)
        with pytest.raises(E.AlreadyExistsError):
            backend.open(OWNER, "/f", flags, 0o644)

    def test_truncate_flag_wipes_content(self, backend):
        write_file(backend, "/f", b"long content here")
        h = backend.open(
            OWNER, "/f", OpenFlags(write=True, truncate=True), 0o644
        )
        backend.close(h)
        assert read_file(backend, "/f") == b""

    def test_open_missing_without_create_fails(self, backend):
        with pytest.raises(E.DoesNotExistError):
            backend.open(OWNER, "/nope", OpenFlags(read=True), 0)
        with pytest.raises(E.DoesNotExistError):
            backend.open(OWNER, "/nope", OpenFlags(write=True), 0o644)

    def test_open_directory_fails(self, backend):
        backend.mkdir(OWNER, "/d", 0o755)
        with pytest.raises(E.IsADirectoryError_):
            backend.open(OWNER, "/d", OpenFlags(read=True), 0)

    def test_ftruncate_shrink_and_extend(self, backend):
        write_file(backend, "/f", b"0123456789")
        h = backend.open(
            OWNER, "/f", OpenFlags(read=True, write=True), 0o644
        )
        backend.ftruncate(h, 4)
        assert backend.fstat(h).size == 4
        backend.ftruncate(h, 6)
        backend.close(h)
        assert read_file(backend, "/f") == b"0123\x00\x00"

    def test_fstat_reports_size(self, backend):
        write_file(backend, "/f", b"12345")
        h = backend.open(OWNER, "/f", OpenFlags(read=True), 0)
        assert backend.fstat(h).size == 5
        backend.close(h)

    def test_bad_handle_operations_raise(self, backend):
        with pytest.raises((E.BadFileDescriptorError, E.ChirpError)):
            backend.close(999999)
        with pytest.raises((E.BadFileDescriptorError, E.ChirpError)):
            backend.pread(999999, 10, 0)

    def test_stat_file_and_directory(self, backend):
        write_file(backend, "/f", b"abc")
        backend.mkdir(OWNER, "/d", 0o755)
        assert backend.stat(OWNER, "/f").size == 3
        assert not backend.stat(OWNER, "/f").is_dir
        assert backend.stat(OWNER, "/d").is_dir
        with pytest.raises(E.DoesNotExistError):
            backend.stat(OWNER, "/missing")

    def test_unlink(self, backend):
        write_file(backend, "/f", b"x")
        backend.unlink(OWNER, "/f")
        with pytest.raises(E.DoesNotExistError):
            backend.stat(OWNER, "/f")
        with pytest.raises(E.DoesNotExistError):
            backend.unlink(OWNER, "/f")

    def test_rename_and_clobber(self, backend):
        write_file(backend, "/a", b"aaa")
        write_file(backend, "/b", b"bbb")
        backend.rename(OWNER, "/a", "/b")
        assert read_file(backend, "/b") == b"aaa"
        with pytest.raises(E.DoesNotExistError):
            backend.stat(OWNER, "/a")

    def test_rename_into_subdirectory(self, backend):
        backend.mkdir(OWNER, "/d", 0o755)
        write_file(backend, "/f", b"move me")
        backend.rename(OWNER, "/f", "/d/f")
        assert read_file(backend, "/d/f") == b"move me"

    def test_mkdir_rmdir(self, backend):
        backend.mkdir(OWNER, "/d", 0o755)
        with pytest.raises(E.AlreadyExistsError):
            backend.mkdir(OWNER, "/d", 0o755)
        backend.rmdir(OWNER, "/d")
        with pytest.raises(E.DoesNotExistError):
            backend.stat(OWNER, "/d")

    def test_rmdir_refuses_nonempty(self, backend):
        backend.mkdir(OWNER, "/d", 0o755)
        write_file(backend, "/d/f", b"x")
        with pytest.raises(E.NotEmptyError):
            backend.rmdir(OWNER, "/d")

    def test_getdir_sorted_and_hides_acl(self, backend):
        backend.mkdir(OWNER, "/d", 0o755)
        write_file(backend, "/d/zeta", b"1")
        write_file(backend, "/d/alpha", b"2")
        backend.setacl(OWNER, "/d", "unix:visitor", "rl")
        assert backend.getdir(OWNER, "/d") == ["alpha", "zeta"]

    def test_truncate_by_path(self, backend):
        write_file(backend, "/f", b"0123456789")
        backend.truncate(OWNER, "/f", 3)
        assert read_file(backend, "/f") == b"012"
        backend.truncate(OWNER, "/f", 5)
        assert read_file(backend, "/f") == b"012\x00\x00"

    def test_utime_roundtrip(self, backend):
        write_file(backend, "/f", b"x")
        backend.utime(OWNER, "/f", 1_000_000, 2_000_000)
        st = backend.stat(OWNER, "/f")
        assert st.mtime == 2_000_000

    def test_checksum_matches_content(self, backend):
        payload = b"checksum me" * 100
        write_file(backend, "/f", payload)
        assert backend.checksum(OWNER, "/f") == data_checksum(payload)

    def test_acl_files_are_hidden_and_forbidden(self, backend):
        with pytest.raises(E.NotAuthorizedError):
            backend.open(OWNER, "/.__acl", OpenFlags(read=True), 0)
        with pytest.raises(E.NotAuthorizedError):
            backend.unlink(OWNER, "/.__acl")

    def test_statfs_reports_capacity(self, backend):
        fs = backend.statfs()
        assert fs.total_bytes > 0


class TestQuotaConformance:
    @pytest.fixture(params=ALL_KINDS)
    def quota_backend(self, request, tmp_path) -> Backend:
        return _make_backend(request.param, tmp_path, quota_bytes=10_000)

    def test_pwrite_over_quota_fails(self, quota_backend):
        h = quota_backend.open(
            OWNER, "/big", OpenFlags(write=True, create=True), 0o644
        )
        with pytest.raises(E.NoSpaceError):
            quota_backend.pwrite(h, b"x" * 11_000, 0)
        quota_backend.close(h)

    def test_quota_charge_reflects_usage(self, quota_backend):
        write_file(quota_backend, "/f", b"x" * 4_000)
        quota_backend._charge_quota(1_000)  # still fits
        with pytest.raises(E.NoSpaceError):
            quota_backend._charge_quota(7_000)

    def test_statfs_tracks_quota_usage(self, quota_backend):
        write_file(quota_backend, "/f", b"x" * 4_000)
        fs = quota_backend.statfs()
        assert fs.total_bytes == 10_000
        assert fs.free_bytes <= 6_100

    def test_unlink_releases_quota(self, quota_backend):
        write_file(quota_backend, "/f", b"x" * 9_000)
        with pytest.raises(E.NoSpaceError):
            quota_backend._charge_quota(5_000)
        quota_backend.unlink(OWNER, "/f")
        quota_backend._charge_quota(5_000)  # freed


class TestCasInvariants:
    @pytest.fixture()
    def store(self, tmp_path) -> CasStore:
        root = tmp_path / "cas"
        root.mkdir()
        return CasStore(str(root))

    def test_dedup_same_content_one_blob_refcount_two(self, store):
        store.write_blob("/a", b"shared content")
        store.write_blob("/b", b"shared content")
        key = store.key_of("/a")
        assert store.key_of("/b") == key
        assert store.refcount(key) == 2
        # exactly one object backs both paths (plus the empty blob that
        # eager file materialization creates and GC then removes)
        assert store.object_count() == 1

    def test_unreferenced_blobs_are_garbage_collected(self, store):
        store.write_blob("/a", b"doomed")
        store.write_blob("/b", b"doomed")
        key = store.key_of("/a")
        store.unlink("/a")
        assert store.refcount(key) == 1
        assert store.lookup_key(key)
        store.unlink("/b")
        assert store.refcount(key) == 0
        assert not store.lookup_key(key)
        assert store.object_count() == 0

    def test_objects_are_immutable(self, store):
        store.write_blob("/a", b"version one")
        store.write_blob("/b", b"version one")
        key = store.key_of("/a")
        obj = store._object_path(key)
        # sealed objects are read-only on disk
        assert not os.access(obj, os.W_OK) or os.getuid() == 0
        assert (os.stat(obj).st_mode & 0o222) == 0
        # rewriting one path must not disturb the other's content
        store.write_blob("/a", b"version two")
        assert store.read_blob("/b") == b"version one"
        assert store.refcount(key) == 1

    def test_rewrite_releases_old_key(self, store):
        store.write_blob("/a", b"old")
        old_key = store.key_of("/a")
        store.write_blob("/a", b"new")
        assert store.refcount(old_key) == 0
        assert not store.lookup_key(old_key)

    def test_rename_clobber_releases_target_key(self, store):
        store.write_blob("/a", b"kept")
        store.write_blob("/b", b"clobbered")
        doomed = store.key_of("/b")
        store.rename("/a", "/b")
        assert store.refcount(doomed) == 0
        assert store.read_blob("/b") == b"kept"

    def test_link_key_copy_by_reference(self, store):
        store.write_blob("/orig", b"linked content")
        key = store.key_of("/orig")
        size = store.link_key("/copy", key)
        assert size == len(b"linked content")
        assert store.read_blob("/copy") == b"linked content"
        assert store.refcount(key) == 2
        assert store.object_count() == 1

    def test_link_key_missing_key_raises(self, store):
        with pytest.raises(E.DoesNotExistError):
            store.link_key("/copy", "0" * 40)

    def test_lookup_and_keyof(self, store):
        assert not store.lookup_key(data_checksum(b"payload"))
        store.write_blob("/f", b"payload")
        key = data_checksum(b"payload")
        assert store.lookup_key(key)
        assert store.key_of("/f") == key
        assert store.checksum("/f") == key

    def test_non_cas_stores_refuse_cas_surface(self, tmp_path):
        for kind in ("local", "memory"):
            s = make_store(kind, str(tmp_path))
            with pytest.raises(E.InvalidRequestError):
                s.lookup_key("0" * 40)
            with pytest.raises(E.InvalidRequestError):
                s.link_key("/x", "0" * 40)
            with pytest.raises(E.InvalidRequestError):
                s.key_of("/x")

    def test_refcounts_rebuilt_on_restart(self, store):
        store.write_blob("/a", b"persisted")
        store.write_blob("/b", b"persisted")
        key = store.key_of("/a")
        reopened = CasStore(store.root)
        assert reopened.refcount(key) == 2
        assert reopened.used_bytes() == len(b"persisted")

    def test_scrub_detects_and_quarantines_bitrot(self, store):
        store.write_blob("/f", b"precious data")
        key = store.key_of("/f")
        obj = store._object_path(key)
        os.chmod(obj, 0o644)
        with open(obj, "wb") as fh:
            fh.write(b"bit rot")
        report = store.scrub()
        assert report["corrupt"] == [key]
        report = store.scrub(quarantine=True)
        assert report["quarantined"] == [key]
        assert not os.path.exists(obj)
        assert os.path.exists(os.path.join(store.quarantine_root, key))

    def test_scrub_clean_store(self, store):
        store.write_blob("/f", b"fine")
        report = store.scrub()
        assert report["corrupt"] == []
        assert report["ok"] == report["objects"] == 1

    def test_counters_snapshot(self, store):
        store.write_blob("/a", b"counted")
        store.write_blob("/b", b"counted")
        snap = store.snapshot()
        assert snap["kind"] == "cas"
        assert snap["dedup_hits"] >= 1
        assert snap["objects_ingested"] >= 1
        assert snap["used_bytes"] == len(b"counted")
