"""Unit tests for stubs, placement policies, and the retry policy."""

import pytest

from repro.core.placement import (
    MostFreePlacement,
    RandomPlacement,
    RoundRobinPlacement,
)
from repro.core.retry import RetryPolicy
from repro.core.stubs import Stub, unique_data_name
from repro.util.clock import ManualClock
from repro.util.errors import DisconnectedError, InvalidRequestError, StaleHandleError


class TestStub:
    def test_roundtrip(self):
        stub = Stub("host5", 9094, "/mydpfs/file596")
        assert Stub.decode(stub.encode()) == stub

    def test_encode_is_one_json_line(self):
        raw = Stub("h", 1, "/p").encode()
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1

    def test_not_json_rejected(self):
        with pytest.raises(InvalidRequestError):
            Stub.decode(b"\x00\x01binary garbage")

    def test_wrong_document_rejected(self):
        with pytest.raises(InvalidRequestError):
            Stub.decode(b'{"some": "other json"}')

    def test_missing_field_rejected(self):
        with pytest.raises(InvalidRequestError):
            Stub.decode(b'{"tss": "stub", "host": "h"}')

    def test_is_stub(self):
        assert Stub.is_stub(Stub("h", 1, "/p").encode())
        assert not Stub.is_stub(b"plain text")

    def test_endpoint(self):
        assert Stub("h", 9094, "/p").endpoint == ("h", 9094)


class TestUniqueDataName:
    def test_names_are_unique(self):
        names = {unique_data_name() for _ in range(500)}
        assert len(names) == 500

    def test_names_are_path_safe(self):
        name = unique_data_name()
        assert "/" not in name
        assert " " not in name
        assert name.startswith("file-")


class TestRoundRobin:
    def test_cycles_through_all(self):
        policy = RoundRobinPlacement(seed=1)
        servers = [("a", 1), ("b", 2), ("c", 3)]
        picks = [policy.choose(servers) for _ in range(9)]
        assert all(picks.count(s) == 3 for s in servers)

    def test_respects_exclusion(self):
        policy = RoundRobinPlacement(seed=1)
        servers = [("a", 1), ("b", 2)]
        picks = {policy.choose(servers, frozenset({("a", 1)})) for _ in range(10)}
        assert picks == {("b", 2)}

    def test_all_excluded_raises(self):
        policy = RoundRobinPlacement()
        with pytest.raises(LookupError):
            policy.choose([("a", 1)], frozenset({("a", 1)}))


class TestRandom:
    def test_deterministic_under_seed(self):
        servers = [("a", 1), ("b", 2), ("c", 3)]
        a = [RandomPlacement(seed=7).choose(servers) for _ in range(5)]
        b = [RandomPlacement(seed=7).choose(servers) for _ in range(5)]
        assert a == b

    def test_eventually_covers_all(self):
        policy = RandomPlacement(seed=3)
        servers = [("a", 1), ("b", 2), ("c", 3)]
        picks = {policy.choose(servers) for _ in range(100)}
        assert picks == set(servers)


class TestMostFree:
    class FakePool:
        """Stands in for ClientPool: statfs per endpoint, or down."""

        def __init__(self, free):
            self.free = free

        def try_get(self, host, port):
            if self.free.get((host, port)) is None:
                return None
            pool = self

            class C:
                def statfs(self):
                    from repro.chirp.protocol import StatFs

                    return StatFs(10**9, pool.free[(host, port)])

            return C()

    def test_picks_roomiest(self):
        pool = self.FakePool({("a", 1): 100, ("b", 2): 900, ("c", 3): 500})
        policy = MostFreePlacement(pool)
        assert policy.choose([("a", 1), ("b", 2), ("c", 3)]) == ("b", 2)

    def test_skips_unreachable(self):
        pool = self.FakePool({("a", 1): 100, ("b", 2): None})
        policy = MostFreePlacement(pool)
        assert policy.choose([("a", 1), ("b", 2)]) == ("a", 1)

    def test_all_unreachable_raises(self):
        pool = self.FakePool({("a", 1): None})
        policy = MostFreePlacement(pool)
        with pytest.raises(LookupError):
            policy.choose([("a", 1)])


class TestRetryPolicy:
    def test_delays_are_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=6, initial_delay=1.0, multiplier=2.0, max_delay=5.0
        )
        assert list(policy.delays()) == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_success_first_try_never_recovers(self):
        calls = {"recover": 0}
        policy = RetryPolicy(clock=ManualClock())
        result = policy.run(lambda: 42, lambda: calls.__setitem__("recover", 1))
        assert result == 42
        assert calls["recover"] == 0

    def test_recovers_after_transient_disconnect(self):
        clock = ManualClock()
        policy = RetryPolicy(max_attempts=3, initial_delay=0.1, clock=clock)
        state = {"fails": 2, "recovered": 0}

        def op():
            if state["fails"] > 0:
                state["fails"] -= 1
                raise DisconnectedError("down")
            return "ok"

        assert policy.run(op, lambda: state.__setitem__("recovered", state["recovered"] + 1)) == "ok"
        assert state["recovered"] == 2
        assert clock.now() == pytest.approx(0.1 + 0.2)

    def test_attempts_exhausted_raises_disconnected(self):
        policy = RetryPolicy(max_attempts=3, initial_delay=0.01, clock=ManualClock())

        def op():
            raise DisconnectedError("always down")

        with pytest.raises(DisconnectedError):
            policy.run(op, lambda: None)

    def test_max_attempts_one_disables_retry(self):
        clock = ManualClock()
        policy = RetryPolicy(max_attempts=1, clock=clock)

        def op():
            raise DisconnectedError("down")

        with pytest.raises(DisconnectedError):
            policy.run(op, lambda: None)
        assert clock.now() == 0  # never slept

    def test_recover_failure_burns_attempts(self):
        policy = RetryPolicy(max_attempts=3, initial_delay=0.01, clock=ManualClock())
        recover_calls = {"n": 0}

        def op():
            raise DisconnectedError("down")

        def recover():
            recover_calls["n"] += 1
            raise DisconnectedError("still down")

        with pytest.raises(DisconnectedError):
            policy.run(op, recover)
        assert recover_calls["n"] >= 1

    def test_stale_handle_from_recover_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5, initial_delay=0.01, clock=ManualClock())

        def op():
            raise DisconnectedError("down")

        def recover():
            raise StaleHandleError("file replaced")

        with pytest.raises(StaleHandleError):
            policy.run(op, recover)

    def test_non_disconnect_errors_pass_through(self):
        policy = RetryPolicy(clock=ManualClock())

        def op():
            raise ValueError("unrelated")

        with pytest.raises(ValueError):
            policy.run(op, lambda: None)
