"""Circuit-breaker state machine: closed -> open -> half-open."""

from __future__ import annotations

import threading

import pytest

from repro.transport.health import (
    BreakerPolicy,
    EndpointHealth,
    HealthRegistry,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from repro.transport.metrics import MetricsRegistry
from repro.util.clock import ManualClock


def make_health(threshold=3, cooldown=5.0):
    clock = ManualClock()
    health = EndpointHealth(
        "s1:9094", BreakerPolicy(failure_threshold=threshold, cooldown=cooldown), clock
    )
    return health, clock


class TestBreakerPolicy:
    def test_defaults(self):
        policy = BreakerPolicy()
        assert policy.failure_threshold >= 1
        assert policy.cooldown >= 0

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)

    def test_rejects_negative_cooldown(self):
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown=-1)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        health, _ = make_health()
        assert health.state == STATE_CLOSED
        assert health.allow()
        assert not health.is_open

    def test_opens_after_threshold_consecutive_failures(self):
        health, _ = make_health(threshold=3)
        health.record_failure()
        health.record_failure()
        assert health.state == STATE_CLOSED
        health.record_failure()
        assert health.state == STATE_OPEN
        assert health.is_open
        assert not health.allow()

    def test_success_resets_consecutive_count(self):
        health, _ = make_health(threshold=3)
        health.record_failure()
        health.record_failure()
        health.record_success()
        health.record_failure()
        health.record_failure()
        assert health.state == STATE_CLOSED

    def test_half_open_after_cooldown(self):
        health, clock = make_health(threshold=1, cooldown=10.0)
        health.record_failure()
        assert health.state == STATE_OPEN
        clock.advance(9.9)
        assert health.state == STATE_OPEN
        clock.advance(0.2)
        assert health.state == STATE_HALF_OPEN
        assert not health.is_open

    def test_half_open_admits_exactly_one_probe(self):
        health, clock = make_health(threshold=1, cooldown=1.0)
        health.record_failure()
        clock.advance(1.5)
        assert health.allow()  # the single probe
        assert not health.allow()  # second caller refused
        assert not health.allow()

    def test_probe_success_closes(self):
        health, clock = make_health(threshold=1, cooldown=1.0)
        health.record_failure()
        clock.advance(1.5)
        assert health.allow()
        health.record_success()
        assert health.state == STATE_CLOSED
        assert health.allow() and health.allow()  # back to normal

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        health, clock = make_health(threshold=1, cooldown=1.0)
        health.record_failure()
        clock.advance(1.5)
        assert health.allow()
        health.record_failure()
        assert health.state == STATE_OPEN
        assert not health.allow()
        clock.advance(0.5)  # cooldown restarted at the probe failure
        assert health.state == STATE_OPEN
        clock.advance(0.6)
        assert health.allow()

    def test_snapshot_counts(self):
        health, clock = make_health(threshold=2, cooldown=1.0)
        health.record_success()
        health.record_failure()
        health.record_failure()
        snap = health.snapshot()
        assert snap["state"] == STATE_OPEN
        assert snap["failures"] == 2
        assert snap["successes"] == 1
        assert snap["consecutive_failures"] == 2
        assert snap["opened_count"] == 1
        clock.advance(1.5)
        health.allow()
        health.record_failure()
        assert health.snapshot()["opened_count"] == 2

    def test_allow_is_single_probe_under_contention(self):
        health, clock = make_health(threshold=1, cooldown=1.0)
        health.record_failure()
        clock.advance(1.5)
        grants = []
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait()
            if health.allow():
                grants.append(1)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(grants) == 1


class TestHealthRegistry:
    def test_same_endpoint_same_breaker(self):
        registry = HealthRegistry(clock=ManualClock())
        a = registry.for_endpoint("host", 9094)
        b = registry.for_endpoint("host", 9094)
        assert a is b
        assert registry.for_endpoint("host", 9095) is not a

    def test_state_of_does_not_create(self):
        registry = HealthRegistry(clock=ManualClock())
        assert registry.state_of("ghost", 1) == STATE_CLOSED
        assert registry.snapshot() == {}

    def test_snapshot_keyed_by_label(self):
        registry = HealthRegistry(
            BreakerPolicy(failure_threshold=1, cooldown=9), ManualClock()
        )
        registry.for_endpoint("b", 2).record_failure()
        registry.for_endpoint("a", 1).record_success()
        snap = registry.snapshot()
        assert list(snap) == ["a:1", "b:2"]
        assert snap["b:2"]["state"] == STATE_OPEN
        assert snap["a:1"]["state"] == STATE_CLOSED


class TestMetricsIntegration:
    def test_snapshot_carries_health_section(self):
        metrics = MetricsRegistry()
        registry = HealthRegistry(
            BreakerPolicy(failure_threshold=1, cooldown=9), ManualClock()
        )
        metrics.attach_health(registry)
        registry.for_endpoint("dead", 1).record_failure()
        snap = metrics.snapshot()
        assert snap["health"]["dead:1"]["state"] == STATE_OPEN

    def test_health_section_empty_without_attachment(self):
        assert MetricsRegistry().snapshot()["health"] == {}

    def test_attached_registry_held_weakly(self):
        import gc

        metrics = MetricsRegistry()
        registry = HealthRegistry()
        registry.for_endpoint("x", 1)
        metrics.attach_health(registry)
        del registry
        gc.collect()
        assert metrics.snapshot()["health"] == {}
