"""Unit tests for the error model (wire status <-> exceptions <-> errno)."""

import errno

import pytest

from repro.util import errors as E


class TestStatusFromException:
    def test_chirp_error_maps_to_its_status(self):
        assert E.status_from_exception(E.DoesNotExistError("x")) == E.StatusCode.DOESNT_EXIST

    @pytest.mark.parametrize(
        "num,expected",
        [
            (errno.ENOENT, E.StatusCode.DOESNT_EXIST),
            (errno.EEXIST, E.StatusCode.ALREADY_EXISTS),
            (errno.EACCES, E.StatusCode.NOT_AUTHORIZED),
            (errno.EISDIR, E.StatusCode.IS_DIR),
            (errno.ENOTEMPTY, E.StatusCode.NOT_EMPTY),
            (errno.ENOSPC, E.StatusCode.NO_SPACE),
            (errno.ESTALE, E.StatusCode.STALE),
        ],
    )
    def test_oserror_mapping(self, num, expected):
        assert E.status_from_exception(OSError(num, "x")) == expected

    def test_unknown_errno_maps_to_unknown(self):
        assert E.status_from_exception(OSError(12345, "x")) == E.StatusCode.UNKNOWN

    def test_non_os_exception_maps_to_unknown(self):
        assert E.status_from_exception(RuntimeError("boom")) == E.StatusCode.UNKNOWN


class TestErrorFromStatus:
    def test_every_status_code_constructs_an_error(self):
        for code in E.StatusCode:
            err = E.error_from_status(int(code), "msg")
            assert isinstance(err, E.ChirpError)
            assert err.status == code

    def test_unknown_wire_status_is_tolerated(self):
        err = E.error_from_status(-9999, "weird")
        assert isinstance(err, E.UnknownError)

    def test_message_is_preserved(self):
        err = E.error_from_status(int(E.StatusCode.DOESNT_EXIST), "/a/b missing")
        assert "/a/b missing" in str(err)

    def test_roundtrip_status_exception_status(self):
        for code in E.StatusCode:
            err = E.error_from_status(int(code))
            assert E.status_from_exception(err) == code


class TestOsErrorFromStatus:
    @pytest.mark.parametrize(
        "code,num",
        [
            (E.StatusCode.DOESNT_EXIST, errno.ENOENT),
            (E.StatusCode.NOT_AUTHORIZED, errno.EACCES),
            (E.StatusCode.ALREADY_EXISTS, errno.EEXIST),
            (E.StatusCode.STALE, errno.ESTALE),
            (E.StatusCode.DISCONNECTED, errno.EIO),
            (E.StatusCode.IS_DIR, errno.EISDIR),
        ],
    )
    def test_errno_mapping(self, code, num):
        err = E.oserror_from_status(int(code), "m", "/p")
        assert err.errno == num
        assert err.filename == "/p"

    def test_enoent_produces_file_not_found(self):
        err = E.oserror_from_status(int(E.StatusCode.DOESNT_EXIST))
        assert isinstance(err, FileNotFoundError)

    def test_eexist_produces_file_exists(self):
        err = E.oserror_from_status(int(E.StatusCode.ALREADY_EXISTS))
        assert isinstance(err, FileExistsError)

    def test_eacces_produces_permission_error(self):
        err = E.oserror_from_status(int(E.StatusCode.NOT_AUTHORIZED))
        assert isinstance(err, PermissionError)
