"""Unit tests for subject names and pattern matching."""

import pytest

from repro.auth.subjects import (
    make_subject,
    parse_subject,
    subject_matches,
    validate_subject,
)


class TestMakeParse:
    def test_roundtrip(self):
        s = make_subject("unix", "dthain")
        assert parse_subject(s) == ("unix", "dthain")

    def test_globus_dn_with_colons_ok(self):
        s = make_subject("globus", "/O=ND/CN=a:b")
        method, name = parse_subject(s)
        assert method == "globus"
        assert name == "/O=ND/CN=a:b"

    @pytest.mark.parametrize("bad", ["", "nomethod", ":noname", "method:"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_subject(bad)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            make_subject("unix", "")

    def test_colon_in_method_rejected(self):
        with pytest.raises(ValueError):
            make_subject("a:b", "x")

    def test_validate_rejects_whitespace(self):
        with pytest.raises(ValueError):
            validate_subject("unix:a b")


class TestMatching:
    def test_exact_match(self):
        assert subject_matches("unix:alice", "unix:alice")
        assert not subject_matches("unix:alice", "unix:bob")

    def test_hostname_domain_wildcard(self):
        # The paper's example: hostname:*.cse.nd.edu
        assert subject_matches("hostname:*.cse.nd.edu", "hostname:laptop.cse.nd.edu")
        assert not subject_matches("hostname:*.cse.nd.edu", "hostname:evil.example.com")

    def test_globus_organization_wildcard(self):
        # The paper's example: globus:/O=Notre_Dame/*
        assert subject_matches("globus:/O=NotreDame/*", "globus:/O=NotreDame/CN=alice")
        assert not subject_matches("globus:/O=NotreDame/*", "globus:/O=Evil/CN=alice")

    def test_method_must_match(self):
        assert not subject_matches("hostname:*", "unix:alice")

    def test_star_matches_everyone(self):
        assert subject_matches("*", "kerberos:a@ND.EDU")

    def test_case_sensitive(self):
        assert not subject_matches("unix:Alice", "unix:alice")
