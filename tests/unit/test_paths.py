"""Unit tests for the software chroot (path confinement)."""

import os

import pytest

from repro.util.paths import PathEscapeError, confine, normalize_virtual, split_virtual


class TestNormalizeVirtual:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("", "/"),
            ("/", "/"),
            ("a/b", "/a/b"),
            ("/a/b/", "/a/b"),
            ("/a//b", "/a/b"),
            ("/a/./b", "/a/b"),
            ("/a/../b", "/b"),
            ("/../..", "/"),
            ("/..", "/"),
            ("/a/b/../../..", "/"),
        ],
    )
    def test_normalization(self, raw, expected):
        assert normalize_virtual(raw) == expected

    def test_dotdot_clamps_at_root_like_chroot(self):
        assert normalize_virtual("/../../../etc/passwd") == "/etc/passwd"

    def test_backslash_rejected(self):
        with pytest.raises(PathEscapeError):
            normalize_virtual("/a\\b")

    def test_nul_rejected(self):
        with pytest.raises(PathEscapeError):
            normalize_virtual("/a\x00b")


class TestSplitVirtual:
    def test_basic_split(self):
        assert split_virtual("/a/b/c") == ("/a/b", "c")

    def test_top_level_file(self):
        assert split_virtual("/f") == ("/", "f")

    def test_root_has_empty_basename(self):
        assert split_virtual("/") == ("/", "")


class TestConfine:
    def test_simple_paths_land_under_root(self, tmp_path):
        real = confine(str(tmp_path), "/a/b")
        assert real == os.path.join(str(tmp_path.resolve()), "a/b")

    def test_dotdot_cannot_escape(self, tmp_path):
        real = confine(str(tmp_path), "/../../etc/passwd")
        assert real.startswith(str(tmp_path.resolve()))

    def test_symlink_escape_detected(self, tmp_path):
        (tmp_path / "inside").mkdir()
        os.symlink("/etc", str(tmp_path / "evil"))
        with pytest.raises(PathEscapeError):
            confine(str(tmp_path), "/evil")

    def test_symlink_via_parent_detected(self, tmp_path):
        os.symlink("/etc", str(tmp_path / "evil"))
        with pytest.raises(PathEscapeError):
            confine(str(tmp_path), "/evil/passwd")

    def test_internal_symlink_allowed(self, tmp_path):
        (tmp_path / "real").mkdir()
        (tmp_path / "real" / "f.txt").write_text("x")
        os.symlink(str(tmp_path / "real"), str(tmp_path / "alias"))
        real = confine(str(tmp_path), "/alias/f.txt")
        assert os.path.exists(real)

    def test_dangling_internal_symlink_leaf_allowed(self, tmp_path):
        os.symlink(str(tmp_path / "missing"), str(tmp_path / "dangling"))
        real = confine(str(tmp_path), "/dangling")
        assert real.startswith(str(tmp_path.resolve()))

    def test_nonexistent_leaf_allowed_for_creation(self, tmp_path):
        real = confine(str(tmp_path), "/newfile.txt")
        assert real == os.path.join(str(tmp_path.resolve()), "newfile.txt")

    def test_check_symlinks_false_is_purely_lexical(self, tmp_path):
        real = confine(str(tmp_path), "/x/../y", check_symlinks=False)
        assert real.endswith("/y")
