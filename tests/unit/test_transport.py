"""Unit tests for the transport layer: metrics, jittered recovery, fan-out."""

import random

import pytest

from repro.transport.fanout import FanoutPool
from repro.transport.metrics import LatencyHistogram, MetricsRegistry, default_registry
from repro.transport.recovery import RetryPolicy
from repro.util.clock import ManualClock
from repro.util.errors import DisconnectedError


class TestLatencyHistogram:
    def test_counts_and_percentiles(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 0.100):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == pytest.approx(0.001)
        assert snap["max"] == pytest.approx(0.100)
        # p50 falls in a bucket covering the small observations, p99 in
        # one covering the slowest.
        assert snap["p50"] <= snap["p95"] <= snap["p99"]
        assert snap["p99"] >= 0.01

    def test_empty_histogram(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0


class TestMetricsRegistry:
    def test_snapshot_per_verb(self):
        reg = MetricsRegistry()
        reg.observe("pread", 0.002, bytes_in=4096, endpoint="h:1")
        reg.observe("pread", 0.004, bytes_in=4096, endpoint="h:1")
        reg.observe("pwrite", 0.003, bytes_out=8192, endpoint="h:1")
        reg.observe("pwrite", 0.500, bytes_out=100, error=True, endpoint="h:2")
        snap = reg.snapshot()

        pread = snap["verbs"]["pread"]
        assert pread["calls"] == 2
        assert pread["errors"] == 0
        assert pread["bytes_in"] == 8192
        assert pread["bytes_out"] == 0
        assert pread["latency"]["count"] == 2

        pwrite = snap["verbs"]["pwrite"]
        assert pwrite["calls"] == 2
        assert pwrite["errors"] == 1
        assert pwrite["bytes_out"] == 8292
        assert pwrite["latency"]["p99"] >= 0.1

    def test_snapshot_per_endpoint_rollup(self):
        reg = MetricsRegistry()
        reg.observe("stat", 0.001, endpoint="a:1")
        reg.observe("stat", 0.001, endpoint="a:1")
        reg.observe("stat", 0.001, error=True, endpoint="b:2")
        snap = reg.snapshot()
        assert snap["endpoints"]["a:1"] == {"calls": 2, "errors": 0}
        assert snap["endpoints"]["b:2"] == {"calls": 1, "errors": 1}

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.observe("open", 0.001)
        snap = reg.snapshot()
        snap["verbs"]["open"]["calls"] = 999
        assert reg.snapshot()["verbs"]["open"]["calls"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.observe("open", 0.001)
        reg.reset()
        assert reg.snapshot()["verbs"] == {}

    def test_default_registry_is_process_wide(self):
        assert default_registry() is default_registry()


class TestRetryPolicyJitter:
    def test_seeded_rng_pins_the_sequence(self):
        a = RetryPolicy(
            max_attempts=6, initial_delay=0.1, jitter=True, rng=random.Random(7)
        )
        b = RetryPolicy(
            max_attempts=6, initial_delay=0.1, jitter=True, rng=random.Random(7)
        )
        assert list(a.delays()) == list(b.delays())

    def test_different_seeds_decorrelate(self):
        a = RetryPolicy(
            max_attempts=6, initial_delay=0.1, jitter=True, rng=random.Random(1)
        )
        b = RetryPolicy(
            max_attempts=6, initial_delay=0.1, jitter=True, rng=random.Random(2)
        )
        assert list(a.delays()) != list(b.delays())

    def test_delays_stay_within_bounds(self):
        policy = RetryPolicy(
            max_attempts=50,
            initial_delay=0.1,
            max_delay=2.0,
            jitter=True,
            rng=random.Random(42),
        )
        delays = list(policy.delays())
        assert len(delays) == 49
        assert delays[0] == pytest.approx(0.1)  # first retry is immediate-ish
        assert all(0.1 <= d <= 2.0 for d in delays)

    def test_run_sleeps_the_jittered_sequence(self):
        clock = ManualClock()
        policy = RetryPolicy(
            max_attempts=4,
            initial_delay=0.1,
            jitter=True,
            rng=random.Random(3),
            clock=clock,
        )
        expected = list(
            RetryPolicy(
                max_attempts=4, initial_delay=0.1, jitter=True, rng=random.Random(3)
            ).delays()
        )

        def op():
            raise DisconnectedError("always down")

        with pytest.raises(DisconnectedError):
            policy.run(op, lambda: None)
        assert clock.now() == pytest.approx(sum(expected))

    def test_jitter_off_keeps_fixed_exponential(self):
        policy = RetryPolicy(
            max_attempts=4, initial_delay=1.0, multiplier=2.0, max_delay=10.0
        )
        assert list(policy.delays()) == [1.0, 2.0, 4.0]


class TestFanoutPool:
    def test_results_in_task_order(self):
        with FanoutPool(max_workers=4) as pool:
            results = pool.run([(lambda i=i: i * i) for i in range(10)])
        assert results == [i * i for i in range(10)]

    def test_single_worker_is_serial(self):
        pool = FanoutPool(max_workers=1)
        assert pool.serial
        order = []
        pool.run([(lambda i=i: order.append(i)) for i in range(5)])
        assert order == [0, 1, 2, 3, 4]

    def test_tasks_genuinely_overlap(self):
        import threading

        barrier = threading.Barrier(4, timeout=5.0)
        with FanoutPool(max_workers=4) as pool:
            # Each task blocks until all four run at once; passing at all
            # proves four workers were live simultaneously.
            pool.run([barrier.wait for _ in range(4)])

    def test_first_error_in_task_order_wins(self):
        def boom(msg):
            raise ValueError(msg)

        with FanoutPool(max_workers=4) as pool:
            with pytest.raises(ValueError, match="first"):
                pool.run([
                    lambda: 1,
                    lambda: boom("first"),
                    lambda: boom("second"),
                ])

    def test_empty_task_list(self):
        assert FanoutPool().run([]) == []

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            FanoutPool(max_workers=0)
