"""Unit tests for the command-line entry points' argument handling."""

import pytest

from repro.catalog import main as catalog_main
from repro.chirp import main as chirp_main
from repro.cli import build_parser as tss_parser
from repro.cli import _endpoint_of


class TestTssServerParser:
    def test_defaults(self):
        args = chirp_main.build_parser().parse_args([])
        assert args.root == "."
        assert args.port == 9094
        assert args.owner.startswith("unix:")
        assert args.auth == "hostname,unix"

    def test_full_invocation(self):
        args = chirp_main.build_parser().parse_args(
            [
                "--root", "/scratch/me",
                "--owner", "unix:dthain",
                "--port", "9095",
                "--auth", "globus,unix",
                "--catalog", "cat1:9097",
                "--catalog", "cat2:9097",
                "--quota-bytes", "1000000",
            ]
        )
        assert args.root == "/scratch/me"
        assert args.catalog == ["cat1:9097", "cat2:9097"]
        assert args.quota_bytes == 1_000_000

    def test_bad_port_rejected(self):
        with pytest.raises(SystemExit):
            chirp_main.build_parser().parse_args(["--port", "banana"])


class TestTssCatalogParser:
    def test_defaults_and_overrides(self):
        import argparse

        # catalog main parses inline; reproduce its parser contract
        parser = argparse.ArgumentParser()
        # smoke: the module-level main accepts these flags without running
        with pytest.raises(SystemExit):
            catalog_main.main(["--help"])


class TestTssCliParser:
    def test_every_subcommand_parses(self):
        parser = tss_parser()
        cases = [
            ["ls", "/cfs/h:1/"],
            ["ls", "-l", "/cfs/h:1/"],
            ["cat", "/cfs/h:1/f"],
            ["put", "local", "/cfs/h:1/remote"],
            ["get", "/cfs/h:1/remote", "local"],
            ["rm", "/cfs/h:1/f"],
            ["mkdir", "-p", "/cfs/h:1/a/b"],
            ["stat", "/cfs/h:1/f"],
            ["statfs", "/cfs/h:1/"],
            ["acl", "get", "/cfs/h:1/d"],
            ["acl", "set", "/cfs/h:1/d", "unix:alice", "rwl"],
            ["whoami", "/cfs/h:1/"],
            ["catalog", "host:9097"],
            ["catalog", "host:9097", "--format", "json"],
            ["fsck", "/dsfs/h:1@vol"],
            ["fsck", "/dsfs/h:1@vol", "--repair"],
        ]
        for argv in cases:
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            tss_parser().parse_args([])

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            tss_parser().parse_args(["frobnicate"])


class TestEndpointParsing:
    def test_cfs_path(self):
        assert _endpoint_of("/cfs/host:9094/a/b") == ("host", 9094, "/a/b")

    def test_dsfs_path_strips_volume(self):
        host, port, inner = _endpoint_of("/dsfs/host:9094@vol/a")
        assert (host, port) == ("host", 9094)

    def test_root_inner(self):
        assert _endpoint_of("/cfs/host:9094")[2] == "/"

    def test_bad_namespace_exits(self):
        with pytest.raises(SystemExit):
            _endpoint_of("/plain/path")
