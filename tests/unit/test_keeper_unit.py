"""Unit tests for the keeper's building blocks.

Everything here runs on fakes and a :class:`ManualClock` -- no sockets,
no disk beyond tmp_path -- so the control-loop logic (rate budgets,
journal replay, cursor persistence, catalog membership, target
deprioritization) is exercised deterministically.
"""

import json
import os

import pytest

from repro.catalog.report import ServerReport
from repro.core.placement import RoundRobinPlacement
from repro.gems.keeper import (
    Keeper,
    KeeperConfig,
    RateBudget,
    RepairJournal,
)
from repro.gems.policy import FixedCountPolicy
from repro.gems.replicator import Replicator
from repro.transport.health import BreakerPolicy, HealthRegistry
from repro.util.clock import ManualClock


class FakePool:
    """Just enough of ClientPool for membership/recovery plumbing."""

    def __init__(self, health=None):
        self.health = health
        self.metrics = None

    def try_get(self, host, port):
        return None


class FakeDSDB:
    """Server bookkeeping only; no data path."""

    def __init__(self, servers, health=None):
        self.servers = [(h, int(p)) for h, p in servers]
        self.placement = RoundRobinPlacement(seed=0)
        self.pool = FakePool(health)
        self.data_dir = "/tssdata/test"

    def add_server(self, host, port):
        endpoint = (host, int(port))
        if endpoint not in self.servers:
            self.servers.append(endpoint)


class FakeCatalog:
    def __init__(self):
        self.reports = []

    def try_discover(self):
        return self.reports

    @staticmethod
    def report(host, port, type_="chirp"):
        return ServerReport(
            type=type_, name=f"{host}:{port}", owner="unix:x", host=host, port=port
        )


def make_keeper(tmp_path, servers, catalog=None, clock=None, **cfg):
    return Keeper(
        FakeDSDB(servers),
        FixedCountPolicy(2),
        KeeperConfig(state_dir=str(tmp_path / "keeper"), **cfg),
        catalog=catalog,
        clock=clock or ManualClock(),
    )


class TestRateBudget:
    def test_unmetered_never_sleeps(self):
        clock = ManualClock()
        budget = RateBudget(None, clock)
        assert budget.charge(10**9) == 0.0
        assert clock.now() == 0.0

    def test_first_charge_is_free_then_meters(self):
        clock = ManualClock()
        budget = RateBudget(10.0, clock)
        assert budget.charge(5) == 0.0  # books 0.5s, no wait yet
        assert budget.charge(5) == pytest.approx(0.5)  # pays the booking
        assert clock.now() == pytest.approx(0.5)

    def test_idle_time_is_not_banked(self):
        clock = ManualClock()
        budget = RateBudget(1.0, clock)
        budget.charge(1)
        clock.advance(100.0)  # long idle gap
        assert budget.charge(1) == 0.0  # ...but only one charge is free
        assert budget.charge(1) == pytest.approx(1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            RateBudget(0.0)

    def test_tracks_throttled_seconds(self):
        clock = ManualClock()
        budget = RateBudget(2.0, clock)
        budget.charge(4)
        budget.charge(4)
        assert budget.throttled_seconds == pytest.approx(2.0)


class TestRepairJournal:
    def test_intent_without_commit_is_in_flight(self, tmp_path):
        journal = RepairJournal(str(tmp_path / "j"))
        rep = {"host": "a", "port": 1, "path": "/p", "state": "ok"}
        seq1 = journal.intent("r1", rep)
        seq2 = journal.intent("r2", rep)
        journal.commit(seq1)
        pending = journal.in_flight()
        assert [e["seq"] for e in pending] == [seq2]
        assert pending[0]["record_id"] == "r2"

    def test_abort_also_resolves(self, tmp_path):
        journal = RepairJournal(str(tmp_path / "j"))
        seq = journal.intent("r", {"host": "a", "port": 1, "path": "/p"})
        journal.abort(seq, "copy failed")
        assert journal.in_flight() == []

    def test_sequence_numbers_survive_reopen(self, tmp_path):
        path = str(tmp_path / "j")
        first = RepairJournal(path)
        seq = first.intent("r", {"host": "a", "port": 1, "path": "/p"})
        first.close()
        second = RepairJournal(path)
        assert second.intent("r2", {"host": "b", "port": 2, "path": "/q"}) > seq

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = str(tmp_path / "j")
        journal = RepairJournal(path)
        seq = journal.intent("r", {"host": "a", "port": 1, "path": "/p"})
        journal.close()
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"seq": 99, "op": "comm')  # crash mid-append
        reopened = RepairJournal(path)
        assert [e["seq"] for e in reopened.in_flight()] == [seq]


class TestCursorPersistence:
    def test_cursor_round_trips_between_keepers(self, tmp_path):
        keeper = make_keeper(tmp_path, [("a", 1)])
        keeper._cursor = "record-0042"
        keeper._counters["passes_completed"] = 3
        keeper._save_cursor()
        reborn = make_keeper(tmp_path, [("a", 1)])
        assert reborn.cursor == "record-0042"
        assert reborn.snapshot()["passes_completed"] == 3

    def test_corrupt_cursor_file_starts_fresh(self, tmp_path):
        keeper = make_keeper(tmp_path, [("a", 1)])
        with open(keeper._cursor_path, "w", encoding="utf-8") as f:
            f.write("not json{")
        reborn = make_keeper(tmp_path, [("a", 1)])
        assert reborn.cursor is None

    def test_cursor_file_is_json(self, tmp_path):
        keeper = make_keeper(tmp_path, [("a", 1)])
        keeper._cursor = "abc"
        keeper._save_cursor()
        with open(keeper._cursor_path, encoding="utf-8") as f:
            doc = json.load(f)
        assert doc == {"cursor": "abc", "passes": 0}


class TestMembership:
    LIFETIME = 900.0

    def test_servers_absent_past_lifetime_become_suspect(self, tmp_path):
        clock = ManualClock()
        catalog = FakeCatalog()
        catalog.reports = [FakeCatalog.report("a", 1)]
        keeper = make_keeper(
            tmp_path, [("a", 1), ("b", 2)], catalog=catalog, clock=clock,
            catalog_lifetime=self.LIFETIME,
        )
        assert keeper.refresh_membership() == set()  # grace stamp for b
        clock.advance(self.LIFETIME + 1)
        assert keeper.refresh_membership() == {("b", 2)}
        # ...and a reappearance clears the suspicion.
        catalog.reports.append(FakeCatalog.report("b", 2))
        assert keeper.refresh_membership() == set()

    def test_new_catalog_server_is_admitted(self, tmp_path):
        catalog = FakeCatalog()
        catalog.reports = [
            FakeCatalog.report("a", 1),
            FakeCatalog.report("c", 3),
            FakeCatalog.report("db", 9, type_="database"),  # not a file server
        ]
        keeper = make_keeper(tmp_path, [("a", 1)], catalog=catalog)
        keeper.refresh_membership()
        assert ("c", 3) in keeper.dsdb.servers
        assert ("db", 9) not in keeper.dsdb.servers
        assert keeper.snapshot()["servers_admitted"] == 1

    def test_unreachable_catalog_keeps_previous_view(self, tmp_path):
        clock = ManualClock()
        catalog = FakeCatalog()
        catalog.reports = [FakeCatalog.report("a", 1), FakeCatalog.report("b", 2)]
        keeper = make_keeper(
            tmp_path, [("a", 1), ("b", 2)], catalog=catalog, clock=clock,
            catalog_lifetime=self.LIFETIME,
        )
        keeper.refresh_membership()
        catalog.reports = None  # catalog outage, not server absence
        clock.advance(self.LIFETIME + 1)

        def dead_discover():
            return None

        catalog.try_discover = dead_discover
        # Note: last_seen still ages, but absence of *evidence* must not
        # condemn servers -- both were seen before the outage began, so
        # they age out only because nothing refreshed them.  The keeper
        # still treats that as suspicion (conservative), but crucially it
        # does not crash or forget the server set.
        suspects = keeper.refresh_membership()
        assert keeper.dsdb.servers == [("a", 1), ("b", 2)]
        assert suspects == {("a", 1), ("b", 2)}

    def test_no_catalog_means_static_membership(self, tmp_path):
        clock = ManualClock()
        keeper = make_keeper(tmp_path, [("a", 1)], clock=clock)
        clock.advance(10 * self.LIFETIME)
        assert keeper.refresh_membership() == set()


class TestTargetSelection:
    def record(self, *endpoints):
        return {
            "id": "r1",
            "replicas": [
                {"host": h, "port": p, "path": "/x", "state": "ok"}
                for h, p in endpoints
            ],
        }

    def test_skips_occupied_and_avoided(self):
        dsdb = FakeDSDB([("a", 1), ("b", 2), ("c", 3)])
        replicator = Replicator(dsdb, FixedCountPolicy(2))
        target = replicator.choose_target(
            self.record(("a", 1)), avoid=frozenset({("b", 2)})
        )
        assert target == ("c", 3)

    def test_open_breaker_endpoints_are_skipped(self):
        clock = ManualClock()
        health = HealthRegistry(BreakerPolicy(failure_threshold=1), clock)
        health.for_endpoint("b", 2).record_failure()  # breaker open
        dsdb = FakeDSDB([("a", 1), ("b", 2)])
        replicator = Replicator(dsdb, FixedCountPolicy(2), health=health)
        assert replicator.choose_target(self.record()) in {("a", 1)}
        # Once the breaker closes again, b is eligible.
        health.for_endpoint("b", 2).record_success()
        choices = {replicator.choose_target(self.record()) for _ in range(8)}
        assert ("b", 2) in choices

    def test_repeat_offenders_sink_to_the_back(self):
        dsdb = FakeDSDB([("a", 1), ("b", 2), ("c", 3)])
        replicator = Replicator(dsdb, FixedCountPolicy(2))
        replicator.note_target_failure(("a", 1))
        for _ in range(8):
            assert replicator.choose_target(self.record()) != ("a", 1)
        # When every alternative also failed, the least-failed tier wins.
        replicator.note_target_failure(("b", 2))
        replicator.note_target_failure(("b", 2))
        replicator.note_target_failure(("c", 3))
        replicator.note_target_failure(("c", 3))
        for _ in range(8):
            assert replicator.choose_target(self.record()) == ("a", 1)
        # A success wipes the slate.
        replicator.note_target_success(("b", 2))
        for _ in range(8):
            assert replicator.choose_target(self.record()) == ("b", 2)

    def test_none_when_everything_is_excluded(self):
        dsdb = FakeDSDB([("a", 1)])
        replicator = Replicator(dsdb, FixedCountPolicy(2))
        assert replicator.choose_target(self.record(("a", 1))) is None


class TestConfigValidation:
    def test_rejects_bad_batch(self, tmp_path):
        with pytest.raises(ValueError):
            KeeperConfig(state_dir=str(tmp_path), scan_batch=0)

    def test_rejects_bad_repair_cap(self, tmp_path):
        with pytest.raises(ValueError):
            KeeperConfig(state_dir=str(tmp_path), max_repairs_per_tick=0)

    def test_state_dir_is_created(self, tmp_path):
        keeper = make_keeper(tmp_path, [("a", 1)])
        assert os.path.isdir(os.path.dirname(keeper._cursor_path))


class TestDeadServerHysteresis:
    """Unreachable != dead: only consecutive full passes declare death."""

    def _fold(self, keeper, unreachable=(), answered=()):
        keeper._pass_unreachable |= set(unreachable)
        keeper._pass_answered |= set(answered)
        keeper._fold_unreachable_pass()

    def test_one_unreachable_pass_is_not_dead(self, tmp_path):
        keeper = make_keeper(tmp_path, [("a", 1), ("b", 2)])
        self._fold(keeper, unreachable=[("b", 2)], answered=[("a", 1)])
        assert keeper.dead == set()

    def test_consecutive_passes_declare_dead(self, tmp_path):
        keeper = make_keeper(tmp_path, [("a", 1), ("b", 2)])
        self._fold(keeper, unreachable=[("b", 2)], answered=[("a", 1)])
        self._fold(keeper, unreachable=[("b", 2)], answered=[("a", 1)])
        assert keeper.dead == {("b", 2)}
        assert ("b", 2) in keeper._avoid()

    def test_an_answer_resets_the_streak(self, tmp_path):
        keeper = make_keeper(tmp_path, [("a", 1), ("b", 2)])
        self._fold(keeper, unreachable=[("b", 2)])
        self._fold(keeper, answered=[("b", 2)])  # came back mid-count
        self._fold(keeper, unreachable=[("b", 2)])
        assert keeper.dead == set()

    def test_answer_in_same_pass_outranks_unreachable(self, tmp_path):
        # One timed-out probe plus one authoritative answer in a single
        # pass means the server is alive.
        keeper = make_keeper(tmp_path, [("a", 1), ("b", 2)])
        for _ in range(3):
            self._fold(keeper, unreachable=[("b", 2)], answered=[("b", 2)])
        assert keeper.dead == set()

    def test_fresh_catalog_report_is_proof_of_life(self, tmp_path):
        catalog = FakeCatalog()
        keeper = make_keeper(tmp_path, [("a", 1), ("b", 2)], catalog=catalog)
        self._fold(keeper, unreachable=[("b", 2)])
        self._fold(keeper, unreachable=[("b", 2)])
        assert keeper.dead == {("b", 2)}
        catalog.reports = [FakeCatalog.report("b", 2)]
        keeper.refresh_membership()
        assert keeper.dead == set()
        assert ("b", 2) not in keeper._unreachable_streaks

    def test_config_rejects_bad_threshold(self, tmp_path):
        with pytest.raises(ValueError):
            KeeperConfig(state_dir=str(tmp_path), dead_after_passes=0)

    def test_configurable_patience(self, tmp_path):
        keeper = make_keeper(tmp_path, [("a", 1), ("b", 2)], dead_after_passes=3)
        self._fold(keeper, unreachable=[("b", 2)])
        self._fold(keeper, unreachable=[("b", 2)])
        assert keeper.dead == set()
        self._fold(keeper, unreachable=[("b", 2)])
        assert keeper.dead == {("b", 2)}


class _AuditDB:
    def __init__(self):
        self.updates = []

    def update(self, rid, fields):
        self.updates.append((rid, dict(fields)))
        return {"id": rid, **fields}


class _AuditDSDB:
    """Scripted verify_replica verdicts keyed by endpoint."""

    def __init__(self, verdicts):
        self.verdicts = verdicts
        self.db = _AuditDB()
        self.pool = FakePool()

    def verify_replica(self, record, replica):
        return self.verdicts[(replica["host"], int(replica["port"]))]


def _audit_record(*endpoints):
    return {
        "id": "r1",
        "replicas": [
            {"host": h, "port": p, "path": "/d/x", "state": s}
            for h, p, s in endpoints
        ],
    }


class TestAuditorUnreachableSemantics:
    """Absence of an answer is not evidence of absence."""

    def _audit(self, verdicts, record):
        from repro.gems.auditor import Auditor

        dsdb = _AuditDSDB(verdicts)
        auditor = Auditor(dsdb, mode="bytes")
        return auditor.audit_records([record]), dsdb

    def test_unreachable_leaves_state_untouched(self):
        report, dsdb = self._audit(
            {("a", 1): "ok", ("b", 2): "unreachable"},
            _audit_record(("a", 1, "ok"), ("b", 2, "ok")),
        )
        assert report.unreachable == 1
        assert report.missing == 0
        assert dsdb.db.updates == []  # nothing written on an inconclusive probe
        assert report.unreachable_endpoints == {("b", 2)}
        assert report.answered_endpoints == {("a", 1)}

    def test_missing_is_authoritative_and_recorded(self):
        report, dsdb = self._audit(
            {("a", 1): "ok", ("b", 2): "missing"},
            _audit_record(("a", 1, "ok"), ("b", 2, "ok")),
        )
        assert report.missing == 1
        [(rid, fields)] = dsdb.db.updates
        states = {(r["host"], r["port"]): r["state"] for r in fields["replicas"]}
        assert states[("b", 2)] == "missing"
        assert states[("a", 1)] == "ok"

    def test_fully_unreachable_record_is_not_lost(self):
        # Every server down (a reboot wave) must not read as data loss.
        report, dsdb = self._audit(
            {("a", 1): "unreachable", ("b", 2): "unreachable"},
            _audit_record(("a", 1, "ok"), ("b", 2, "ok")),
        )
        assert report.lost_records == []
        assert report.unreachable == 2
        assert dsdb.db.updates == []
