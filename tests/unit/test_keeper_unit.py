"""Unit tests for the keeper's building blocks.

Everything here runs on fakes and a :class:`ManualClock` -- no sockets,
no disk beyond tmp_path -- so the control-loop logic (rate budgets,
journal replay, cursor persistence, catalog membership, target
deprioritization) is exercised deterministically.
"""

import json
import os

import pytest

from repro.catalog.report import ServerReport
from repro.core.placement import RoundRobinPlacement
from repro.gems.keeper import (
    Keeper,
    KeeperConfig,
    RateBudget,
    RepairJournal,
)
from repro.gems.policy import FixedCountPolicy
from repro.gems.replicator import Replicator
from repro.transport.health import BreakerPolicy, HealthRegistry
from repro.util.clock import ManualClock


class FakePool:
    """Just enough of ClientPool for membership/recovery plumbing."""

    def __init__(self, health=None):
        self.health = health
        self.metrics = None

    def try_get(self, host, port):
        return None


class FakeDSDB:
    """Server bookkeeping only; no data path."""

    def __init__(self, servers, health=None):
        self.servers = [(h, int(p)) for h, p in servers]
        self.placement = RoundRobinPlacement(seed=0)
        self.pool = FakePool(health)
        self.data_dir = "/tssdata/test"

    def add_server(self, host, port):
        endpoint = (host, int(port))
        if endpoint not in self.servers:
            self.servers.append(endpoint)


class FakeCatalog:
    def __init__(self):
        self.reports = []

    def try_discover(self):
        return self.reports

    @staticmethod
    def report(host, port, type_="chirp"):
        return ServerReport(
            type=type_, name=f"{host}:{port}", owner="unix:x", host=host, port=port
        )


def make_keeper(tmp_path, servers, catalog=None, clock=None, **cfg):
    return Keeper(
        FakeDSDB(servers),
        FixedCountPolicy(2),
        KeeperConfig(state_dir=str(tmp_path / "keeper"), **cfg),
        catalog=catalog,
        clock=clock or ManualClock(),
    )


class TestRateBudget:
    def test_unmetered_never_sleeps(self):
        clock = ManualClock()
        budget = RateBudget(None, clock)
        assert budget.charge(10**9) == 0.0
        assert clock.now() == 0.0

    def test_first_charge_is_free_then_meters(self):
        clock = ManualClock()
        budget = RateBudget(10.0, clock)
        assert budget.charge(5) == 0.0  # books 0.5s, no wait yet
        assert budget.charge(5) == pytest.approx(0.5)  # pays the booking
        assert clock.now() == pytest.approx(0.5)

    def test_idle_time_is_not_banked(self):
        clock = ManualClock()
        budget = RateBudget(1.0, clock)
        budget.charge(1)
        clock.advance(100.0)  # long idle gap
        assert budget.charge(1) == 0.0  # ...but only one charge is free
        assert budget.charge(1) == pytest.approx(1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            RateBudget(0.0)

    def test_tracks_throttled_seconds(self):
        clock = ManualClock()
        budget = RateBudget(2.0, clock)
        budget.charge(4)
        budget.charge(4)
        assert budget.throttled_seconds == pytest.approx(2.0)


class TestRepairJournal:
    def test_intent_without_commit_is_in_flight(self, tmp_path):
        journal = RepairJournal(str(tmp_path / "j"))
        rep = {"host": "a", "port": 1, "path": "/p", "state": "ok"}
        seq1 = journal.intent("r1", rep)
        seq2 = journal.intent("r2", rep)
        journal.commit(seq1)
        pending = journal.in_flight()
        assert [e["seq"] for e in pending] == [seq2]
        assert pending[0]["record_id"] == "r2"

    def test_abort_also_resolves(self, tmp_path):
        journal = RepairJournal(str(tmp_path / "j"))
        seq = journal.intent("r", {"host": "a", "port": 1, "path": "/p"})
        journal.abort(seq, "copy failed")
        assert journal.in_flight() == []

    def test_sequence_numbers_survive_reopen(self, tmp_path):
        path = str(tmp_path / "j")
        first = RepairJournal(path)
        seq = first.intent("r", {"host": "a", "port": 1, "path": "/p"})
        first.close()
        second = RepairJournal(path)
        assert second.intent("r2", {"host": "b", "port": 2, "path": "/q"}) > seq

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = str(tmp_path / "j")
        journal = RepairJournal(path)
        seq = journal.intent("r", {"host": "a", "port": 1, "path": "/p"})
        journal.close()
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"seq": 99, "op": "comm')  # crash mid-append
        reopened = RepairJournal(path)
        assert [e["seq"] for e in reopened.in_flight()] == [seq]


class TestCursorPersistence:
    def test_cursor_round_trips_between_keepers(self, tmp_path):
        keeper = make_keeper(tmp_path, [("a", 1)])
        keeper._cursor = "record-0042"
        keeper._counters["passes_completed"] = 3
        keeper._save_cursor()
        reborn = make_keeper(tmp_path, [("a", 1)])
        assert reborn.cursor == "record-0042"
        assert reborn.snapshot()["passes_completed"] == 3

    def test_corrupt_cursor_file_starts_fresh(self, tmp_path):
        keeper = make_keeper(tmp_path, [("a", 1)])
        with open(keeper._cursor_path, "w", encoding="utf-8") as f:
            f.write("not json{")
        reborn = make_keeper(tmp_path, [("a", 1)])
        assert reborn.cursor is None

    def test_cursor_file_is_json(self, tmp_path):
        keeper = make_keeper(tmp_path, [("a", 1)])
        keeper._cursor = "abc"
        keeper._save_cursor()
        with open(keeper._cursor_path, encoding="utf-8") as f:
            doc = json.load(f)
        assert doc == {"cursor": "abc", "passes": 0}


class TestMembership:
    LIFETIME = 900.0

    def test_servers_absent_past_lifetime_become_suspect(self, tmp_path):
        clock = ManualClock()
        catalog = FakeCatalog()
        catalog.reports = [FakeCatalog.report("a", 1)]
        keeper = make_keeper(
            tmp_path, [("a", 1), ("b", 2)], catalog=catalog, clock=clock,
            catalog_lifetime=self.LIFETIME,
        )
        assert keeper.refresh_membership() == set()  # grace stamp for b
        clock.advance(self.LIFETIME + 1)
        assert keeper.refresh_membership() == {("b", 2)}
        # ...and a reappearance clears the suspicion.
        catalog.reports.append(FakeCatalog.report("b", 2))
        assert keeper.refresh_membership() == set()

    def test_new_catalog_server_is_admitted(self, tmp_path):
        catalog = FakeCatalog()
        catalog.reports = [
            FakeCatalog.report("a", 1),
            FakeCatalog.report("c", 3),
            FakeCatalog.report("db", 9, type_="database"),  # not a file server
        ]
        keeper = make_keeper(tmp_path, [("a", 1)], catalog=catalog)
        keeper.refresh_membership()
        assert ("c", 3) in keeper.dsdb.servers
        assert ("db", 9) not in keeper.dsdb.servers
        assert keeper.snapshot()["servers_admitted"] == 1

    def test_unreachable_catalog_keeps_previous_view(self, tmp_path):
        clock = ManualClock()
        catalog = FakeCatalog()
        catalog.reports = [FakeCatalog.report("a", 1), FakeCatalog.report("b", 2)]
        keeper = make_keeper(
            tmp_path, [("a", 1), ("b", 2)], catalog=catalog, clock=clock,
            catalog_lifetime=self.LIFETIME,
        )
        keeper.refresh_membership()
        catalog.reports = None  # catalog outage, not server absence
        clock.advance(self.LIFETIME + 1)

        def dead_discover():
            return None

        catalog.try_discover = dead_discover
        # Note: last_seen still ages, but absence of *evidence* must not
        # condemn servers -- both were seen before the outage began, so
        # they age out only because nothing refreshed them.  The keeper
        # still treats that as suspicion (conservative), but crucially it
        # does not crash or forget the server set.
        suspects = keeper.refresh_membership()
        assert keeper.dsdb.servers == [("a", 1), ("b", 2)]
        assert suspects == {("a", 1), ("b", 2)}

    def test_no_catalog_means_static_membership(self, tmp_path):
        clock = ManualClock()
        keeper = make_keeper(tmp_path, [("a", 1)], clock=clock)
        clock.advance(10 * self.LIFETIME)
        assert keeper.refresh_membership() == set()


class TestTargetSelection:
    def record(self, *endpoints):
        return {
            "id": "r1",
            "replicas": [
                {"host": h, "port": p, "path": "/x", "state": "ok"}
                for h, p in endpoints
            ],
        }

    def test_skips_occupied_and_avoided(self):
        dsdb = FakeDSDB([("a", 1), ("b", 2), ("c", 3)])
        replicator = Replicator(dsdb, FixedCountPolicy(2))
        target = replicator.choose_target(
            self.record(("a", 1)), avoid=frozenset({("b", 2)})
        )
        assert target == ("c", 3)

    def test_open_breaker_endpoints_are_skipped(self):
        clock = ManualClock()
        health = HealthRegistry(BreakerPolicy(failure_threshold=1), clock)
        health.for_endpoint("b", 2).record_failure()  # breaker open
        dsdb = FakeDSDB([("a", 1), ("b", 2)])
        replicator = Replicator(dsdb, FixedCountPolicy(2), health=health)
        assert replicator.choose_target(self.record()) in {("a", 1)}
        # Once the breaker closes again, b is eligible.
        health.for_endpoint("b", 2).record_success()
        choices = {replicator.choose_target(self.record()) for _ in range(8)}
        assert ("b", 2) in choices

    def test_repeat_offenders_sink_to_the_back(self):
        dsdb = FakeDSDB([("a", 1), ("b", 2), ("c", 3)])
        replicator = Replicator(dsdb, FixedCountPolicy(2))
        replicator.note_target_failure(("a", 1))
        for _ in range(8):
            assert replicator.choose_target(self.record()) != ("a", 1)
        # When every alternative also failed, the least-failed tier wins.
        replicator.note_target_failure(("b", 2))
        replicator.note_target_failure(("b", 2))
        replicator.note_target_failure(("c", 3))
        replicator.note_target_failure(("c", 3))
        for _ in range(8):
            assert replicator.choose_target(self.record()) == ("a", 1)
        # A success wipes the slate.
        replicator.note_target_success(("b", 2))
        for _ in range(8):
            assert replicator.choose_target(self.record()) == ("b", 2)

    def test_none_when_everything_is_excluded(self):
        dsdb = FakeDSDB([("a", 1)])
        replicator = Replicator(dsdb, FixedCountPolicy(2))
        assert replicator.choose_target(self.record(("a", 1))) is None


class TestConfigValidation:
    def test_rejects_bad_batch(self, tmp_path):
        with pytest.raises(ValueError):
            KeeperConfig(state_dir=str(tmp_path), scan_batch=0)

    def test_rejects_bad_repair_cap(self, tmp_path):
        with pytest.raises(ValueError):
            KeeperConfig(state_dir=str(tmp_path), max_repairs_per_tick=0)

    def test_state_dir_is_created(self, tmp_path):
        keeper = make_keeper(tmp_path, [("a", 1)])
        assert os.path.isdir(os.path.dirname(keeper._cursor_path))
