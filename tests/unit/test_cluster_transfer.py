"""Unit tests for the cluster components' transfer mechanics."""

import pytest

from repro.sim.cluster import (
    ClientNode,
    SimSwitch,
    StorageNode,
    transfer,
)
from repro.sim.engine import Environment
from repro.sim.params import MB, PAPER_PARAMS


@pytest.fixture()
def rig():
    env = Environment()
    switch = SimSwitch(env, PAPER_PARAMS)
    server = StorageNode(env, PAPER_PARAMS, "s0")
    client = ClientNode(env, PAPER_PARAMS, "c0")
    return env, switch, server, client


class TestTransfer:
    def test_delivers_exact_byte_count(self, rig):
        env, switch, server, client = rig
        env.process(transfer(env, server, client, switch, 3 * MB + 17))
        env.run()
        assert client.bytes_received == 3 * MB + 17

    def test_on_bytes_callback_sees_every_chunk(self, rig):
        env, switch, server, client = rig
        seen = []
        env.process(
            transfer(env, server, client, switch, MB, on_bytes=seen.append)
        )
        env.run()
        assert sum(seen) == MB

    def test_single_stream_below_port_rate(self, rig):
        """One sequential-stage stream cannot reach full port speed (the
        documented model property); aggregate saturation is what the
        experiments measure."""
        env, switch, server, client = rig
        size = 10 * MB
        env.process(transfer(env, server, client, switch, size))
        env.run()
        rate = size / env.now
        assert rate < PAPER_PARAMS.port_bw
        assert rate > 0.3 * PAPER_PARAMS.port_bw

    def test_concurrent_streams_saturate_the_port(self, rig):
        env, switch, server, client = rig
        size = 5 * MB
        clients = [ClientNode(env, PAPER_PARAMS, f"c{i}") for i in range(6)]
        for c in clients:
            env.process(transfer(env, server, c, switch, size))
        env.run()
        aggregate = 6 * size / env.now
        assert aggregate == pytest.approx(PAPER_PARAMS.port_bw, rel=0.1)

    def test_many_servers_hit_backplane_cap(self):
        env = Environment()
        switch = SimSwitch(env, PAPER_PARAMS)
        servers = [StorageNode(env, PAPER_PARAMS, f"s{i}") for i in range(6)]
        clients = [ClientNode(env, PAPER_PARAMS, f"c{i}") for i in range(12)]
        size = 4 * MB
        for i, c in enumerate(clients):
            # all data cached: isolate the network stations
            servers[i % 6].cache.access(f"f{i}", size)
            env.process(transfer(env, servers[i % 6], c, switch, size))
        env.run()
        aggregate = 12 * size / env.now
        assert aggregate == pytest.approx(PAPER_PARAMS.backplane_bw, rel=0.12)


class TestStorageNodeFetch:
    def test_miss_charges_the_disk(self, rig):
        env, _switch, server, _client = rig

        def proc():
            yield from server.fetch("file1", 2 * MB)

        env.process(proc())
        env.run()
        expected = PAPER_PARAMS.disk_seek + 2 * MB / PAPER_PARAMS.disk_bw
        assert env.now == pytest.approx(expected)

    def test_hit_is_free(self, rig):
        env, _switch, server, _client = rig
        server.cache.access("file1", 2 * MB)

        def proc():
            yield from server.fetch("file1", 2 * MB)

        env.process(proc())
        env.run()
        assert env.now == 0.0

    def test_disk_serializes_requests(self, rig):
        env, _switch, server, _client = rig

        def proc(name):
            yield from server.fetch(name, MB)

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        one = PAPER_PARAMS.disk_seek + MB / PAPER_PARAMS.disk_bw
        assert env.now == pytest.approx(2 * one)
