"""Unit tests for adapter internals (no sockets: LocalFilesystem mounts)."""

import errno
import io
import os
import pathlib

import pytest

from repro.adapter.adapter import Adapter, _parse_endpoint
from repro.adapter.fileobj import AdapterFile
from repro.adapter.interpose import interposed
from repro.chirp.protocol import OpenFlags
from repro.core.localfs import LocalFilesystem


@pytest.fixture()
def adapter(tmp_path):
    a = Adapter()
    root = tmp_path / "tree"
    root.mkdir()
    (root / "f.txt").write_text("content")
    (root / "sub").mkdir()
    a.mount("/mnt", LocalFilesystem(str(root)))
    return a


class TestResolution:
    def test_longest_mount_prefix_wins(self, adapter, tmp_path):
        inner_root = tmp_path / "inner"
        inner_root.mkdir()
        (inner_root / "deep.txt").write_text("deep")
        adapter.mount("/mnt/sub", LocalFilesystem(str(inner_root)))
        fs, inner = adapter.resolve("/mnt/sub/deep.txt")
        assert inner == "/deep.txt"
        assert adapter.read_bytes("/mnt/sub/deep.txt") == b"deep"
        # /mnt itself still resolves to the outer filesystem
        assert adapter.read_bytes("/mnt/f.txt") == b"content"

    def test_mount_exactly_at_prefix(self, adapter):
        fs, inner = adapter.resolve("/mnt")
        assert inner == "/"

    def test_component_boundary(self, adapter):
        with pytest.raises(OSError):
            adapter.resolve("/mntx/f")  # /mntx is not under /mnt

    def test_remount_replaces(self, adapter, tmp_path):
        other = tmp_path / "other"
        other.mkdir()
        (other / "g.txt").write_text("other")
        adapter.mount("/mnt", LocalFilesystem(str(other)))
        assert adapter.listdir("/mnt") == ["g.txt"]

    def test_mount_over_root_rejected(self, adapter, tmp_path):
        with pytest.raises(ValueError):
            adapter.mount("/", LocalFilesystem(str(tmp_path)))

    def test_claims(self, adapter):
        assert adapter.claims("/mnt/f.txt")
        assert adapter.claims("/mnt")
        assert not adapter.claims("/etc/passwd")
        assert not adapter.claims("/m")

    def test_mountlist_feeds_resolution(self, adapter):
        adapter.add_mount_rule("/project", "/mnt/sub")
        fs, inner = adapter.resolve("/project/x")
        assert inner == "/sub/x"

    def test_parse_endpoint(self):
        assert _parse_endpoint("host:9094") == ("host", 9094)
        with pytest.raises(OSError):
            _parse_endpoint("no-port")
        with pytest.raises(OSError):
            _parse_endpoint("host:banana")


class TestOpenModes:
    def test_default_binary_is_raw(self, adapter):
        with adapter.open("/mnt/f.txt", "rb") as f:
            assert isinstance(f, AdapterFile)

    def test_requested_binary_buffering(self, adapter):
        with adapter.open("/mnt/f.txt", "rb", buffering=4096) as f:
            assert isinstance(f, io.BufferedReader)
            assert f.read() == b"content"

    def test_text_mode_is_wrapped(self, adapter):
        with adapter.open("/mnt/f.txt", "r") as f:
            assert isinstance(f, io.TextIOWrapper)
            assert f.read() == "content"

    def test_unbuffered_text_rejected(self, adapter):
        with pytest.raises(ValueError):
            adapter.open("/mnt/f.txt", "r", buffering=0)

    def test_buffered_writer_type(self, adapter):
        with adapter.open("/mnt/new.bin", "wb", buffering=4096) as f:
            assert isinstance(f, io.BufferedWriter)
            f.write(b"x")

    def test_buffered_random_type(self, adapter):
        with adapter.open("/mnt/new2.bin", "w+b", buffering=4096) as f:
            assert isinstance(f, io.BufferedRandom)
            f.write(b"x")

    def test_encoding_honored(self, adapter):
        with adapter.open("/mnt/uni.txt", "w", encoding="utf-16") as f:
            f.write("héllo")
        with adapter.open("/mnt/uni.txt", "r", encoding="utf-16") as f:
            assert f.read() == "héllo"


class TestErrnoTranslation:
    def test_enoent(self, adapter):
        with pytest.raises(FileNotFoundError):
            adapter.stat("/mnt/nope")

    def test_eexist(self, adapter):
        with pytest.raises(FileExistsError):
            adapter.mkdir("/mnt/sub")

    def test_enotempty(self, adapter):
        adapter.write_bytes("/mnt/sub/x", b"1")
        with pytest.raises(OSError) as exc:
            adapter.rmdir("/mnt/sub")
        assert exc.value.errno == errno.ENOTEMPTY

    def test_eisdir_on_open(self, adapter):
        with pytest.raises(OSError) as exc:
            adapter.open("/mnt/sub", "rb")
        assert exc.value.errno == errno.EISDIR

    def test_outside_namespace_is_enoent(self, adapter):
        with pytest.raises(OSError) as exc:
            adapter.listdir("/elsewhere")
        assert exc.value.errno == errno.ENOENT


class TestInterposeEdgeCases:
    def test_pathlike_paths_are_routed(self, adapter):
        with interposed(adapter):
            path = pathlib.PurePosixPath("/mnt/f.txt")
            assert os.stat(path).st_size == 7
            with open(path) as f:
                assert f.read() == "content"

    def test_file_descriptor_args_fall_through(self, adapter, tmp_path):
        real = tmp_path / "plain.txt"
        real.write_text("plain")
        with interposed(adapter):
            fd = os.open(str(real), os.O_RDONLY)
            try:
                assert os.stat(fd).st_size == 5  # int arg: original os.stat
            finally:
                os.close(fd)

    def test_relative_paths_fall_through(self, adapter, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "rel.txt").write_text("rel")
        with interposed(adapter):
            with open("rel.txt") as f:
                assert f.read() == "rel"

    def test_bytes_paths_fall_through(self, adapter, tmp_path):
        real = tmp_path / "b.txt"
        real.write_text("b")
        with interposed(adapter):
            with open(os.fsencode(str(real))) as f:
                assert f.read() == "b"

    def test_nested_same_adapter_is_fine(self, adapter):
        with interposed(adapter):
            with interposed(adapter):
                assert os.path.exists("/mnt/f.txt")
            # inner exit restored the *outer* patch's originals, so the
            # outer context still works for local paths
        assert not os.path.exists("/mnt/f.txt")


class TestLocalHandleViaInterface:
    def test_statfs(self, adapter):
        fs = adapter.statfs("/mnt")
        assert fs.total_bytes > 0

    def test_walk(self, adapter):
        adapter.write_bytes("/mnt/sub/inner.txt", b"1")
        seen = {d: (dirs, files) for d, dirs, files in adapter.walk("/mnt")}
        assert "/mnt" in seen
        assert "sub" in seen["/mnt"][0]
        assert "inner.txt" in seen["/mnt/sub"][1]

    def test_read_write_bytes(self, adapter):
        adapter.write_bytes("/mnt/data.bin", b"\x00\x01")
        assert adapter.read_bytes("/mnt/data.bin") == b"\x00\x01"
