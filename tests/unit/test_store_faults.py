"""Disk-fault injection: plan semantics, replay, and graceful degradation.

Three layers under test:

- :class:`~repro.store.faulty.DiskFaultPlan` /
  :class:`~repro.store.faulty.FaultyStore` -- scripted and seeded
  chaos faults fire as specified, and the event log is a replayable
  witness (same seed + same workload = identical log).
- :meth:`~repro.store.interface.BlobStore.reconcile_usage` -- usage
  accounting stays honest (or repairable) when a write dies partway.
- :class:`~repro.chirp.backend.Backend` degraded read-only mode --
  store failures flip the volume to read-only with the right refusal
  statuses, policy refusals never do, and the recovery probe brings a
  healed volume back.
"""

from __future__ import annotations

import errno
import getpass
import os

import pytest

from repro.chirp.backend import Backend
from repro.chirp.protocol import OpenFlags
from repro.store import DiskFaultPlan, DiskFaultScript, FaultyStore, make_store
from repro.store.faulty import (
    BITROT,
    DELAY,
    EIO,
    ENOSPC,
    FSYNC_FAIL,
    SHORT_WRITE,
    TORN_WRITE,
)
from repro.util import errors as E
from repro.util.checksum import data_checksum
from repro.util.clock import ManualClock

OWNER = f"unix:{getpass.getuser()}"

STORE_KINDS = ("local", "memory", "cas")


def faulty(tmp_path, kind="memory", plan=None, clock=None) -> FaultyStore:
    root = tmp_path / f"faulty-{kind}"
    root.mkdir(exist_ok=True)
    return FaultyStore(make_store(kind, str(root)), plan=plan, clock=clock)


class TestDiskFaultScript:
    def test_rejects_unknown_action_and_op(self):
        with pytest.raises(ValueError):
            DiskFaultScript(action="explode")
        with pytest.raises(ValueError):
            DiskFaultScript(op="read")

    def test_path_and_op_matching(self):
        fault = DiskFaultScript(op="pwrite", action=ENOSPC, path="/data/")
        assert fault.matches("pwrite", "/data/f")
        assert not fault.matches("pwrite", "/tmp/f")
        assert not fault.matches("pread", "/data/f")
        # wildcard op still respects action validity per operation
        rot = DiskFaultScript(op="*", action=BITROT)
        assert rot.matches("pread", "/f")
        assert not rot.matches("pwrite", "/f")


class TestScriptedFaults:
    def test_eio_on_pread_then_clean(self, tmp_path):
        store = faulty(tmp_path)
        store.write_blob("/f", b"payload")
        store.plan.script(DiskFaultScript(op="pread", action=EIO))
        with pytest.raises(E.UnknownError):
            store.read_blob("/f")
        # the script was consumed: the next read succeeds
        assert store.read_blob("/f") == b"payload"

    def test_enospc_lands_a_prefix_then_raises(self, tmp_path):
        store = faulty(tmp_path)
        store.plan.script(DiskFaultScript(op="pwrite", action=ENOSPC))
        with pytest.raises(E.NoSpaceError):
            store.write_blob("/f", b"0123456789")
        # the disk filled mid-write: half the data is on disk
        assert store.read_blob("/f") == b"01234"

    def test_fsync_failure_raises_after_write(self, tmp_path):
        store = faulty(tmp_path)
        store.plan.script(DiskFaultScript(op="fsync", action=FSYNC_FAIL))
        h = store.open("/f", OpenFlags(write=True, create=True), 0o644)
        h.pwrite(b"data", 0)
        with pytest.raises(E.UnknownError):
            h.fsync()
        h.close()

    def test_short_write_returns_honest_count(self, tmp_path):
        store = faulty(tmp_path)
        store.plan.script(DiskFaultScript(op="pwrite", action=SHORT_WRITE))
        h = store.open("/f", OpenFlags(write=True, create=True), 0o644)
        assert h.pwrite(b"0123456789", 0) == 5
        h.close()
        assert store.read_blob("/f") == b"01234"

    def test_torn_write_lies_about_the_count(self, tmp_path):
        store = faulty(tmp_path)
        store.plan.script(DiskFaultScript(op="pwrite", action=TORN_WRITE))
        h = store.open("/f", OpenFlags(write=True, create=True), 0o644)
        assert h.pwrite(b"0123456789", 0) == 10  # the lie
        h.close()
        assert store.read_blob("/f") == b"01234"  # the truth

    def test_bitrot_flips_exactly_one_byte_silently(self, tmp_path):
        store = faulty(tmp_path, plan=DiskFaultPlan(seed=5))
        payload = b"x" * 256
        store.write_blob("/f", payload)
        store.plan.script(DiskFaultScript(op="pread", action=BITROT))
        rotted = store.read_blob("/f")
        assert rotted != payload
        assert len(rotted) == len(payload)
        assert sum(a != b for a, b in zip(rotted, payload)) == 1
        # silent: no error was raised, and the rot was in flight only
        assert store.read_blob("/f") == payload

    def test_latency_sleeps_on_the_injected_clock(self, tmp_path):
        clock = ManualClock()
        store = faulty(tmp_path, clock=clock)
        store.write_blob("/f", b"x")
        store.plan.script(
            DiskFaultScript(op="pread", action=DELAY, latency=2.5)
        )
        assert store.read_blob("/f") == b"x"
        assert clock.now() == pytest.approx(2.5)


class TestEventLogReplay:
    @staticmethod
    def _run(tmp_path, seed: int, tag: str):
        plan = DiskFaultPlan.chaos(
            seed,
            eio_rate=0.15,
            enospc_rate=0.05,
            bitrot_rate=0.15,
            short_write_rate=0.1,
        )
        root = tmp_path / f"chaos-{tag}"
        root.mkdir()
        store = FaultyStore(make_store("memory", str(root)), plan=plan)
        for i in range(40):
            try:
                store.write_blob(f"/f{i}", bytes([i % 251]) * 64)
            except E.ChirpError:
                pass
            try:
                store.try_read_blob(f"/f{i}")
            except E.ChirpError:
                pass
        return plan

    def test_same_seed_same_workload_identical_log(self, tmp_path):
        a = self._run(tmp_path, 1234, "a")
        b = self._run(tmp_path, 1234, "b")
        assert a.injected > 0
        assert a.event_log() == b.event_log()
        assert a.injected == len(a.event_log())

    def test_different_seed_diverges(self, tmp_path):
        a = self._run(tmp_path, 1234, "a")
        b = self._run(tmp_path, 4321, "b")
        assert a.event_log() != b.event_log()


class TestTransparency:
    @pytest.mark.parametrize("kind", STORE_KINDS)
    def test_empty_plan_is_invisible(self, tmp_path, kind):
        store = faulty(tmp_path, kind)
        store.write_blob("/f", b"untouched")
        assert store.read_blob("/f") == b"untouched"
        assert store.kind == store.inner.kind
        assert store.supports_cas == store.inner.supports_cas
        snap = store.snapshot()
        assert snap["kind"] == store.inner.kind
        assert snap["faults_injected"] == 0


class TestRotAtRest:
    @pytest.mark.parametrize("kind", STORE_KINDS)
    def test_rot_flips_stored_bytes(self, tmp_path, kind):
        store = faulty(tmp_path, kind, plan=DiskFaultPlan(seed=9))
        payload = b"precious bytes" * 10
        store.write_blob("/f", payload)
        digest = store.rot_at_rest("/f")
        assert digest == data_checksum(payload)
        rotted = store.read_blob("/f")
        assert rotted != payload
        assert sum(a != b for a, b in zip(rotted, payload)) == 1
        # logged by content digest, not path: replayable across runs
        assert any(
            event.startswith(f"rot {digest} byte ")
            for event in store.plan.event_log()
        )

    def test_cas_scrub_catches_the_rot(self, tmp_path):
        store = faulty(tmp_path, "cas", plan=DiskFaultPlan(seed=9))
        store.write_blob("/f", b"sealed object payload")
        digest = store.rot_at_rest("/f")
        # the O(1) checksum RPC is blind to at-rest rot...
        assert store.checksum("/f") == digest
        # ...but the byte-level scrub is not
        report = store.scrub()
        assert report["corrupt"] == [digest]

    def test_rot_refuses_empty_files(self, tmp_path):
        store = faulty(tmp_path, "local")
        store.write_blob("/f", b"")
        with pytest.raises(E.InvalidRequestError):
            store.rot_at_rest("/f")


class TestReconcileUsage:
    def test_partial_pwrite_failure_keeps_accounting_honest(
        self, tmp_path, monkeypatch
    ):
        store = make_store("local", str(tmp_path))
        store.used_bytes()  # prime the incremental counter
        h = store.open("/f", OpenFlags(write=True, create=True), 0o644)
        real_pwrite = os.pwrite

        def dying_disk(fd, data, offset):
            # half the data lands before the device errors out
            real_pwrite(fd, data[: len(data) // 2], offset)
            raise OSError(errno.EIO, "injected device error")

        monkeypatch.setattr(os, "pwrite", dying_disk)
        with pytest.raises(E.UnknownError):
            h.pwrite(b"x" * 100, 0)
        monkeypatch.undo()
        h.close()
        # the counter charged what actually landed, not what was asked
        assert store.used_bytes() == 50
        assert store.reconcile_usage() == 50

    def test_invalidated_counter_recovers_by_rewalk(self, tmp_path):
        store = make_store("local", str(tmp_path))
        store.write_blob("/f", b"y" * 300)
        store._invalidate_usage()
        assert store.reconcile_usage() == 300

    @pytest.mark.parametrize("kind", STORE_KINDS)
    def test_reconcile_matches_used_bytes(self, tmp_path, kind):
        root = tmp_path / kind
        root.mkdir()
        store = make_store(kind, str(root))
        store.write_blob("/a", b"a" * 100)
        store.write_blob("/b", b"b" * 50)
        assert store.reconcile_usage() == store.used_bytes()


class TestDegradedReadOnlyMode:
    @staticmethod
    def _backend(tmp_path, **kwargs) -> Backend:
        store = faulty(tmp_path)
        return Backend(store, OWNER, **kwargs)

    @staticmethod
    def _write(backend, path, data):
        h = backend.open(
            OWNER, path, OpenFlags(write=True, create=True, truncate=True), 0o644
        )
        backend.pwrite(h, data, 0)
        backend.close(h)

    @staticmethod
    def _read(backend, path):
        h = backend.open(OWNER, path, OpenFlags(read=True), 0)
        data = backend.pread(h, 1 << 16, 0)
        backend.close(h)
        return data

    def test_enospc_degrades_immediately(self, tmp_path):
        backend = self._backend(tmp_path)
        self._write(backend, "/keep", b"already here")
        backend.store.plan.script(DiskFaultScript(op="pwrite", action=ENOSPC))
        with pytest.raises(E.NoSpaceError):
            self._write(backend, "/f", b"does not fit")
        assert backend.read_only
        assert backend.read_only_reason == "enospc"
        # writes are refused with NO_SPACE before touching the store
        with pytest.raises(E.NoSpaceError):
            self._write(backend, "/g", b"refused")
        # reads still serve, and deletions (the way out) are allowed
        assert self._read(backend, "/keep") == b"already here"
        backend.unlink(OWNER, "/keep")
        # the store is healthy again (the fault was one-shot): recover
        assert backend.try_recover(force=True)
        assert not backend.read_only
        self._write(backend, "/g", b"accepted again")
        assert self._read(backend, "/g") == b"accepted again"

    def test_eio_degrades_after_consecutive_threshold(self, tmp_path):
        backend = self._backend(tmp_path, eio_degrade_threshold=3)
        h = backend.open(
            OWNER, "/f", OpenFlags(write=True, create=True), 0o644
        )
        for _ in range(3):
            backend.store.plan.script(
                DiskFaultScript(op="pwrite", action=EIO)
            )
        for _ in range(3):
            assert not backend.read_only
            with pytest.raises(E.UnknownError):
                backend.pwrite(h, b"dying disk", 0)
        backend.close(h)
        assert backend.read_only
        assert backend.read_only_reason == "eio"
        # EIO degradation refuses with TRY_AGAIN (the disk may return)
        with pytest.raises(E.TryAgainError):
            self._write(backend, "/g", b"refused")

    def test_successful_write_resets_the_eio_streak(self, tmp_path):
        backend = self._backend(tmp_path, eio_degrade_threshold=3)
        h = backend.open(
            OWNER, "/f", OpenFlags(write=True, create=True), 0o644
        )
        for _ in range(2):
            backend.store.plan.script(
                DiskFaultScript(op="pwrite", action=EIO)
            )
        for _ in range(2):
            with pytest.raises(E.UnknownError):
                backend.pwrite(h, b"x", 0)
        backend.pwrite(h, b"fine", 0)  # streak broken
        for _ in range(2):
            backend.store.plan.script(
                DiskFaultScript(op="pwrite", action=EIO)
            )
        for _ in range(2):
            with pytest.raises(E.UnknownError):
                backend.pwrite(h, b"x", 0)
        backend.close(h)
        assert not backend.read_only

    def test_quota_refusal_never_degrades(self, tmp_path):
        backend = self._backend(tmp_path, quota_bytes=100)
        h = backend.open(
            OWNER, "/big", OpenFlags(write=True, create=True), 0o644
        )
        with pytest.raises(E.NoSpaceError):
            backend.pwrite(h, b"x" * 200, 0)
        backend.close(h)
        # a policy refusal is the abstraction working, not the disk dying
        assert not backend.read_only

    def test_recovery_probe_is_throttled(self, tmp_path):
        backend = self._backend(tmp_path, recovery_probe_interval=3600.0)
        backend.store.plan.script(DiskFaultScript(op="pwrite", action=ENOSPC))
        with pytest.raises(E.NoSpaceError):
            self._write(backend, "/f", b"boom")
        assert backend.read_only
        # keep the store broken so probes fail
        backend.store.plan = DiskFaultPlan.chaos(1, eio_rate=1.0)
        assert not backend.try_recover()  # probe runs, store still sick
        probes = backend.snapshot()["recovery_probes"]
        assert not backend.try_recover()  # inside the interval: no probe
        assert backend.snapshot()["recovery_probes"] == probes
        assert not backend.try_recover(force=True)  # force bypasses it
        assert backend.snapshot()["recovery_probes"] == probes + 1

    def test_snapshot_reports_degraded_state(self, tmp_path):
        backend = self._backend(tmp_path)
        backend.store.plan.script(DiskFaultScript(op="pwrite", action=ENOSPC))
        with pytest.raises(E.NoSpaceError):
            self._write(backend, "/f", b"boom")
        with pytest.raises(E.NoSpaceError):
            self._write(backend, "/g", b"refused")
        snap = backend.snapshot()
        assert snap["read_only"] is True
        assert snap["read_only_reason"] == "enospc"
        assert snap["degraded_entered"] == 1
        assert snap["writes_refused"] >= 1
        assert snap["write_errors"] >= 1
