"""Unit tests for the calibrated performance models (stacks, SP5, cluster).

These tests pin the *figure-shape invariants* the benchmarks report, so a
calibration regression is caught here before it silently skews a bench.
"""

import pytest

from repro.sim.cluster import BufferCache
from repro.sim.params import MB, PAPER_PARAMS
from repro.sim.sp5 import SP5Workload, run_sp5_table
from repro.sim.stacks import (
    CfsStack,
    DsfsStack,
    NfsStack,
    ParrotLocalStack,
    SYSCALL_NAMES,
    UnixStack,
    WanCfsStack,
    bandwidth_curve,
)


@pytest.fixture(scope="module")
def stacks():
    return {
        "unix": UnixStack(),
        "parrot": ParrotLocalStack(),
        "nfs": NfsStack(),
        "cfs": CfsStack(),
        "dsfs": DsfsStack(),
        "wan": WanCfsStack(),
    }


class TestFigure3Invariants:
    def test_trap_slows_every_call(self, stacks):
        for name in SYSCALL_NAMES:
            assert stacks["parrot"].op(name) > stacks["unix"].op(name)

    def test_most_calls_slowed_by_order_of_magnitude(self, stacks):
        ratios = [
            stacks["parrot"].op(n) / stacks["unix"].op(n) for n in SYSCALL_NAMES
        ]
        assert sum(1 for r in ratios if r >= 5) >= 3  # "most system calls"
        assert all(r >= 3 for r in ratios)

    def test_native_latencies_are_microseconds(self, stacks):
        for name in SYSCALL_NAMES:
            assert stacks["unix"].op(name) < 20e-6


class TestFigure4Invariants:
    def test_network_dwarfs_trap_overhead(self, stacks):
        """Figure 4's headline: network latency outweighs Parrot's own
        overhead by another order of magnitude."""
        for name in ("stat", "open_close", "read_8k", "write_8k"):
            trap_cost = stacks["parrot"].op(name) - stacks["unix"].op(name)
            assert stacks["cfs"].op(name) >= 5 * trap_cost

    def test_cfs_beats_nfs_on_metadata(self, stacks):
        """CFS needs no per-component lookups."""
        assert stacks["cfs"].op("stat") < stacks["nfs"].op("stat")
        assert stacks["cfs"].op("open_close") < stacks["nfs"].op("open_close")

    def test_cfs_beats_nfs_on_8k_write(self, stacks):
        """One round trip vs two 4 KB RPCs."""
        assert stacks["cfs"].op("write_8k") < stacks["nfs"].op("write_8k")

    def test_dsfs_matches_cfs_on_data_path(self, stacks):
        assert stacks["dsfs"].op("read_8k") == stacks["cfs"].op("read_8k")
        assert stacks["dsfs"].op("write_8k") == stacks["cfs"].op("write_8k")

    def test_dsfs_metadata_about_twice_cfs(self, stacks):
        for name in ("stat", "open_close"):
            ratio = stacks["dsfs"].op(name) / stacks["cfs"].op(name)
            assert 1.3 <= ratio <= 3.0


class TestFigure5Invariants:
    BLOCKS = [2**i for i in range(0, 24)]

    def test_all_curves_rise_to_a_plateau(self, stacks):
        for key in ("unix", "parrot", "cfs"):
            curve = bandwidth_curve(stacks[key], self.BLOCKS)
            values = list(curve.values())
            assert values[0] < 1.0  # tiny blocks are overhead-bound
            assert values[-1] > 0.9 * max(values)

    def test_plateau_ordering(self, stacks):
        def plateau(stack):
            return max(bandwidth_curve(stack, self.BLOCKS).values())

        unix, parrot = plateau(stacks["unix"]), plateau(stacks["parrot"])
        cfs, nfs = plateau(stacks["cfs"]), plateau(stacks["nfs"])
        assert unix > parrot > cfs > nfs

    def test_paper_anchor_values(self, stacks):
        def plateau(stack):
            return max(bandwidth_curve(stack, self.BLOCKS).values())

        assert plateau(stacks["unix"]) == pytest.approx(798, rel=0.10)
        assert plateau(stacks["parrot"]) == pytest.approx(431, rel=0.10)
        assert plateau(stacks["cfs"]) == pytest.approx(80, rel=0.10)
        assert plateau(stacks["nfs"]) == pytest.approx(10, rel=0.25)

    def test_nfs_is_order_of_magnitude_below_cfs(self, stacks):
        cfs = max(bandwidth_curve(stacks["cfs"], self.BLOCKS).values())
        nfs = max(bandwidth_curve(stacks["nfs"], self.BLOCKS).values())
        assert cfs / nfs >= 5

    def test_nfs_plateau_is_flat_beyond_4k(self, stacks):
        """Request-response at fixed block size cannot exploit big blocks."""
        curve = bandwidth_curve(stacks["nfs"], [4096, 65536, 2**23])
        values = list(curve.values())
        assert max(values) / min(values) < 1.2


class TestSP5Model:
    def test_table_shape(self):
        rows = {r.config: r for r in run_sp5_table()}
        unix, nfs = rows["unix"], rows["lan-nfs"]
        tss, wan = rows["lan-tss"], rows["wan-tss"]
        # init jumps by an order of magnitude going remote
        assert 5 <= nfs.init_time / unix.init_time <= 15
        # NFS and TSS are equivalent on the LAN (both disk-bound)
        assert abs(nfs.init_time - tss.init_time) / nfs.init_time < 0.10
        # the WAN surcharge exists but is far less than the remote jump
        assert tss.init_time < wan.init_time < 2 * tss.init_time
        # events stay within a factor of two of local
        assert nfs.time_per_event < 2 * unix.time_per_event
        # the WAN node's faster CPU makes single events *faster* than LAN
        assert wan.time_per_event < tss.time_per_event

    def test_paper_anchor_magnitudes(self):
        rows = {r.config: r for r in run_sp5_table()}
        assert rows["unix"].init_time == pytest.approx(446, rel=0.25)
        assert rows["lan-nfs"].init_time == pytest.approx(4464, rel=0.25)
        assert rows["lan-tss"].init_time == pytest.approx(4505, rel=0.25)
        assert rows["wan-tss"].init_time == pytest.approx(6275, rel=0.25)
        assert rows["unix"].time_per_event == pytest.approx(64, rel=0.25)
        assert rows["lan-tss"].time_per_event == pytest.approx(113, rel=0.25)
        assert rows["wan-tss"].time_per_event == pytest.approx(88, rel=0.25)

    def test_unknown_config_rejected(self):
        wl = SP5Workload()
        with pytest.raises(ValueError):
            wl.init_time("vax")


class TestBufferCache:
    def test_hit_after_insert(self):
        cache = BufferCache(100)
        assert not cache.access("a", 40)  # miss, inserted
        assert cache.access("a", 40)  # hit

    def test_lru_eviction(self):
        cache = BufferCache(100)
        cache.access("a", 40)
        cache.access("b", 40)
        cache.access("a", 40)  # refresh a
        cache.access("c", 40)  # evicts b (LRU)
        assert cache.access("a", 40)
        assert not cache.access("b", 40)

    def test_oversized_file_never_cached(self):
        cache = BufferCache(100)
        assert not cache.access("big", 200)
        assert not cache.access("big", 200)
        assert cache.used == 0

    def test_used_never_exceeds_capacity(self):
        cache = BufferCache(100)
        for i in range(50):
            cache.access(f"f{i}", 30)
            assert cache.used <= 100

    def test_invalidate(self):
        cache = BufferCache(100)
        cache.access("a", 50)
        cache.invalidate("a")
        assert cache.used == 0
        assert not cache.access("a", 50)

    def test_hit_rate(self):
        cache = BufferCache(100)
        cache.access("a", 10)
        cache.access("a", 10)
        cache.access("a", 10)
        assert cache.hit_rate == pytest.approx(2 / 3)


class TestParams:
    def test_figure7_crossover_is_calibrated(self):
        """1280 MB over 2 servers must miss cache; over 3 must fit --
        the Figure 7 crossover depends on exactly this."""
        p = PAPER_PARAMS
        dataset = 1280 * MB
        assert dataset / 2 > p.cache_bytes
        assert dataset / 3 < p.cache_bytes

    def test_backplane_is_three_ports(self):
        p = PAPER_PARAMS
        assert p.backplane_bw == pytest.approx(3 * p.port_bw)
