"""Unit tests for checksums and the clock abstraction."""

import io
import threading

from repro.util.checksum import data_checksum, file_checksum, stream_checksum
from repro.util.clock import ManualClock, MonotonicClock


class TestChecksum:
    def test_data_and_stream_agree(self):
        payload = b"x" * 1_000_003
        assert data_checksum(payload) == stream_checksum(io.BytesIO(payload))

    def test_file_checksum(self, tmp_path):
        p = tmp_path / "f.bin"
        p.write_bytes(b"abc" * 1000)
        assert file_checksum(str(p)) == data_checksum(b"abc" * 1000)

    def test_empty_input(self):
        assert data_checksum(b"") == stream_checksum(io.BytesIO(b""))

    def test_chunk_size_does_not_change_digest(self):
        payload = bytes(range(256)) * 100
        a = stream_checksum(io.BytesIO(payload), chunk_size=7)
        b = stream_checksum(io.BytesIO(payload), chunk_size=65536)
        assert a == b

    def test_different_data_different_digest(self):
        assert data_checksum(b"a") != data_checksum(b"b")


class TestMonotonicClock:
    def test_now_advances(self):
        clock = MonotonicClock()
        a = clock.now()
        clock.sleep(0.01)
        assert clock.now() >= a + 0.009

    def test_negative_sleep_is_noop(self):
        MonotonicClock().sleep(-1)  # must not raise or block


class TestManualClock:
    def test_sleep_advances_single_threaded(self):
        clock = ManualClock()
        clock.sleep(5)
        assert clock.now() == 5

    def test_advance_moves_time(self):
        clock = ManualClock(start=100)
        clock.advance(2.5)
        assert clock.now() == 102.5

    def test_advance_backwards_rejected(self):
        clock = ManualClock()
        try:
            clock.advance(-1)
            raise AssertionError("expected ValueError")
        except ValueError:
            pass

    def test_zero_sleep_returns_immediately(self):
        clock = ManualClock()
        clock.sleep(0)
        assert clock.now() == 0

    def test_advance_wakes_sleeper_thread(self):
        clock = ManualClock()
        woke = threading.Event()

        def sleeper():
            clock.sleep(10)
            woke.set()

        t = threading.Thread(target=sleeper, daemon=True)
        t.start()
        clock.advance(10)
        assert woke.wait(2.0)
