"""Regression tests for ClientPool.evict_dead.

The pool's ``get`` contract is deliberately hands-off about dead
sessions (handle recovery owns reconnection); ``evict_dead`` is the
explicit complement for callers that want a pool with no dead sessions.
"""

from __future__ import annotations

import pytest

from repro.util.errors import ChirpError, DisconnectedError


class TestEvictDead:
    def test_healthy_pool_evicts_nothing(self, pool, server_factory):
        server = server_factory.new()
        client = pool.get(*server.address)
        client.putfile("/alive.txt", b"ok")
        assert pool.evict_dead() == []
        assert len(pool) == 1

    def test_dead_session_is_evicted(self, pool, server_factory):
        alive = server_factory.new()
        dying = server_factory.new()
        pool.get(*alive.address).putfile("/a.txt", b"a")
        dead_client = pool.get(*dying.address)
        dead_client.putfile("/b.txt", b"b")
        assert len(pool) == 2

        dying.stop()
        # The session does not notice until an exchange fails -- that is
        # exactly the documented hands-off behavior of get().
        with pytest.raises(ChirpError):
            dead_client.stat("/b.txt")
        assert pool.get(*dying.address) is dead_client  # still handed out

        evicted = pool.evict_dead()
        assert evicted == [tuple(dying.address)]
        assert len(pool) == 1
        # The healthy session survived untouched.
        assert pool.get(*alive.address).stat("/a.txt").size == 1

    def test_get_after_eviction_starts_from_scratch(self, pool, server_factory):
        server = server_factory.new()
        old = pool.get(*server.address)
        old.putfile("/x.txt", b"x")
        server.stop()
        with pytest.raises(ChirpError):
            old.stat("/x.txt")
        assert pool.evict_dead() == [tuple(server.address)]
        assert len(pool) == 0
        # The evicted session is gone for good: a fresh get() dials anew
        # (and fails loudly while the server stays down) instead of
        # resurrecting the dead client silently.
        with pytest.raises((ChirpError, DisconnectedError, OSError)):
            pool.get(*server.address)
        assert len(pool) == 0
