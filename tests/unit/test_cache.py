"""Unit tests for the client-side cache subsystem.

Covers the block cache (LRU budget, full-block rule, epochs), the
metadata cache (TTL, negatives, LRU bound), the cached handle (span
fetch, readahead, write-through invalidation) and the client-level
metadata caching wired through :class:`~repro.chirp.client.ChirpClient`.
"""

from __future__ import annotations

import pytest

from repro.cache.block import BlockCache
from repro.cache.handle import CachedFileHandle
from repro.cache.manager import CacheManager, file_key
from repro.cache.meta import MetaCache
from repro.cache.policy import CachePolicy
from repro.chirp.client import ChirpClient
from repro.chirp.protocol import OpenFlags
from repro.core.localfs import LocalFilesystem
from repro.util.clock import ManualClock
from repro.util.errors import DoesNotExistError

BS = 16  # tiny blocks keep the tests readable


def block(byte: int, size: int = BS) -> bytes:
    return bytes([byte]) * size


# ----------------------------------------------------------------------
# BlockCache
# ----------------------------------------------------------------------


class TestBlockCache:
    def test_get_put_and_counters(self):
        bc = BlockCache(capacity_bytes=8 * BS, block_size=BS, shards=2)
        assert bc.get("f", 0) is None
        assert bc.put("f", 0, block(1))
        assert bc.get("f", 0) == block(1)
        snap = bc.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["inserts"] == 1
        assert snap["cached_bytes"] == BS

    def test_short_blocks_are_never_cached(self):
        bc = BlockCache(capacity_bytes=8 * BS, block_size=BS)
        assert not bc.put("f", 0, b"short")
        assert bc.get("f", 0) is None

    def test_lru_eviction_respects_byte_budget(self):
        bc = BlockCache(capacity_bytes=4 * BS, block_size=BS, shards=1)
        for i in range(6):
            assert bc.put("f", i, block(i))
        assert bc.cached_bytes <= 4 * BS
        snap = bc.snapshot()
        assert snap["evictions"] == 2
        # Oldest blocks went first.
        assert bc.get("f", 0) is None
        assert bc.get("f", 5) == block(5)

    def test_lru_order_follows_access(self):
        bc = BlockCache(capacity_bytes=2 * BS, block_size=BS, shards=1)
        bc.put("f", 0, block(0))
        bc.put("f", 1, block(1))
        assert bc.get("f", 0) == block(0)  # refresh block 0
        bc.put("f", 2, block(2))  # evicts block 1, not 0
        assert bc.get("f", 0) == block(0)
        assert bc.get("f", 1) is None

    def test_peek_touches_nothing(self):
        bc = BlockCache(capacity_bytes=4 * BS, block_size=BS)
        bc.put("f", 0, block(0))
        before = bc.snapshot()
        assert bc.peek("f", 0)
        assert not bc.peek("f", 9)
        after = bc.snapshot()
        assert (after["hits"], after["misses"]) == (before["hits"], before["misses"])

    def test_invalidate_range_drops_overlapped_blocks_only(self):
        bc = BlockCache(capacity_bytes=16 * BS, block_size=BS, shards=1)
        for i in range(4):
            bc.put("f", i, block(i))
        # Touch bytes inside blocks 1 and 2.
        dropped = bc.invalidate_range("f", BS + 1, BS)
        assert dropped == 2
        assert bc.get("f", 0) == block(0)
        assert bc.get("f", 1) is None
        assert bc.get("f", 2) is None
        assert bc.get("f", 3) == block(3)

    def test_invalidate_file_is_per_key(self):
        bc = BlockCache(capacity_bytes=16 * BS, block_size=BS)
        bc.put("a", 0, block(1))
        bc.put("b", 0, block(2))
        assert bc.invalidate_file("a") == 1
        assert bc.get("a", 0) is None
        assert bc.get("b", 0) == block(2)

    def test_epoch_blocks_stale_install(self):
        bc = BlockCache(capacity_bytes=16 * BS, block_size=BS)
        epoch = bc.epoch("f")
        # Fetch was in flight when a write invalidated the file.
        bc.invalidate_range("f", 0, BS)
        assert not bc.put("f", 0, block(9), epoch=epoch)
        assert bc.get("f", 0) is None
        assert bc.snapshot()["stale_puts"] == 1

    def test_put_without_epoch_is_unconditional(self):
        bc = BlockCache(capacity_bytes=16 * BS, block_size=BS)
        bc.invalidate_file("f")
        assert bc.put("f", 0, block(3))

    def test_invalidate_prefix_sweeps_descendants_only(self):
        bc = BlockCache(capacity_bytes=16 * BS, block_size=BS)
        bc.put("h:1:/a", 0, block(1))
        bc.put("h:1:/a/x", 0, block(2))
        bc.put("h:1:/ab", 0, block(3))  # sibling sharing the prefix string
        stale = bc.epoch("h:1:/a/x")
        assert bc.invalidate_prefix("h:1:/a") == 2
        assert bc.get("h:1:/a", 0) is None
        assert bc.get("h:1:/a/x", 0) is None
        assert bc.get("h:1:/ab", 0) == block(3)
        # Descendant epochs were bumped: an in-flight fetch is refused.
        assert not bc.put("h:1:/a/x", 0, block(2), epoch=stale)

    def test_epoch_map_is_bounded_and_stays_monotonic(self):
        from repro.cache.block import _EPOCH_LIMIT

        bc = BlockCache(capacity_bytes=16 * BS, block_size=BS)
        stale = bc.epoch("survivor")
        bc.invalidate_file("survivor")
        for i in range(_EPOCH_LIMIT + 10):
            bc.invalidate_file(f"k{i}")
        assert len(bc._epochs) <= _EPOCH_LIMIT
        # Pruning collapses entries into the base but never rolls a key's
        # epoch backwards: the pre-invalidation sample is still refused.
        assert not bc.put("survivor", 0, block(1), epoch=stale)

    def test_clear_refuses_in_flight_puts(self):
        bc = BlockCache(capacity_bytes=16 * BS, block_size=BS)
        stale = bc.epoch("f")
        bc.clear()
        assert not bc.put("f", 0, block(1), epoch=stale)


# ----------------------------------------------------------------------
# MetaCache
# ----------------------------------------------------------------------


class TestMetaCache:
    def test_miss_then_hit(self):
        mc = MetaCache(clock=ManualClock())
        assert mc.get("stat", "k") is MetaCache.MISS
        mc.put("stat", "k", "value", ttl=None)
        assert mc.get("stat", "k") == "value"
        snap = mc.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1

    def test_ttl_expiry_on_manual_clock(self):
        clock = ManualClock()
        mc = MetaCache(clock=clock)
        mc.put("stat", "k", "value", ttl=2.0)
        clock.advance(1.9)
        assert mc.get("stat", "k") == "value"
        clock.advance(0.2)
        assert mc.get("stat", "k") is MetaCache.MISS
        assert mc.snapshot()["expired"] == 1

    def test_negative_entries_expire(self):
        clock = ManualClock()
        mc = MetaCache(clock=clock)
        mc.put_negative("stat", "gone", ttl=1.0)
        assert mc.get("stat", "gone") is MetaCache.NEGATIVE
        assert mc.snapshot()["negative_hits"] == 1
        clock.advance(1.5)
        assert mc.get("stat", "gone") is MetaCache.MISS

    def test_invalidate_covers_every_kind(self):
        mc = MetaCache(clock=ManualClock())
        mc.put("stat", "k", "s", ttl=None)
        mc.put("lstat", "k", "l", ttl=None)
        mc.put("dirent", "k", ("a", "b"), ttl=None)
        mc.invalidate("k")
        for kind in ("stat", "lstat", "dirent"):
            assert mc.get(kind, "k") is MetaCache.MISS
        assert mc.snapshot()["invalidations"] == 3

    def test_entry_bound_evicts_lru(self):
        mc = MetaCache(max_entries=2, clock=ManualClock())
        mc.put("stat", "a", 1, ttl=None)
        mc.put("stat", "b", 2, ttl=None)
        assert mc.get("stat", "a") == 1  # refresh a
        mc.put("stat", "c", 3, ttl=None)
        assert mc.get("stat", "b") is MetaCache.MISS
        assert mc.get("stat", "a") == 1
        assert len(mc) == 2

    def test_generation_refuses_stale_install(self):
        mc = MetaCache(clock=ManualClock())
        gen = mc.generation("k")
        # A same-client mutation invalidated the key mid-fetch.
        mc.invalidate("k")
        mc.put("stat", "k", "pre-mutation", ttl=None, generation=gen)
        assert mc.get("stat", "k") is MetaCache.MISS
        mc.put_negative("stat", "k", ttl=None, generation=gen)
        assert mc.get("stat", "k") is MetaCache.MISS
        assert mc.snapshot()["stale_puts"] == 2

    def test_generation_allows_unraced_install(self):
        mc = MetaCache(clock=ManualClock())
        gen = mc.generation("k")
        mc.put("stat", "k", "fresh", ttl=None, generation=gen)
        assert mc.get("stat", "k") == "fresh"

    def test_invalidate_prefix_sweeps_descendants_only(self):
        mc = MetaCache(clock=ManualClock())
        mc.put("stat", "h:1:/a", 1, ttl=None)
        mc.put("dirent", "h:1:/a", ("x",), ttl=None)
        mc.put("stat", "h:1:/a/x", 2, ttl=None)
        mc.put("stat", "h:1:/ab", 3, ttl=None)
        stale = mc.generation("h:1:/a/x")
        assert mc.invalidate_prefix("h:1:/a") == 3
        assert mc.get("stat", "h:1:/a") is MetaCache.MISS
        assert mc.get("stat", "h:1:/a/x") is MetaCache.MISS
        assert mc.get("stat", "h:1:/ab") == 3
        # Descendant generations were bumped too.
        mc.put("stat", "h:1:/a/x", "stale", ttl=None, generation=stale)
        assert mc.get("stat", "h:1:/a/x") is MetaCache.MISS

    def test_generation_map_is_bounded_and_stays_monotonic(self):
        from repro.cache.meta import _GEN_LIMIT

        mc = MetaCache(clock=ManualClock())
        stale = mc.generation("survivor")
        mc.invalidate("survivor")
        for i in range(_GEN_LIMIT + 10):
            mc.invalidate(f"k{i}")
        assert len(mc._gens) <= _GEN_LIMIT
        mc.put("stat", "survivor", "stale", ttl=None, generation=stale)
        assert mc.get("stat", "survivor") is MetaCache.MISS


# ----------------------------------------------------------------------
# CachePolicy modes
# ----------------------------------------------------------------------


class TestCachePolicy:
    def test_mode_gates(self):
        off = CachePolicy(mode="off")
        assert not off.data_enabled and not off.meta_enabled
        ttl = CachePolicy(mode="ttl")
        assert not ttl.data_enabled and ttl.meta_enabled
        assert not ttl.readahead_enabled
        private = CachePolicy(mode="private")
        assert private.data_enabled and private.meta_enabled
        assert private.readahead_enabled

    def test_expiries(self):
        private = CachePolicy(mode="private", negative_ttl=3.0)
        assert private.meta_expiry() is None  # until invalidated
        assert private.negative_expiry() == 3.0  # negatives always age out
        ttl = CachePolicy(mode="ttl", meta_ttl=5.0)
        assert ttl.meta_expiry() == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CachePolicy(mode="bogus")
        with pytest.raises(ValueError):
            CachePolicy(block_size=0)
        with pytest.raises(ValueError):
            CachePolicy(capacity_bytes=1, block_size=64)


# ----------------------------------------------------------------------
# CachedFileHandle over a local filesystem
# ----------------------------------------------------------------------


def make_cached(tmp_path, data: bytes, **policy_kwargs):
    policy_kwargs.setdefault("mode", "private")
    policy_kwargs.setdefault("block_size", BS)
    policy_kwargs.setdefault("capacity_bytes", 64 * BS)
    policy = CachePolicy(**policy_kwargs)
    cache = CacheManager(policy, synchronous_readahead=True)
    fs = LocalFilesystem(str(tmp_path))
    fs.write_file("/data.bin", data)
    inner = fs.open("/data.bin", OpenFlags(read=True, write=True))
    key = file_key("local", 0, "/data.bin")
    return CachedFileHandle(inner, cache, key), cache, fs


class RecordingHandle:
    """Wraps a handle, recording every pread the cache actually issues."""

    def __init__(self, inner):
        self.inner = inner
        self.preads: list[tuple[int, int]] = []

    def pread(self, length, offset, deadline=None):
        self.preads.append((length, offset))
        return self.inner.pread(length, offset)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestCachedFileHandle:
    def test_reads_are_byte_identical(self, tmp_path):
        data = bytes(range(256)) * 4
        handle, cache, _ = make_cached(tmp_path, data)
        with handle:
            assert handle.pread(len(data), 0) == data
            assert handle.pread(7, 3) == data[3:10]
            assert handle.pread(100, len(data) - 5) == data[-5:]
            assert handle.pread(10, len(data) + 50) == b""

    def test_warm_reread_skips_the_server(self, tmp_path):
        data = block(1) * 8  # 8 full blocks, no tail
        handle, cache, _ = make_cached(tmp_path, data, readahead_blocks=0)
        recorder = RecordingHandle(handle.inner)
        handle.inner = recorder
        with handle:
            assert handle.pread(len(data), 0) == data
            cold_rpcs = len(recorder.preads)
            assert handle.pread(len(data), 0) == data
            # Everything but the (uncacheable) tail probe is served locally.
            assert len(recorder.preads) == cold_rpcs
        assert cache.blocks.snapshot()["hits"] >= 8

    def test_cold_multiblock_read_is_one_span_rpc(self, tmp_path):
        data = block(2) * 8
        handle, cache, _ = make_cached(tmp_path, data, readahead_blocks=0)
        recorder = RecordingHandle(handle.inner)
        handle.inner = recorder
        with handle:
            handle.pread(4 * BS, 0)
        assert recorder.preads == [(4 * BS, 0)]

    def test_write_through_invalidates_overlap(self, tmp_path):
        data = block(3) * 4
        handle, cache, _ = make_cached(tmp_path, data, readahead_blocks=0)
        with handle:
            assert handle.pread(len(data), 0) == data
            handle.pwrite(b"XY", BS + 1)
            got = handle.pread(len(data), 0)
        assert got[BS + 1 : BS + 3] == b"XY"
        assert got[:BS] == block(3)

    def test_ftruncate_drops_every_block(self, tmp_path):
        data = block(4) * 4
        handle, cache, _ = make_cached(tmp_path, data, readahead_blocks=0)
        with handle:
            handle.pread(len(data), 0)
            handle.ftruncate(BS)
            assert handle.pread(len(data), 0) == block(4)

    def test_sequential_reads_trigger_readahead(self, tmp_path):
        data = block(5) * 32
        handle, cache, _ = make_cached(
            tmp_path, data, readahead_blocks=4, readahead_min_run=2
        )
        with handle:
            for i in range(8):
                assert handle.pread(BS, i * BS) == block(5)
        snap = cache.snapshot()["readahead"]
        assert snap["windows"] >= 1
        assert snap["blocks_prefetched"] >= 4

    def test_random_reads_do_not_trigger_readahead(self, tmp_path):
        data = block(6) * 32
        handle, cache, _ = make_cached(
            tmp_path, data, readahead_blocks=4, readahead_min_run=2
        )
        with handle:
            for i in (9, 2, 17, 5, 26, 11):
                handle.pread(BS, i * BS)
        assert cache.snapshot()["readahead"]["windows"] == 0

    def test_on_mutate_callback_fires_on_writes(self, tmp_path):
        data = block(7) * 4
        policy = CachePolicy(mode="private", block_size=BS, capacity_bytes=64 * BS)
        cache = CacheManager(policy, synchronous_readahead=True)
        fs = LocalFilesystem(str(tmp_path))
        fs.write_file("/m.bin", data)
        inner = fs.open("/m.bin", OpenFlags(read=True, write=True))
        calls = []
        handle = CachedFileHandle(
            inner, cache, "k", on_mutate=lambda: calls.append(1)
        )
        with handle:
            handle.pwrite(b"z", 0)
            handle.ftruncate(4)
        assert len(calls) == 2

    def test_manager_snapshot_shape(self, tmp_path):
        handle, cache, _ = make_cached(tmp_path, block(8) * 4)
        handle.close()
        snap = cache.snapshot()
        assert snap["mode"] == "private"
        assert set(snap) == {"mode", "block", "meta", "readahead"}
        assert set(snap["readahead"]) == {
            "windows",
            "blocks_prefetched",
            "dropped",
            "foreground_waits",
        }


# ----------------------------------------------------------------------
# Client-level metadata caching (live server)
# ----------------------------------------------------------------------


@pytest.fixture()
def caching_client(file_server, credentials):
    cache = CacheManager(CachePolicy(mode="private", negative_ttl=30.0))
    c = ChirpClient(
        *file_server.address, credentials=credentials, timeout=10.0, cache=cache
    )
    yield c, cache
    c.close()
    cache.close()


class TestClientMetaCaching:
    def test_stat_served_from_cache(self, caching_client):
        client, cache = caching_client
        client.putfile("/f.txt", b"hello")
        st1 = client.stat("/f.txt")
        st2 = client.stat("/f.txt")
        assert st1.size == st2.size == 5
        assert cache.meta.snapshot()["hits"] >= 1

    def test_negative_stat_cached_until_created(self, caching_client):
        client, cache = caching_client
        with pytest.raises(DoesNotExistError):
            client.stat("/nope.txt")
        with pytest.raises(DoesNotExistError) as excinfo:
            client.stat("/nope.txt")
        assert "cached" in str(excinfo.value)
        # Creating the file invalidates the negative entry at once.
        client.putfile("/nope.txt", b"x")
        assert client.stat("/nope.txt").size == 1

    def test_own_writes_invalidate_metadata(self, caching_client):
        client, cache = caching_client
        client.putfile("/grow.txt", b"ab")
        assert client.stat("/grow.txt").size == 2
        fd = client.open("/grow.txt", OpenFlags(write=True))
        client.pwrite(fd, b"abcd", 0)
        client.close_fd(fd)
        assert client.stat("/grow.txt").size == 4

    def test_getdir_cached_and_invalidated_by_membership(self, caching_client):
        client, cache = caching_client
        client.mkdir("/d")
        client.putfile("/d/one", b"1")
        assert client.getdir("/d") == ["one"]
        assert client.getdir("/d") == ["one"]
        assert cache.meta.snapshot()["hits"] >= 1
        client.putfile("/d/two", b"2")
        assert sorted(client.getdir("/d")) == ["one", "two"]
        client.unlink("/d/one")
        assert client.getdir("/d") == ["two"]

    def test_rename_invalidates_both_names(self, caching_client):
        client, cache = caching_client
        client.putfile("/old.txt", b"abc")
        assert client.stat("/old.txt").size == 3
        with pytest.raises(DoesNotExistError):
            client.stat("/new.txt")
        client.rename("/old.txt", "/new.txt")
        assert client.stat("/new.txt").size == 3
        with pytest.raises(DoesNotExistError):
            client.stat("/old.txt")

    def test_directory_rename_sweeps_descendant_entries(self, caching_client):
        # rename A->B then C->A: entries cached under /A must not survive
        # to describe the *old* children once the path is reused.
        client, cache = caching_client
        client.mkdir("/src")
        client.putfile("/src/f", b"old")
        assert client.stat("/src/f").size == 3
        assert client.getdir("/src") == ["f"]
        client.mkdir("/other")
        client.putfile("/other/f", b"fresh-longer")
        client.putfile("/other/g", b"x")
        client.rename("/src", "/gone")
        client.rename("/other", "/src")
        assert client.stat("/src/f").size == 12
        assert sorted(client.getdir("/src")) == ["f", "g"]

    def test_mkdir_rmdir_invalidate_metadata(self, caching_client):
        client, cache = caching_client
        with pytest.raises(DoesNotExistError):
            client.stat("/d")  # caches the absence
        client.mkdir("/d")
        assert client.stat("/d").mode  # negative entry was dropped
        client.rmdir("/d")
        with pytest.raises(DoesNotExistError):
            client.stat("/d")

    def test_uncached_client_unaffected(self, client):
        # The default client has no cache; plain operation still works.
        client.putfile("/plain.txt", b"xyz")
        assert client.stat("/plain.txt").size == 3


# ----------------------------------------------------------------------
# Stub-filesystem merged-stat coherence (DPFS over a live server)
# ----------------------------------------------------------------------


@pytest.fixture()
def caching_dpfs(file_server, pool, tmp_path):
    from repro.core.dpfs import DPFS

    cache = CacheManager(CachePolicy(mode="private", negative_ttl=300.0))
    fs = DPFS.create(
        str(tmp_path / "meta"), pool, [file_server.address], name="vol", cache=cache
    )
    yield fs
    cache.close()


class TestStubfsMetaCoherence:
    def test_rmdir_invalidates_cached_dir_stat(self, caching_dpfs):
        fs = caching_dpfs
        fs.mkdir("/d")
        assert fs.stat("/d").is_dir  # now cached under the merged key
        fs.rmdir("/d")
        with pytest.raises(DoesNotExistError):
            fs.stat("/d")

    def test_mkdir_invalidates_negative_stat(self, caching_dpfs):
        fs = caching_dpfs
        with pytest.raises(DoesNotExistError):
            fs.stat("/later")  # caches the absence
        fs.mkdir("/later")
        assert fs.stat("/later").is_dir

    def test_directory_rename_sweeps_descendant_stats(self, caching_dpfs):
        fs = caching_dpfs
        fs.mkdir("/a")
        fs.write_file("/a/f", b"old")
        assert fs.stat("/a/f").size == 3  # cached under /a/f's merged key
        fs.mkdir("/c")
        fs.write_file("/c/f", b"fresh-longer")
        assert fs.stat("/c/f").size == 12
        fs.rename("/a", "/b")
        fs.rename("/c", "/a")
        assert fs.stat("/a/f").size == 12
        assert fs.stat("/b/f").size == 3
