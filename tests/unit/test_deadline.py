"""Deadline budgets and their propagation through retry and fan-out."""

from __future__ import annotations

import time

import pytest

from repro.transport.deadline import Deadline
from repro.transport.fanout import FanoutPool
from repro.transport.recovery import RetryPolicy
from repro.util.clock import ManualClock
from repro.util.errors import DisconnectedError, StaleHandleError, TimedOutError


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = ManualClock()
        d = Deadline(10.0, clock)
        assert d.remaining() == pytest.approx(10.0)
        clock.advance(4)
        assert d.remaining() == pytest.approx(6.0)
        assert not d.expired

    def test_remaining_clamps_at_zero(self):
        clock = ManualClock()
        d = Deadline(1.0, clock)
        clock.advance(5)
        assert d.remaining() == 0.0
        assert d.expired

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_check_raises_when_spent(self):
        clock = ManualClock()
        d = Deadline(1.0, clock)
        d.check("op")  # fine while budget remains
        clock.advance(2)
        with pytest.raises(TimedOutError, match="deadline of 1s exceeded"):
            d.check("op")

    def test_bound_clamps_step_timeout(self):
        clock = ManualClock()
        d = Deadline(10.0, clock)
        assert d.bound(30.0) == pytest.approx(10.0)
        assert d.bound(3.0) == pytest.approx(3.0)
        assert d.bound(None) == pytest.approx(10.0)
        clock.advance(10)
        with pytest.raises(TimedOutError):
            d.bound(3.0)

    def test_after_alias(self):
        clock = ManualClock()
        assert Deadline.after(2.0, clock).remaining() == pytest.approx(2.0)


class _Flaky:
    """Fails ``failures`` times with DisconnectedError, then succeeds."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise DisconnectedError(f"boom #{self.calls}")
        return "ok"


class TestRetryDeadline:
    def make_policy(self, clock, **overrides):
        defaults = dict(max_attempts=5, initial_delay=1.0, multiplier=2.0, clock=clock)
        defaults.update(overrides)
        return RetryPolicy(**defaults)

    def test_sleeps_clamped_to_remaining_budget(self):
        clock = ManualClock()
        policy = self.make_policy(clock)
        deadline = Deadline(1.5, clock)
        op = _Flaky(2)
        assert policy.run(op, lambda: None, deadline=deadline) == "ok"
        # Backoff wanted 1.0 + 2.0 = 3.0s; budget allowed 1.0 + 0.5.
        assert clock.now() == pytest.approx(1.5)

    def test_spent_budget_raises_timeout_chained_from_original(self):
        clock = ManualClock()
        policy = self.make_policy(clock)
        deadline = Deadline(1.0, clock)
        op = _Flaky(99)
        with pytest.raises(TimedOutError) as info:
            policy.run(op, lambda: None, deadline=deadline)
        assert isinstance(info.value.__cause__, DisconnectedError)
        assert "boom #1" in str(info.value.__cause__)

    def test_without_deadline_behaviour_unchanged(self):
        clock = ManualClock()
        policy = self.make_policy(clock, max_attempts=3)
        op = _Flaky(2)
        assert policy.run(op, lambda: None) == "ok"
        assert clock.now() == pytest.approx(3.0)  # 1 + 2, uncapped


class TestRetryOriginalErrorChaining:
    def test_exhaustion_reraises_first_fault(self):
        clock = ManualClock()
        policy = RetryPolicy(max_attempts=3, initial_delay=0.1, clock=clock)
        op = _Flaky(99)
        with pytest.raises(DisconnectedError) as info:
            policy.run(op, lambda: None)
        assert "boom #1" in str(info.value)
        # ...with the last failure in the chain for context.
        assert isinstance(info.value.__cause__, DisconnectedError)
        assert "boom #3" in str(info.value.__cause__)

    def test_single_attempt_raises_bare_original(self):
        policy = RetryPolicy(max_attempts=1, clock=ManualClock())
        op = _Flaky(99)
        with pytest.raises(DisconnectedError) as info:
            policy.run(op, lambda: None)
        assert "boom #1" in str(info.value)
        assert info.value.__cause__ is None

    def test_non_disconnect_from_recover_propagates(self):
        policy = RetryPolicy(max_attempts=3, initial_delay=0.01, clock=ManualClock())

        def recover():
            raise StaleHandleError("file changed identity")

        with pytest.raises(StaleHandleError):
            policy.run(_Flaky(99), recover)


class TestFanoutDeadline:
    def test_completes_within_budget(self):
        pool = FanoutPool(4)
        try:
            deadline = Deadline(30.0)
            assert pool.run([lambda: 1, lambda: 2, lambda: 3], deadline) == [1, 2, 3]
        finally:
            pool.shutdown()

    def test_expired_budget_raises_timeout(self):
        pool = FanoutPool(2)
        try:
            deadline = Deadline(0.15)

            def slow():
                time.sleep(1.0)
                return "late"

            start = time.monotonic()
            with pytest.raises(TimedOutError):
                pool.run([slow, slow, slow], deadline)
            assert time.monotonic() - start < 0.9  # did not wait the full task
        finally:
            pool.shutdown()

    def test_serial_pool_checks_deadline_between_tasks(self):
        pool = FanoutPool(1)
        clock = ManualClock()
        deadline = Deadline(1.0, clock)

        def step():
            clock.advance(0.7)
            return "x"

        with pytest.raises(TimedOutError):
            pool.run([step, step, step], deadline)

    def test_task_error_beats_timeout_in_task_order(self):
        pool = FanoutPool(2)
        try:
            deadline = Deadline(0.2)

            def fail():
                raise DisconnectedError("first failure")

            def slow():
                time.sleep(1.0)

            with pytest.raises(DisconnectedError, match="first failure"):
                pool.run([fail, slow], deadline)
        finally:
            pool.shutdown()
