"""Unit tests for the WAN stack model (section 8's fourth configuration)."""

import pytest

from repro.sim.params import PAPER_PARAMS
from repro.sim.stacks import CfsStack, WanCfsStack, bandwidth_curve


class TestWanCfsStack:
    def test_metadata_dominated_by_wan_rtt(self):
        wan = WanCfsStack()
        lan = CfsStack()
        assert wan.op("stat") > 100 * lan.op("stat") / 10  # much slower
        assert wan.op("stat") >= PAPER_PARAMS.wan_rtt

    def test_streaming_bounded_by_wan_link(self):
        wan = WanCfsStack()
        blocks = [2**i for i in range(0, 24)]
        peak = max(bandwidth_curve(wan, blocks).values())
        # "(roughly) 100 Mbps capacity" = ~12 MB/s
        assert 9 <= peak <= 13

    def test_latency_bandwidth_tradeoff_vs_lan(self):
        """The WAN path has far worse latency but only modestly worse
        streaming -- exactly why SP5's bulk-bound init pays only a small
        WAN surcharge while per-call workloads would be destroyed."""
        wan, lan = WanCfsStack(), CfsStack()
        latency_ratio = wan.op("stat") / lan.op("stat")
        blocks = [2**20]
        bw_ratio = (
            bandwidth_curve(lan, blocks)[2**20] / bandwidth_curve(wan, blocks)[2**20]
        )
        assert latency_ratio > 20
        assert bw_ratio < 10

    def test_read_write_symmetry(self):
        wan = WanCfsStack()
        assert wan.op_read(65536) == wan.op_write(65536)
